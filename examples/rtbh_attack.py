#!/usr/bin/env python3
"""Remotely triggered blackholing, end to end (paper Figure 7 and Section 7.3).

The script walks through both variants of the RTBH attack on the paper's
Figure 7 topology, validating each on the control plane (looking glass) and
the data plane (traceroute), and then repeats the non-hijack experiment
"in the wild" on a generated Internet from a PEERING-like injection platform
with Atlas-style probes.

Run with::

    python examples/rtbh_attack.py
"""

from __future__ import annotations

from repro.attacks.rtbh import RtbhAttack
from repro.attacks.scenario import ScenarioRoles, build_figure7_topology
from repro.bgp.prefix import Prefix
from repro.probing.atlas import AtlasPlatform
from repro.topology.generator import TopologyGenerator, TopologyParameters
from repro.wild.experiments import RtbhWildExperiment
from repro.wild.peering import attach_peering_testbed

VICTIM = Prefix.from_string("203.0.113.0/24")


def figure7_scenarios() -> None:
    """The canonical Figure 7 scenarios: with and without prefix hijacking."""
    for hijack in (False, True):
        topology = build_figure7_topology()
        roles = ScenarioRoles(attacker_asn=2, attackee_asn=1, community_target_asn=3)
        attack = RtbhAttack(topology, roles, VICTIM, use_hijack=hijack)
        result = attack.run(vantage_points=[4])
        print(f"--- Figure 7 {'(b) with hijack' if hijack else '(a) without hijack'} ---")
        print(result.description)
        print(f"  attack prefix:            {result.attack_prefix}")
        print(f"  target's looking glass:   {result.target_next_hop}")
        print(f"  ASes dropping traffic:    {result.blackholed_at}")
        print(f"  vantage points cut off:   {result.unreachable_from}")
        print(f"  attack succeeded:         {result.succeeded}")
        print()


def wild_experiment() -> None:
    """The Section 7.3 protocol over a generated Internet."""
    parameters = TopologyParameters(tier1_count=3, transit_count=25, stub_count=90, seed=7)
    topology = TopologyGenerator(parameters).generate()
    platform = attach_peering_testbed(topology, upstream_count=10)
    atlas = AtlasPlatform.deploy(topology, probe_count=100, exclude_asns={platform.asn})
    experiment = RtbhWildExperiment(topology, platform, atlas)
    result = experiment.run(use_hijack=False)
    print("--- Section 7.3 in the (simulated) wild ---")
    print(f"  community target:         AS{result.target_asn} "
          f"({result.target_hops_from_injection} AS hops from the injection point)")
    print(f"  blackhole community:      {result.community}")
    print(f"  announced prefix:         {result.attack_prefix}")
    print(f"  target looking glass:     {result.target_next_hop}")
    print(f"  probes reaching before:   {result.probes_reachable_before}")
    print(f"  probes reaching after:    {result.probes_reachable_after}")
    print(f"  probes losing reachability: {len(result.probes_lost)}")
    print(f"  attack succeeded:         {result.succeeded}")


def main() -> None:
    figure7_scenarios()
    wild_experiment()


if __name__ == "__main__":
    main()
