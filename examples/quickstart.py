#!/usr/bin/env python3
"""Quickstart: generate a synthetic Internet, run the measurement pipeline, print the report.

This is the 30-second tour of the library: build the topology the paper's
measurement rests on, deploy RIS/RV/Isolario/PCH-style collectors, generate
an April-2018-style observation dataset, and regenerate every Section 4
table and figure from it.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.datasets.synthetic import DatasetParameters, build_default_dataset
from repro.measurement.report import MeasurementReport
from repro.measurement.propagation import transit_forwarders
from repro.measurement.usage import overall_update_community_fraction
from repro.routing.engine import BgpSimulator
from repro.topology.generator import TopologyGenerator, TopologyParameters


def main() -> None:
    # 1. A small Internet: tier-1 clique, transit providers, stubs, IXPs.
    parameters = TopologyParameters(tier1_count=3, transit_count=25, stub_count=100, seed=42)
    topology = TopologyGenerator(parameters).generate()
    print(f"generated topology: {topology.summary()}")

    # 2. Synthetic BGP observations as the four collector platforms would see them.
    dataset = build_default_dataset(topology, DatasetParameters(seed=2018))
    print(f"generated {dataset.message_count():,} route observations")

    # 3. The Section 4 measurement pipeline.
    report = MeasurementReport(dataset.archive, dataset.topology, dataset.blackhole_list)
    print()
    print(report.full_report())

    # 4. A couple of headline numbers, stated explicitly.
    fraction = overall_update_community_fraction(dataset.archive)
    forwarders = transit_forwarders(dataset.archive)
    print()
    print(f"updates carrying at least one community: {fraction:.1%}")
    print(
        f"transit ASes relaying foreign communities: {forwarders.forwarder_count} of "
        f"{forwarders.transit_count} ({forwarders.forwarder_fraction:.1%})"
    )

    # 5. Batched propagation: seed the control plane with every origination
    #    the topology records, driven to convergence in ONE shared worklist
    #    pass (simulator.announce(...) in a loop would re-walk the graph once
    #    per prefix; announce_many/apply dedupe the work across prefixes).
    simulator = BgpSimulator(topology)
    report = simulator.announce_originated()
    print()
    print(
        f"batched announcement: {len(report.prefixes):,} prefixes converged in one pass"
        f" ({report.announcements_processed:,} announcements,"
        f" {report.rounds:,} worklist steps)"
    )

    # 6. The declarative experiment API: every scenario in the repo is a
    #    registered experiment behind one spec -> lifecycle -> result
    #    pipeline; results serialize to JSON for persistence and replay.
    from repro.experiments import available, get, run_experiment

    print()
    print(f"registered experiments: {', '.join(available())}")
    spec = get("route-manipulation").default_spec(seed=42)
    result = run_experiment(spec)
    print(
        f"run {spec.name!r}: status={result.status.value}"
        f" succeeded={result.metrics['succeeded']}"
        f" ({result.total_seconds() * 1000:.1f} ms across {len(result.timings)} stages)"
    )
    print(f"replayable JSON: {len(result.to_json())} bytes")


if __name__ == "__main__":
    main()
