#!/usr/bin/env python3
"""Archive round-trip: export the synthetic dataset as MRT, re-load it, re-analyse it.

Demonstrates that the measurement pipeline is format-agnostic: the same
analyses run over observations harvested live from the simulator or over a
standard MRT update archive written to disk — which is also how real
RouteViews/RIS dumps would be ingested.

Run with::

    python examples/mrt_pipeline.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.collectors.observation import ObservationArchive
from repro.datasets.synthetic import DatasetParameters, build_default_dataset
from repro.measurement.propagation import observed_as_summary, top_values
from repro.measurement.usage import unique_community_count
from repro.topology.generator import TopologyGenerator, TopologyParameters


def main() -> None:
    topology = TopologyGenerator(
        TopologyParameters(tier1_count=3, transit_count=20, stub_count=80, seed=4)
    ).generate()
    dataset = build_default_dataset(topology, DatasetParameters(seed=4))
    print(f"synthetic observations: {dataset.message_count():,}")

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "april2018.mrt"
        written = dataset.archive.write_mrt(path)
        print(f"wrote {written:,} BGP4MP records ({path.stat().st_size:,} bytes) to {path.name}")

        loaded = ObservationArchive.from_mrt(path)
        print(f"re-loaded {len(loaded):,} observations from the MRT file")

        print()
        print(f"unique communities (direct):   {unique_community_count(dataset.archive):,}")
        print(f"unique communities (via MRT):  {unique_community_count(loaded):,}")

        summary = observed_as_summary(loaded)[-1]
        print(
            f"ASes encoded in communities:   {summary.total} "
            f"({summary.on_path} on-path, {summary.off_path} off-path)"
        )
        ranking = top_values(loaded, n=5)
        print(f"top on-path values:            {[v for v, _ in ranking.on_path]}")
        print(f"top off-path values:           {[v for v, _ in ranking.off_path]}")


if __name__ == "__main__":
    main()
