#!/usr/bin/env python3
"""The Section 7.6 automated blackhole-community sweep.

For every verified blackhole community in the (synthetic) Giotsas-style
list, the sweep announces the experiment prefix with and without the
community from a PEERING-like injection platform, probes it from a fixed
set of Atlas-style vantage points, and reports which communities caused
previously responsive probes to go dark — including the confirmation pass
and the AS-hop analysis of where the acted-upon community's target sits.

Run with::

    python examples/blackhole_sweep.py
"""

from __future__ import annotations

from repro.datasets.giotsas import build_blackhole_list
from repro.probing.atlas import AtlasPlatform
from repro.topology.generator import TopologyGenerator, TopologyParameters
from repro.wild.blackhole_sweep import BlackholeSweep
from repro.wild.peering import attach_peering_testbed


def main() -> None:
    parameters = TopologyParameters(tier1_count=3, transit_count=30, stub_count=120, seed=23)
    topology = TopologyGenerator(parameters).generate()
    platform = attach_peering_testbed(topology, upstream_count=10)
    atlas = AtlasPlatform.deploy(topology, probe_count=200, exclude_asns={platform.asn})
    blackhole_list = build_blackhole_list(topology, inferred_count=8, seed=23)

    sweep = BlackholeSweep(topology, platform, atlas, blackhole_list)
    result = sweep.run(confirm=True)

    print(f"verified blackhole communities swept: {len(blackhole_list.verified())}")
    print(f"vantage points:                      {result.probe_count}")
    print()
    print(f"{'community':>14} | {'target':>8} | {'probes lost':>11} | target hops")
    print("-" * 56)
    for outcome in result.effective_communities():
        hops = outcome.target_hops if outcome.target_hops is not None else "off-path"
        print(
            f"{str(outcome.community):>14} | AS{outcome.target_asn:<6} | "
            f"{len(outcome.probes_lost):>11} | {hops}"
        )
    print()
    print(
        f"communities inducing blackholing: {len(result.effective_communities())} "
        f"({result.effective_fraction():.1%} of the swept list)"
    )
    print(
        f"vantage points affected:          {len(result.affected_probes())} "
        f"({result.affected_probe_fraction():.1%})"
    )
    print(f"confirmation pass identical:      {result.confirmed}")
    print(
        f"community/path pairs: {result.direct_peer_pairs()} direct-peer, "
        f"{result.multi_hop_pairs()} multi-hop, {result.offpath_pairs()} off-path"
    )


if __name__ == "__main__":
    main()
