#!/usr/bin/env python3
"""The Section 7.6 automated blackhole-community sweep, via the experiment API.

The sweep is a registered experiment (``blackhole-sweep``): a declarative
spec (seed, topology overrides, platform attachments, parameters) drives
the common lifecycle — build topology, attach the PEERING-like injection
platform and the Atlas probes, sweep every verified blackhole community
with a confirmation pass — and returns a uniform, JSON-serializable
result.  The rich per-community outcomes stay available on the
experiment's context for detail rendering like the table below.

Run with::

    python examples/blackhole_sweep.py
"""

from __future__ import annotations

from repro.experiments import get


def main() -> None:
    experiment_cls = get("blackhole-sweep")
    spec = experiment_cls.default_spec(seed=23, probes=200, inferred_count=8).replace(
        topology={"tier1_count": 3, "transit_count": 30, "stub_count": 120}
    )
    experiment = experiment_cls(spec)
    result = experiment.run()
    metrics = result.metrics

    print(f"experiment: {spec.name} (seed {spec.seed}, status {result.status.value})")
    print(f"communities swept:                {metrics['communities_swept']}")
    print(f"vantage points:                   {metrics['probe_count']}")
    print()
    print(f"{'community':>14} | {'target':>8} | {'probes lost':>11} | target hops")
    print("-" * 56)
    for outcome in metrics["outcomes"]:
        hops = outcome["target_hops"] if outcome["target_hops"] is not None else "off-path"
        print(
            f"{outcome['community']:>14} | AS{outcome['target_asn']:<6} | "
            f"{outcome['probes_lost']:>11} | {hops}"
        )
    print()
    print(
        f"communities inducing blackholing: {metrics['effective_communities']} "
        f"({metrics['effective_fraction']:.1%} of the swept list)"
    )
    print(
        f"vantage points affected:          {metrics['affected_probes']} "
        f"({metrics['affected_probe_fraction']:.1%})"
    )
    print(f"confirmation pass identical:      {metrics['confirmed']}")
    print(
        f"community/path pairs: {metrics['direct_peer_pairs']} direct-peer, "
        f"{metrics['multi_hop_pairs']} multi-hop, {metrics['offpath_pairs']} off-path"
    )
    print()
    print(f"per-stage timings: " + ", ".join(
        f"{stage} {seconds * 1000:.0f} ms" for stage, seconds in result.timings.items()
    ))


if __name__ == "__main__":
    main()
