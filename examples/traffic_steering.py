#!/usr/bin/env python3
"""Traffic steering and route manipulation scenarios (paper Figures 2, 8 and 9).

Three demonstrations:

1. AS-path prepending abuse on the Figure 2 topology: the attacker tags the
   attackee's prefix with the community target's "prepend 3x" community and
   moves the observer's traffic onto the alternative path.
2. Local-preference abuse on the Figure 8(b) topology: the attacker forces
   the community target to carry its traffic over the expensive backup
   ingress.
3. Route manipulation at an IXP route server (Figure 9): conflicting
   "announce to" / "do not announce to" communities exploit the evaluation
   order to withdraw a member's route.

Run with::

    python examples/traffic_steering.py
"""

from __future__ import annotations

from repro.attacks.manipulation import RouteManipulationAttack
from repro.attacks.scenario import (
    ScenarioRoles,
    build_figure2_topology,
    build_figure8b_topology,
    build_figure9_ixp,
)
from repro.attacks.steering import LocalPrefSteeringAttack, PrependSteeringAttack
from repro.bgp.prefix import Prefix


def prepend_steering() -> None:
    topology = build_figure2_topology()
    roles = ScenarioRoles(attacker_asn=2, attackee_asn=1, community_target_asn=3)
    attack = PrependSteeringAttack(
        topology, roles, Prefix.from_string("198.51.100.0/24"), observer_asn=6
    )
    result = attack.run()
    print("--- Figure 2: AS-path prepending abuse ---")
    print(f"  prepend community used:   {attack.prepend_community}")
    print(f"  observer path before:     {result.path_before}")
    print(f"  observer path after:      {result.path_after}")
    print(f"  attack succeeded:         {result.succeeded}")
    print()


def local_pref_steering() -> None:
    topology = build_figure8b_topology()
    roles = ScenarioRoles(attacker_asn=2, attackee_asn=5, community_target_asn=1)
    attack = LocalPrefSteeringAttack(topology, roles, Prefix.from_string("198.18.0.0/24"))
    result = attack.run()
    print("--- Figure 8(b): local-pref (customer backup) abuse ---")
    print(f"  backup community used:    {attack.backup_community}")
    print(f"  target ingress before:    AS{result.details['ingress_before']}")
    print(f"  target ingress after:     AS{result.details['ingress_after']}")
    print(f"  local-pref before/after:  {result.local_pref_before} / {result.local_pref_after}")
    print(f"  attack succeeded:         {result.succeeded}")
    print()


def route_manipulation() -> None:
    topology, ixp = build_figure9_ixp()
    roles = ScenarioRoles(
        attacker_asn=2, attackee_asn=1, community_target_asn=ixp.route_server_asn
    )
    attack = RouteManipulationAttack(
        topology, ixp, roles, Prefix.from_string("203.0.113.0/24"), victim_member_asn=4
    )
    result = attack.run()
    print("--- Figure 9: route manipulation at the IXP route server ---")
    print(f"  announce community:       {result.details['announce_community']}")
    print(f"  suppress community:       {result.details['suppress_community']}")
    print(f"  AS4 had the route before: {result.attackee_route_before}")
    print(f"  AS4 has the route after:  {result.attackee_route_after}")
    print(f"  attack succeeded:         {result.succeeded}")


def main() -> None:
    prepend_steering()
    local_pref_steering()
    route_manipulation()


if __name__ == "__main__":
    main()
