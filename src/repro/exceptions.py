"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so
applications can catch library failures with a single ``except`` clause
while still being able to distinguish parsing errors from simulation or
policy errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class PrefixError(ReproError, ValueError):
    """An IP prefix string or (network, length) pair is malformed."""


class CommunityError(ReproError, ValueError):
    """A BGP community value or string representation is malformed."""


class ASPathError(ReproError, ValueError):
    """An AS path is malformed (bad ASN, bad segment type, ...)."""


class AttributeError_(ReproError, ValueError):
    """A BGP path attribute is malformed or violates protocol limits."""


class MessageError(ReproError, ValueError):
    """A BGP message cannot be encoded or decoded."""


class WireError(ReproError, ValueError):
    """A shard-protocol wire blob cannot be encoded or decoded."""


class MrtError(ReproError, ValueError):
    """An MRT record cannot be encoded or decoded."""


class MrtTruncatedError(MrtError):
    """An MRT stream ended in the middle of a record."""


class TopologyError(ReproError):
    """The AS-level topology is inconsistent (unknown AS, bad link, ...)."""


class PolicyError(ReproError):
    """A routing policy or community service definition is invalid."""


class RoutingError(ReproError):
    """The routing simulation reached an inconsistent state."""


class ConvergenceError(RoutingError):
    """The propagation engine failed to converge within its iteration bound."""


class DataPlaneError(ReproError):
    """A data-plane operation (ping, traceroute, FIB lookup) failed."""


class CollectorError(ReproError):
    """A route collector platform is misconfigured."""


class DatasetError(ReproError):
    """A synthetic dataset cannot be generated or loaded."""


class MeasurementError(ReproError):
    """A measurement analysis received inconsistent input."""


class AttackError(ReproError):
    """An attack scenario is misconfigured or cannot be executed."""


class AupViolationError(AttackError):
    """An experiment violates the acceptable-use policy of its testbed."""


class ProbingError(ReproError):
    """An active-measurement (Atlas-like) operation failed."""


class ExperimentError(ReproError):
    """An experiment spec, registry entry, or lifecycle stage is invalid."""
