"""The common experiment lifecycle.

Every experiment runs the same five stages::

    build topology -> attach platforms/collectors/probes -> seed routes
        -> execute -> validate

:class:`Experiment` is the base class: subclasses override the stages
they need (``execute`` is the only mandatory one) and inherit spec-driven
topology construction, declarative platform attachment, and batched
route pre-seeding.  :meth:`Experiment.run` times each stage and folds the
outcome into a uniform, JSON-serializable
:class:`~repro.experiments.result.ExperimentResult`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, ClassVar

from repro.exceptions import ExperimentError, ReproError
from repro.experiments.result import ExperimentResult, ExperimentStatus
from repro.experiments.spec import ExperimentSpec
from repro.topology.topology import Topology

#: The lifecycle stages, in execution order.
LIFECYCLE_STAGES = ("build", "attach", "seed", "execute", "validate")


@dataclass
class ExperimentContext:
    """Mutable state threaded through the lifecycle stages of one run."""

    spec: ExperimentSpec
    topology: Topology | None = None
    #: Attached platforms by name (injection platforms, collectors, atlas).
    platforms: dict[str, Any] = field(default_factory=dict)
    #: Stage-to-stage scratch space (simulators, rich result objects, ...).
    scratch: dict[str, Any] = field(default_factory=dict)

    def require_topology(self) -> Topology:
        """The built topology, or a clear error when the build stage was skipped."""
        if self.topology is None:
            raise ExperimentError(
                f"experiment {self.spec.name!r} has no topology; "
                "give the spec a scale/topology or override build()"
            )
        return self.topology

    def platform(self, name: str) -> Any:
        """A previously attached platform, by attachment name."""
        try:
            return self.platforms[name]
        except KeyError:
            raise ExperimentError(
                f"platform {name!r} is not attached (have: {', '.join(self.platforms) or 'none'})"
            ) from None


class Experiment:
    """Base class for registered experiments.

    Subclasses set the class-level metadata (``description``,
    ``paper_section`` and the ``default_*`` spec fields), override the
    lifecycle stages they need, and are registered under their public
    name with :func:`repro.experiments.register`.
    """

    #: Set by the @register decorator.
    name: ClassVar[str] = ""
    description: ClassVar[str] = ""
    paper_section: ClassVar[str] = ""
    default_seed: ClassVar[int] = 42
    default_scale: ClassVar[str | None] = None
    default_topology: ClassVar[dict[str, Any]] = {}
    default_platforms: ClassVar[tuple[str, ...]] = ()
    default_params: ClassVar[dict[str, Any]] = {}
    #: Parameters accepted beyond ``default_params`` (attach-time knobs,
    #: plus the propagation shard and pool-residency policies every
    #: experiment inherits).
    optional_params: ClassVar[tuple[str, ...]] = ("upstream_count", "shards", "residency")

    def __init__(self, spec: ExperimentSpec):
        if spec.name != self.name:
            raise ExperimentError(
                f"spec is for {spec.name!r} but was given to {self.name!r}"
            )
        self.spec = spec
        self.context = ExperimentContext(spec=spec)
        self.result: ExperimentResult | None = None

    # --------------------------------------------------------------- spec API
    @classmethod
    def default_spec(
        cls,
        seed: int | None = None,
        scale: str | None = None,
        **params: Any,
    ) -> ExperimentSpec:
        """The canonical spec for this experiment, with optional overrides.

        An explicitly requested ``scale`` replaces the experiment's
        canonical ``default_topology`` overrides (otherwise those
        overrides would silently mask the preset and the spec would
        record a scale that had no effect).  Unknown parameter names are
        rejected — a typo must not silently run the default variant and
        bake itself into the replayable spec.
        """
        known = set(cls.default_params) | set(cls.optional_params)
        unknown = set(params) - known
        if unknown:
            raise ExperimentError(
                f"unknown parameter(s) for {cls.name!r}: {', '.join(sorted(unknown))}"
                f" (known: {', '.join(sorted(known)) or 'none'})"
            )
        merged = dict(cls.default_params)
        merged.update(params)
        return ExperimentSpec(
            name=cls.name,
            seed=cls.default_seed if seed is None else seed,
            scale=cls.default_scale if scale is None else scale,
            topology={} if scale is not None else dict(cls.default_topology),
            platforms=tuple(cls.default_platforms),
            params=merged,
        )

    def param(self, key: str, default: Any = None) -> Any:
        """An experiment parameter: spec value, class default, then ``default``."""
        if key in self.spec.params:
            return self.spec.params[key]
        return self.default_params.get(key, default)

    def int_param(self, key: str, default: int) -> int:
        """An integer experiment parameter, or a clear error naming it.

        A non-integer override must surface as an
        :class:`~repro.exceptions.ExperimentError` (caught by
        :meth:`run` and the CLI) rather than a raw ``ValueError``
        traceback out of ``int()``.
        """
        value = self.param(key, default)
        try:
            return int(value)
        except (TypeError, ValueError):
            raise ExperimentError(
                f"experiment parameter {key!r} must be an integer, got {value!r}"
            ) from None

    # ------------------------------------------------------- lifecycle stages
    def reject_topology_spec(self, ctx: ExperimentContext) -> None:
        """Fail loudly when a scale/topology override cannot take effect.

        Canonical-figure experiments call this from ``build``: accepting
        ``--scale`` there would record a knob in the replayable spec
        that never influenced the outcome.
        """
        if ctx.spec.scale is not None or ctx.spec.topology:
            raise ExperimentError(
                f"experiment {self.name!r} runs on its canonical paper topology; "
                "scale/topology overrides are not supported"
            )

    def build(self, ctx: ExperimentContext) -> None:
        """Build the topology the spec describes (skipped for canonical-figure
        experiments whose spec carries neither a scale nor overrides)."""
        if ctx.spec.scale is not None or ctx.spec.topology:
            ctx.topology = ctx.spec.build_topology()

    def attach(self, ctx: ExperimentContext) -> None:
        """Attach every platform the spec lists, in order."""
        for platform_name in ctx.spec.platforms:
            self.attach_platform(ctx, platform_name)

    def attach_platform(self, ctx: ExperimentContext, platform_name: str) -> None:
        """Attach one named platform to the topology.

        ``atlas`` is placed after the injection platforms so probes never
        land inside them; attachment order therefore matters and follows
        ``spec.platforms``.
        """
        from repro.collectors.platform import CollectorDeployment
        from repro.probing.atlas import AtlasPlatform
        from repro.wild.peering import (
            InjectionPlatform,
            attach_peering_testbed,
            attach_research_network,
        )

        topology = ctx.require_topology()
        if platform_name == "peering":
            ctx.platforms[platform_name] = attach_peering_testbed(
                topology, upstream_count=self.int_param("upstream_count", 10)
            )
        elif platform_name == "research":
            ctx.platforms[platform_name] = attach_research_network(topology)
        elif platform_name == "collectors":
            ctx.platforms[platform_name] = CollectorDeployment.default_deployment(topology)
        elif platform_name == "atlas":
            exclude = {
                platform.asn
                for platform in ctx.platforms.values()
                if isinstance(platform, InjectionPlatform)
            }
            ctx.platforms[platform_name] = AtlasPlatform.deploy(
                topology,
                probe_count=self.int_param("probes", 200),
                exclude_asns=exclude,
            )
        else:
            raise ExperimentError(f"unknown platform attachment {platform_name!r}")

    def seed(self, ctx: ExperimentContext) -> None:
        """Pre-seed the control plane (default: nothing).

        Experiments that need a converged baseline call
        :meth:`seed_originated` here to batch-announce every origination
        the topology records in one shared worklist pass.
        """

    def seed_originated(self, ctx: ExperimentContext):
        """Batch-announce every originated prefix; returns the simulator.

        The simulator inherits the spec's ``shards`` parameter through
        the process default :meth:`run` scopes for the lifecycle, so
        pre-seeding a large topology — the heaviest single ``apply``
        most experiments run — is the first call site to go parallel
        when sharding is enabled.
        """
        from repro.routing.engine import BgpSimulator

        simulator = BgpSimulator(ctx.require_topology())
        ctx.scratch["seed_report"] = simulator.announce_originated()
        ctx.scratch["simulator"] = simulator
        return simulator

    def propagation_shards(self) -> int | str | None:
        """The spec's propagation shard policy (None = process default)."""
        value = self.param("shards")
        if value is None or value == "auto":
            return value
        try:
            return int(value)
        except (TypeError, ValueError):
            raise ExperimentError(
                f"experiment parameter 'shards' must be an integer or 'auto', got {value!r}"
            ) from None

    def residency_policy(self) -> str | None:
        """The spec's pool-residency policy (None = whatever is active)."""
        value = self.param("residency")
        if value is None:
            return None
        from repro.routing.residency import RESIDENCY_POLICIES

        if value not in RESIDENCY_POLICIES:
            raise ExperimentError(
                f"experiment parameter 'residency' must be one of "
                f"{', '.join(RESIDENCY_POLICIES)}, got {value!r}"
            )
        return value

    def execute(self, ctx: ExperimentContext) -> dict[str, Any]:
        """Run the experiment; returns the JSON-safe metrics dict."""
        raise NotImplementedError

    def validate(self, ctx: ExperimentContext, metrics: dict[str, Any]) -> bool:
        """Accept or reject the executed run (default: accept)."""
        return True

    def render_text(self, result: ExperimentResult) -> str:
        """Human-readable rendering of a result (default: pretty JSON).

        Implementations must render from ``result.metrics`` alone so
        results deserialized from JSON (e.g. grid-runner workers) render
        identically to in-process ones.
        """
        return result.to_json(indent=2)

    # ------------------------------------------------------------ the driver
    def run(self) -> ExperimentResult:
        """Drive the five lifecycle stages, timing each one.

        A ``shards`` spec parameter becomes the process-default
        propagation policy for the duration of the run, so *every*
        simulator the experiment builds — pre-seeding, per-scenario
        baselines, sweep iterations — inherits it without each call
        site threading a parameter.  A ``residency`` parameter likewise
        scopes a shard-pool provider over the whole lifecycle, so
        build→seed→execute→validate (and, when an enclosing scope with
        the same policy is already active, consecutive grid cells) share
        warm workers; the run's simulators are closed before the scope
        resolves so their pools return to the provider deterministically.

        Exceptions from the repro library are captured as
        ``status="error"`` results (so one bad grid cell never kills the
        batch); anything else propagates.
        """
        from repro.routing.engine import BgpSimulator, propagation_shards
        from repro.routing.residency import residency_scope

        ctx = self.context
        timings: dict[str, float] = {}
        metrics: dict[str, Any] = {}
        status = ExperimentStatus.OK
        error: str | None = None
        try:
            with propagation_shards(self.propagation_shards()), residency_scope(
                self.residency_policy()
            ):
                try:
                    for stage in ("build", "attach", "seed"):
                        started = time.perf_counter()
                        getattr(self, stage)(ctx)
                        timings[stage] = time.perf_counter() - started
                    started = time.perf_counter()
                    metrics = self.execute(ctx) or {}
                    timings["execute"] = time.perf_counter() - started
                    started = time.perf_counter()
                    accepted = self.validate(ctx, metrics)
                    timings["validate"] = time.perf_counter() - started
                finally:
                    # Release every simulator's pool lease while the
                    # residency scope is still active: under a warm
                    # policy the pools park for the next run/cell
                    # instead of dying with a GC finalizer later.  A
                    # closed simulator stays fully usable — it simply
                    # re-acquires a pool on its next sharded batch.
                    for value in list(ctx.scratch.values()):
                        if isinstance(value, BgpSimulator):
                            value.close()
            if not accepted:
                status = ExperimentStatus.FAILED
        except ReproError as exc:
            status = ExperimentStatus.ERROR
            error = f"{type(exc).__name__}: {exc}"
        self.result = ExperimentResult(
            name=self.spec.name,
            spec=self.spec.to_dict(),
            status=status,
            metrics=metrics,
            timings=timings,
            error=error,
        )
        return self.result
