"""Fan a grid of experiment specs across worker processes.

:func:`expand_grid` turns (seeds x scales x parameter axes) into a
deterministic list of :class:`ExperimentSpec`; :class:`GridRunner`
executes such a list either sequentially in-process or across a
``ProcessPoolExecutor``.  Specs and results cross the process boundary
as plain dicts (the spec/result round-trip), and results always come
back **in spec order**, so a parallel run is comparable element-wise
with a sequential one — the first concrete step toward sharding the
provably-independent per-prefix work of the batch propagation engine.
"""

from __future__ import annotations

import itertools
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.experiments.registry import get, run_experiment
from repro.experiments.result import ExperimentResult
from repro.experiments.spec import ExperimentSpec


def expand_grid(
    name: str,
    seeds: Sequence[int] = (42,),
    scales: Sequence[str | None] = (None,),
    param_grid: dict[str, Sequence[Any]] | None = None,
    **base_params: Any,
) -> list[ExperimentSpec]:
    """Expand seeds x scales x parameter axes into specs, deterministically.

    Axes iterate in the order given (parameter axes by sorted key), so the
    same arguments always produce the same spec list in the same order.
    """
    experiment_cls = get(name)
    axes = sorted((param_grid or {}).items())
    keys = [key for key, _values in axes]
    value_lists = [list(values) for _key, values in axes]
    specs: list[ExperimentSpec] = []
    for seed in seeds:
        for scale in scales:
            for combo in itertools.product(*value_lists) if value_lists else [()]:
                params = dict(base_params)
                params.update(zip(keys, combo))
                specs.append(experiment_cls.default_spec(seed=seed, scale=scale, **params))
    return specs


def _run_spec_payload(payload: dict[str, Any]) -> dict[str, Any]:
    """Worker entry point: dict in, dict out (both sides picklable)."""
    spec = ExperimentSpec.from_dict(payload)
    return run_experiment(spec).to_dict()


@dataclass
class GridRunner:
    """Run many experiment specs with deterministic result ordering."""

    #: Worker processes (None = ProcessPoolExecutor's default, the CPU count).
    max_workers: int | None = None

    def run(
        self, specs: Iterable[ExperimentSpec], parallel: bool = True
    ) -> list[ExperimentResult]:
        """Run every spec; results are returned in spec order.

        With ``parallel=True`` the specs fan out over worker processes;
        a single-spec grid always runs in-process (no pool overhead).
        """
        specs = list(specs)
        if not parallel or len(specs) <= 1:
            return [run_experiment(spec) for spec in specs]
        payloads = [spec.to_dict() for spec in specs]
        with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
            return [
                ExperimentResult.from_dict(result_payload)
                for result_payload in pool.map(_run_spec_payload, payloads)
            ]

    def run_sequential(self, specs: Iterable[ExperimentSpec]) -> list[ExperimentResult]:
        """The in-process reference execution (same ordering guarantee)."""
        return self.run(specs, parallel=False)
