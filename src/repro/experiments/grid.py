"""Fan a grid of experiment specs across worker processes.

:func:`expand_grid` turns (seeds x scales x parameter axes) into a
deterministic list of :class:`ExperimentSpec`; :class:`GridRunner`
executes such a list either sequentially in-process or across a
``ProcessPoolExecutor``.  Specs and results cross the process boundary
as plain dicts (the spec/result round-trip), and results always come
back **in spec order**, so a parallel run is comparable element-wise
with a sequential one.

Two orthogonal levels of parallelism compose here: the grid fans *specs*
over workers, and each spec's experiment may fan its *propagation* over
shard workers (``--param shards=K``, see :mod:`repro.routing.shard`).
:func:`worker_budget` splits the machine between the two — the grid
claims ``cpu // shards`` workers and hands each worker a
:data:`~repro.routing.shard.SHARD_BUDGET_ENV` slice of ``cpu //
workers``, so grid workers times propagation shards never oversubscribes
the host.

Results persist as JSON lines: ``GridRunner.run(...,
output_path=...)`` streams each :meth:`ExperimentResult.to_json` line to
disk as it completes (a crashed grid keeps everything finished so far),
and :func:`load_results` replays a file back into result objects.
"""

from __future__ import annotations

import itertools
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Iterable, Sequence, TextIO

from repro.experiments.registry import get, run_experiment
from repro.experiments.result import ExperimentResult
from repro.experiments.spec import ExperimentSpec
from repro.routing.shard import SHARD_BUDGET_ENV


def expand_grid(
    name: str,
    seeds: Sequence[int] = (42,),
    scales: Sequence[str | None] = (None,),
    param_grid: dict[str, Sequence[Any]] | None = None,
    **base_params: Any,
) -> list[ExperimentSpec]:
    """Expand seeds x scales x parameter axes into specs, deterministically.

    Axes iterate in the order given (parameter axes by sorted key), so the
    same arguments always produce the same spec list in the same order.
    """
    experiment_cls = get(name)
    axes = sorted((param_grid or {}).items())
    keys = [key for key, _values in axes]
    value_lists = [list(values) for _key, values in axes]
    specs: list[ExperimentSpec] = []
    for seed in seeds:
        for scale in scales:
            for combo in itertools.product(*value_lists) if value_lists else [()]:
                params = dict(base_params)
                params.update(zip(keys, combo))
                specs.append(experiment_cls.default_spec(seed=seed, scale=scale, **params))
    return specs


def worker_budget(
    task_count: int,
    max_workers: int | None = None,
    shards_per_task: int = 1,
    cpu_total: int | None = None,
) -> tuple[int, int]:
    """Split the machine between grid workers and per-task propagation shards.

    Returns ``(workers, shard_budget)``: the grid may run ``workers``
    processes, and each of them may in turn use ``shard_budget``
    propagation shard workers — chosen so ``workers * shards_per_task``
    never exceeds the CPU total.  ``max_workers`` is an additional
    caller-imposed cap; ``cpu_total`` overrides ``os.cpu_count()``
    (mainly for tests).
    """
    total = cpu_total if cpu_total is not None else (os.cpu_count() or 1)
    total = max(1, total)
    shards = max(1, shards_per_task)
    ceiling = max(1, total // shards)
    cap = max_workers if max_workers is not None else total
    workers = max(1, min(task_count or 1, cap, ceiling))
    shard_budget = max(1, total // workers)
    return workers, shard_budget


def _spec_shards(spec: ExperimentSpec) -> int:
    """The propagation shard count a spec explicitly asks for (1 otherwise).

    ``shards="auto"`` deliberately counts as 1 here: auto resolves
    *inside* the worker against the shard budget the grid hands it, so
    the budget split — not this hint — is what prevents oversubscription.
    """
    value = spec.params.get("shards")
    if isinstance(value, int) and not isinstance(value, bool):
        return max(1, value)
    return 1


def _initialize_grid_worker(shard_budget: int, residency: str | None = None) -> None:
    """Grid worker initializer: pin the shard budget, install residency.

    The residency provider is installed process-wide (bottom of the
    scope stack) so every cell this worker runs shares one warm pool
    set for the worker's lifetime; a cell spec carrying its own
    ``residency`` parameter still overrides it lexically.
    """
    os.environ[SHARD_BUDGET_ENV] = str(shard_budget)
    if residency is not None:
        from repro.routing.residency import install_provider

        install_provider(residency)


def _run_spec_payload(payload: dict[str, Any]) -> dict[str, Any]:
    """Worker entry point: dict in, dict out (both sides picklable)."""
    spec = ExperimentSpec.from_dict(payload)
    return run_experiment(spec).to_dict()


def write_results(path: str, results: Iterable[ExperimentResult], append: bool = False) -> int:
    """Write results as JSON lines; returns how many were written."""
    written = 0
    with open(path, "a" if append else "w", encoding="utf-8") as stream:
        for result in results:
            _write_line(stream, result)
            written += 1
    return written


def load_results(path: str) -> list[ExperimentResult]:
    """Replay a JSON-lines result file written by :meth:`GridRunner.run`."""
    results: list[ExperimentResult] = []
    with open(path, encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if line:
                results.append(ExperimentResult.from_json(line))
    return results


def _write_line(stream: TextIO, result: ExperimentResult) -> None:
    stream.write(result.to_json())
    stream.write("\n")
    stream.flush()


@dataclass
class GridRunner:
    """Run many experiment specs with deterministic result ordering."""

    #: Worker processes (None = the shard-aware budget, at most the CPU count).
    max_workers: int | None = None
    #: Shard-pool residency policy for the cells (None = leave the
    #: active provider alone).  Sequential runs scope one provider over
    #: the whole grid so consecutive cells share warm workers; parallel
    #: runs install the provider in each grid worker, where it persists
    #: across every cell that worker serves.
    residency: str | None = None

    def run(
        self,
        specs: Iterable[ExperimentSpec],
        parallel: bool = True,
        output_path: str | None = None,
    ) -> list[ExperimentResult]:
        """Run every spec; results are returned in spec order.

        With ``parallel=True`` the specs fan out over worker processes,
        the worker count chosen by :func:`worker_budget` so that grid
        workers x the largest explicit ``shards`` parameter stays within
        the machine; a single-spec grid always runs in-process (no pool
        overhead).  With ``output_path`` every result is streamed to
        disk as a JSON line the moment it is available (spec order).
        """
        from repro.routing.residency import residency_scope

        specs = list(specs)
        stream: TextIO | None = None
        if output_path is not None:
            stream = open(output_path, "w", encoding="utf-8")
        try:
            results: list[ExperimentResult] = []
            if not parallel or len(specs) <= 1:
                with residency_scope(self.residency):
                    for spec in specs:
                        result = run_experiment(spec)
                        results.append(result)
                        if stream is not None:
                            _write_line(stream, result)
                return results
            shards_per_task = max((_spec_shards(spec) for spec in specs), default=1)
            workers, shard_budget = worker_budget(
                len(specs), self.max_workers, shards_per_task
            )
            payloads = [spec.to_dict() for spec in specs]
            with ProcessPoolExecutor(
                max_workers=workers,
                initializer=_initialize_grid_worker,
                initargs=(shard_budget, self.residency),
            ) as pool:
                for result_payload in pool.map(_run_spec_payload, payloads):
                    result = ExperimentResult.from_dict(result_payload)
                    results.append(result)
                    if stream is not None:
                        _write_line(stream, result)
            return results
        finally:
            if stream is not None:
                stream.close()

    def run_sequential(
        self, specs: Iterable[ExperimentSpec], output_path: str | None = None
    ) -> list[ExperimentResult]:
        """The in-process reference execution (same ordering guarantee)."""
        return self.run(specs, parallel=False, output_path=output_path)
