"""Built-in experiments that belong to no single attack/wild module.

Currently: the Section 4 measurement report, which drives the dataset
pipeline end to end (topology -> collectors -> archive -> every table
and figure of the paper's measurement study).  The archive comes from
one of two sources: the synthetic April-2018-style generator (the
default, byte-identical to previous releases) or a live harvest of the
simulated Internet's collector feeds — the latter is where the
``shards`` parameter fans both route propagation *and* the
(collector, peer) harvesting over worker processes.
"""

from __future__ import annotations

from typing import Any

from repro.exceptions import ExperimentError
from repro.experiments.registry import register
from repro.experiments.runner import Experiment, ExperimentContext
from repro.experiments.result import ExperimentResult


@register("report")
class ReportExperiment(Experiment):
    """Generate the dataset and render the Section 4 report."""

    description = "dataset (synthetic or live harvest) + every Section 4 table/figure"
    paper_section = "Section 4"
    default_scale = "small"
    #: ``source="synthetic"`` replays the generator; ``source="harvest"``
    #: converges the topology's originations and harvests the collector
    #: feeds from the live simulation (``shards`` parallelises both the
    #: propagation and the harvest).
    default_params = {"source": "synthetic"}

    def seed(self, ctx: ExperimentContext) -> None:
        source = self.param("source")
        if source == "synthetic":
            from repro.datasets.synthetic import DatasetParameters, build_default_dataset

            ctx.scratch["dataset"] = build_default_dataset(
                ctx.require_topology(), DatasetParameters(seed=ctx.spec.seed)
            )
        elif source == "harvest":
            from repro.collectors.platform import CollectorDeployment

            simulator = self.seed_originated(ctx)
            try:
                deployment = CollectorDeployment.default_deployment(
                    ctx.require_topology(), seed=ctx.spec.seed
                )
                ctx.scratch["deployment"] = deployment
                ctx.scratch["archive"] = deployment.collect_from_simulator(
                    simulator, shards=self.propagation_shards()
                )
            finally:
                simulator.close()
        else:
            raise ExperimentError(
                f"report parameter 'source' must be 'synthetic' or 'harvest', got {source!r}"
            )

    def execute(self, ctx: ExperimentContext) -> dict[str, Any]:
        from repro.datasets.giotsas import build_blackhole_list
        from repro.measurement.report import MeasurementReport
        from repro.measurement.propagation import transit_forwarders
        from repro.measurement.usage import overall_update_community_fraction

        if self.param("source") == "harvest":
            archive = ctx.scratch["archive"]
            topology = ctx.require_topology()
            blackhole_list = build_blackhole_list(topology, seed=ctx.spec.seed + 1)
        else:
            dataset = ctx.scratch["dataset"]
            archive, topology, blackhole_list = (
                dataset.archive,
                dataset.topology,
                dataset.blackhole_list,
            )
        report = MeasurementReport(archive, topology, blackhole_list)
        forwarders = transit_forwarders(archive)
        return {
            "report": report.full_report(),
            "source": self.param("source"),
            "messages": len(archive),
            "unique_communities": len(archive.unique_communities()),
            "update_community_fraction": overall_update_community_fraction(archive),
            "transit_forwarder_count": forwarders.forwarder_count,
            "transit_count": forwarders.transit_count,
        }

    def validate(self, ctx: ExperimentContext, metrics: dict[str, Any]) -> bool:
        if metrics["messages"] <= 0:
            return False
        # A live harvest of a policy-light topology can legitimately see
        # no communities; the synthetic generator always produces some.
        if self.param("source") == "synthetic":
            return metrics["unique_communities"] > 0
        return True

    def render_text(self, result: ExperimentResult) -> str:
        return result.metrics["report"]
