"""Built-in experiments that belong to no single attack/wild module.

Currently: the Section 4 measurement report, which drives the synthetic
dataset pipeline end to end (topology -> collectors -> archive -> every
table and figure of the paper's measurement study).
"""

from __future__ import annotations

from typing import Any

from repro.experiments.registry import register
from repro.experiments.runner import Experiment, ExperimentContext
from repro.experiments.result import ExperimentResult


@register("report")
class ReportExperiment(Experiment):
    """Generate the synthetic dataset and render the Section 4 report."""

    description = "synthetic dataset + every Section 4 table/figure"
    paper_section = "Section 4"
    default_scale = "small"

    def seed(self, ctx: ExperimentContext) -> None:
        from repro.datasets.synthetic import DatasetParameters, build_default_dataset

        ctx.scratch["dataset"] = build_default_dataset(
            ctx.require_topology(), DatasetParameters(seed=ctx.spec.seed)
        )

    def execute(self, ctx: ExperimentContext) -> dict[str, Any]:
        from repro.measurement.report import MeasurementReport
        from repro.measurement.propagation import transit_forwarders
        from repro.measurement.usage import overall_update_community_fraction

        dataset = ctx.scratch["dataset"]
        report = MeasurementReport(dataset.archive, dataset.topology, dataset.blackhole_list)
        forwarders = transit_forwarders(dataset.archive)
        return {
            "report": report.full_report(),
            "messages": dataset.message_count(),
            "unique_communities": len(dataset.archive.unique_communities()),
            "update_community_fraction": overall_update_community_fraction(dataset.archive),
            "transit_forwarder_count": forwarders.forwarder_count,
            "transit_count": forwarders.transit_count,
        }

    def validate(self, ctx: ExperimentContext, metrics: dict[str, Any]) -> bool:
        return metrics["messages"] > 0 and metrics["unique_communities"] > 0

    def render_text(self, result: ExperimentResult) -> str:
        return result.metrics["report"]
