"""Uniform, serializable experiment results.

Every experiment — lab attack, in-the-wild protocol, measurement report —
returns the same :class:`ExperimentResult` shape: a status, a flat
JSON-safe ``metrics`` dict, and per-lifecycle-stage wall-clock timings.
Results round-trip through JSON (``to_json``/``from_json``) so grid runs
can be persisted and replayed, and :meth:`comparable` strips the timings
so two runs of the same spec can be checked for equality.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum
from typing import Any

from repro.exceptions import ExperimentError


class ExperimentStatus(str, Enum):
    """How an experiment run ended."""

    #: Ran to completion and passed its validation step.
    OK = "ok"
    #: Ran to completion but the validation step rejected the outcome.
    FAILED = "failed"
    #: A lifecycle stage raised an exception.
    ERROR = "error"


@dataclass
class ExperimentResult:
    """The uniform outcome record of one experiment run."""

    name: str
    spec: dict[str, Any]
    status: ExperimentStatus = ExperimentStatus.OK
    metrics: dict[str, Any] = field(default_factory=dict)
    timings: dict[str, float] = field(default_factory=dict)
    error: str | None = None

    @property
    def succeeded(self) -> bool:
        """True if the run completed and validated."""
        return self.status is ExperimentStatus.OK

    def total_seconds(self) -> float:
        """Wall-clock time summed over every lifecycle stage."""
        return sum(self.timings.values())

    # ------------------------------------------------------------ round trip
    def comparable(self) -> dict[str, Any]:
        """The result minus timings — identical across reruns of one spec."""
        return {
            "name": self.name,
            "spec": self.spec,
            "status": self.status.value,
            "metrics": self.metrics,
            "error": self.error,
        }

    def to_dict(self) -> dict[str, Any]:
        """A plain, JSON-serializable representation (timings included)."""
        data = self.comparable()
        data["timings"] = dict(self.timings)
        return data

    def to_json(self, indent: int | None = None) -> str:
        """Serialize for persistence/replay."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ExperimentResult":
        """Rebuild a result from :meth:`to_dict` output."""
        if "name" not in data or "status" not in data:
            raise ExperimentError("an experiment result needs 'name' and 'status'")
        return cls(
            name=data["name"],
            spec=dict(data.get("spec", {})),
            status=ExperimentStatus(data["status"]),
            metrics=dict(data.get("metrics", {})),
            timings=dict(data.get("timings", {})),
            error=data.get("error"),
        )

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        """Rebuild a result from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))
