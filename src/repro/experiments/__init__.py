"""repro.experiments — the declarative experiment subsystem.

One API for every scenario in the repo (paper Sections 6-7):

* :class:`ExperimentSpec` — a serializable description of one run
  (seed, topology scale/overrides, platform attachments, parameters);
* :func:`register` / :func:`get` / :func:`available` — the registry each
  attack/wild module publishes its experiment class into;
* :class:`Experiment` + :func:`run_experiment` — the common lifecycle
  (build topology -> attach platforms -> seed routes -> execute ->
  validate) with per-stage timings;
* :class:`ExperimentResult` — the uniform, JSON-serializable outcome;
* :class:`GridRunner` / :func:`expand_grid` — fan a (seeds x scales x
  params) grid across worker processes with deterministic ordering.

Quickstart::

    from repro.experiments import get, run_experiment

    spec = get("rtbh-wild").default_spec(seed=7)
    result = run_experiment(spec)
    print(result.status, result.metrics["target_asn"])
    print(result.to_json(indent=2))   # persist for replay
"""

from repro.experiments.grid import (
    GridRunner,
    expand_grid,
    load_results,
    worker_budget,
    write_results,
)
from repro.experiments.registry import available, get, register, run_experiment
from repro.experiments.result import ExperimentResult, ExperimentStatus
from repro.experiments.runner import (
    LIFECYCLE_STAGES,
    Experiment,
    ExperimentContext,
)
from repro.experiments.spec import SCALE_PRESETS, ExperimentSpec

__all__ = [
    "SCALE_PRESETS",
    "LIFECYCLE_STAGES",
    "Experiment",
    "ExperimentContext",
    "ExperimentResult",
    "ExperimentSpec",
    "ExperimentStatus",
    "GridRunner",
    "available",
    "expand_grid",
    "get",
    "load_results",
    "register",
    "run_experiment",
    "worker_budget",
    "write_results",
]
