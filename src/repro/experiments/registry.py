"""The experiment registry: one name per scenario, one API for all of them.

Attack and wild modules register their experiment classes with the
:func:`register` decorator::

    @register("rtbh-wild")
    class WildRtbhExperiment(Experiment):
        ...

and every consumer (CLI, grid runner, notebooks) resolves names through
:func:`get`/:func:`available`.  The built-in experiment modules are
imported lazily on first lookup so importing :mod:`repro.experiments`
stays cheap and free of import cycles.
"""

from __future__ import annotations

import importlib
from typing import TYPE_CHECKING, Callable

from repro.exceptions import ExperimentError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.result import ExperimentResult
    from repro.experiments.runner import Experiment
    from repro.experiments.spec import ExperimentSpec

_REGISTRY: dict[str, type["Experiment"]] = {}

#: Modules that register the built-in experiments at import time.
_BUILTIN_MODULES = (
    "repro.attacks.feasibility",
    "repro.attacks.rtbh",
    "repro.attacks.steering",
    "repro.attacks.manipulation",
    "repro.wild.propagation_check",
    "repro.wild.blackhole_sweep",
    "repro.wild.experiments",
    "repro.experiments.builtin",
)
_builtins_loaded = False


def register(name: str) -> Callable[[type["Experiment"]], type["Experiment"]]:
    """Class decorator registering an experiment under ``name``."""

    def decorator(cls: type["Experiment"]) -> type["Experiment"]:
        existing = _REGISTRY.get(name)
        if existing is not None and existing is not cls:
            raise ExperimentError(
                f"experiment name {name!r} is already registered by {existing.__name__}"
            )
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return decorator


def _load_builtins() -> None:
    global _builtins_loaded
    if _builtins_loaded:
        return
    # Mark loaded only after every import succeeded: a failing builtin
    # module must surface its real ImportError on the next lookup too,
    # not a misleading "unknown experiment" from a half-filled registry.
    for module in _BUILTIN_MODULES:
        importlib.import_module(module)
    _builtins_loaded = True


def get(name: str) -> type["Experiment"]:
    """Look up a registered experiment class by name."""
    _load_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {name!r}; available: {', '.join(available())}"
        ) from None


def available() -> list[str]:
    """The sorted names of every registered experiment."""
    _load_builtins()
    return sorted(_REGISTRY)


def run_experiment(spec: "ExperimentSpec") -> "ExperimentResult":
    """Resolve ``spec.name`` in the registry and drive the full lifecycle."""
    return get(spec.name)(spec).run()
