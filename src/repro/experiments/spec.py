"""Declarative experiment specifications.

An :class:`ExperimentSpec` is the single, serializable description of one
experiment run: which registered experiment to execute, the deterministic
seed, the topology scale (a named preset plus explicit parameter
overrides), which platforms to graft onto the topology, and the
experiment-specific parameters.  Specs round-trip through plain dicts
(``to_dict``/``from_dict``) so a grid of runs can be persisted, shipped to
worker processes, and replayed.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any

from repro.exceptions import ExperimentError
from repro.topology.generator import TopologyGenerator, TopologyParameters
from repro.topology.topology import Topology

#: Named topology sizes shared by the CLI and the experiment specs.  A
#: preset is a set of :class:`TopologyParameters` overrides; ``default``
#: is the generator's own default size.
SCALE_PRESETS: dict[str, dict[str, int]] = {
    "small": {"tier1_count": 3, "transit_count": 20, "stub_count": 80},
    "default": {},
    "large": {"tier1_count": 8, "transit_count": 120, "stub_count": 700},
}

# The seed is never a topology override: it always comes from spec.seed.
_TOPOLOGY_FIELDS = {f.name for f in dataclasses.fields(TopologyParameters)} - {"seed"}
_SPEC_KEYS = ("name", "seed", "scale", "topology", "platforms", "params")


@dataclass
class ExperimentSpec:
    """Everything needed to reproduce one experiment run.

    * ``name`` — the registry name of the experiment to run;
    * ``seed`` — the deterministic seed threaded through topology
      generation, dataset synthesis, and platform placement;
    * ``scale`` — optional named preset from :data:`SCALE_PRESETS`;
    * ``topology`` — explicit :class:`TopologyParameters` overrides,
      applied on top of the scale preset;
    * ``platforms`` — platform attachments (``peering``, ``research``,
      ``collectors``, ``atlas``) grafted onto the topology in order;
    * ``params`` — experiment-specific parameters.
    """

    name: str
    seed: int = 42
    scale: str | None = None
    topology: dict[str, Any] = field(default_factory=dict)
    platforms: tuple[str, ...] = ()
    params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.scale is not None and self.scale not in SCALE_PRESETS:
            raise ExperimentError(
                f"unknown scale {self.scale!r}; choose from {', '.join(SCALE_PRESETS)}"
            )
        unknown = set(self.topology) - _TOPOLOGY_FIELDS
        if unknown:
            raise ExperimentError(
                f"unsupported topology parameter(s): {', '.join(sorted(unknown))}"
                " (the seed is set via the spec's own 'seed' field)"
            )
        self.platforms = tuple(self.platforms)

    # ------------------------------------------------------------- round trip
    def to_dict(self) -> dict[str, Any]:
        """A plain, JSON-serializable representation of the spec."""
        return {
            "name": self.name,
            "seed": self.seed,
            "scale": self.scale,
            "topology": dict(self.topology),
            "platforms": list(self.platforms),
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ExperimentSpec":
        """Rebuild a spec from :meth:`to_dict` output (strict on keys)."""
        unknown = set(data) - set(_SPEC_KEYS)
        if unknown:
            raise ExperimentError(f"unknown spec key(s): {', '.join(sorted(unknown))}")
        if "name" not in data:
            raise ExperimentError("an experiment spec needs a 'name'")
        return cls(
            name=data["name"],
            seed=int(data.get("seed", 42)),
            scale=data.get("scale"),
            topology=dict(data.get("topology", {})),
            platforms=tuple(data.get("platforms", ())),
            params=dict(data.get("params", {})),
        )

    def replace(self, **changes: Any) -> "ExperimentSpec":
        """A copy of the spec with the given fields replaced."""
        return dataclasses.replace(self, **changes)

    def with_params(self, **params: Any) -> "ExperimentSpec":
        """A copy of the spec with extra experiment parameters merged in."""
        merged = dict(self.params)
        merged.update(params)
        return self.replace(params=merged)

    # ------------------------------------------------------------- topology
    def topology_parameters(self) -> TopologyParameters:
        """The generator knobs: scale preset, then overrides, then the seed."""
        kwargs: dict[str, Any] = {}
        if self.scale is not None:
            kwargs.update(SCALE_PRESETS[self.scale])
        kwargs.update(self.topology)
        return TopologyParameters(seed=self.seed, **kwargs)

    def build_topology(self) -> Topology:
        """Generate the deterministic topology this spec describes."""
        return TopologyGenerator(self.topology_parameters()).generate()
