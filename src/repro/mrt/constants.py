"""MRT record type and subtype constants (RFC 6396)."""

from __future__ import annotations

from enum import IntEnum


class MrtType(IntEnum):
    """Top-level MRT record types used by BGP archives."""

    TABLE_DUMP = 12
    TABLE_DUMP_V2 = 13
    BGP4MP = 16
    BGP4MP_ET = 17


class Bgp4mpSubtype(IntEnum):
    """BGP4MP subtypes (we use the 4-byte-ASN message forms)."""

    STATE_CHANGE = 0
    MESSAGE = 1
    MESSAGE_AS4 = 4
    STATE_CHANGE_AS4 = 5


class TableDumpV2Subtype(IntEnum):
    """TABLE_DUMP_V2 subtypes."""

    PEER_INDEX_TABLE = 1
    RIB_IPV4_UNICAST = 2
    RIB_IPV4_MULTICAST = 3
    RIB_IPV6_UNICAST = 4
    RIB_IPV6_MULTICAST = 5
    RIB_GENERIC = 6


#: MRT common header is 12 bytes: timestamp, type, subtype, length.
MRT_HEADER_LENGTH = 12

#: Address family identifiers used inside BGP4MP records.
AFI_IPV4 = 1
AFI_IPV6 = 2
