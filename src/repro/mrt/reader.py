"""MRT binary reader (RFC 6396).

Decodes the record types written by :mod:`repro.mrt.writer`:
BGP4MP_MESSAGE / BGP4MP_MESSAGE_AS4 update records and TABLE_DUMP_V2
PEER_INDEX_TABLE / RIB records.  Unknown record types are surfaced as
raw :class:`MrtRecord` objects rather than being dropped.
"""

from __future__ import annotations

import io
import struct
from pathlib import Path
from typing import BinaryIO, Iterator

from repro.bgp.aspath import ASPath
from repro.bgp.attributes import Origin, PathAttributes
from repro.bgp.community import Community, CommunitySet
from repro.bgp.message import (
    AttributeTypeCode,
    FLAG_EXTENDED_LENGTH,
    _decode_as_path,
    _decode_prefix_nlri,
    decode_update,
)
from repro.bgp.prefix import AddressFamily
from repro.exceptions import MrtError, MrtTruncatedError
from repro.mrt.constants import (
    AFI_IPV4,
    AFI_IPV6,
    MRT_HEADER_LENGTH,
    Bgp4mpSubtype,
    MrtType,
    TableDumpV2Subtype,
)
from repro.mrt.entries import (
    Bgp4mpMessage,
    MrtRecord,
    PeerEntry,
    PeerIndexTable,
    RibEntry,
    RibPrefixRecord,
)


def iter_raw_records(data: bytes) -> Iterator[MrtRecord]:
    """Yield raw MRT records from a byte buffer.

    Thin wrapper over :func:`iter_stream_records` so the record framing
    (header layout, BGP4MP_ET microseconds, truncation errors) lives in
    exactly one place.
    """
    yield from iter_stream_records(io.BytesIO(data))


def _read_exact(stream: BinaryIO, count: int, what: str) -> bytes:
    """Read exactly ``count`` bytes or raise a truncation error."""
    chunks: list[bytes] = []
    remaining = count
    while remaining > 0:
        chunk = stream.read(remaining)
        if not chunk:
            raise MrtTruncatedError(f"truncated {what}")
        chunks.append(chunk)
        remaining -= len(chunk)
    return chunks[0] if len(chunks) == 1 else b"".join(chunks)


def iter_stream_records(stream: BinaryIO) -> Iterator[MrtRecord]:
    """Yield raw MRT records from an open binary stream, one record at a time.

    Unlike :func:`iter_raw_records` this never materialises the whole
    archive: only the current record's header and payload are held in
    memory, which is what lets multi-gigabyte update dumps replay
    through :meth:`ObservationArchive.from_mrt` without slurping.
    """
    while True:
        header = stream.read(MRT_HEADER_LENGTH)
        if not header:
            return
        if len(header) < MRT_HEADER_LENGTH:
            # A short read at EOF can still be a partial header.
            header += _read_exact(stream, MRT_HEADER_LENGTH - len(header), "MRT common header")
        timestamp, mrt_type, subtype, length = struct.unpack("!IHHI", header)
        microseconds = 0
        payload_length = length
        if mrt_type == int(MrtType.BGP4MP_ET):
            if payload_length < 4:
                raise MrtError("BGP4MP_ET record too short for the microsecond field")
            microseconds = struct.unpack(
                "!I", _read_exact(stream, 4, "BGP4MP_ET microsecond field")
            )[0]
            payload_length -= 4
        payload = _read_exact(stream, payload_length, "MRT record payload") if payload_length else b""
        yield MrtRecord(timestamp, mrt_type, subtype, payload, microseconds)


def decode_bgp4mp_message(record: MrtRecord) -> Bgp4mpMessage:
    """Decode a BGP4MP MESSAGE / MESSAGE_AS4 record into a :class:`Bgp4mpMessage`."""
    if not record.is_bgp4mp:
        raise MrtError(f"record type {record.mrt_type} is not BGP4MP")
    as4 = record.subtype in (int(Bgp4mpSubtype.MESSAGE_AS4), int(Bgp4mpSubtype.STATE_CHANGE_AS4))
    payload = record.payload
    asn_width = 4 if as4 else 2
    asn_format = "!I" if as4 else "!H"
    offset = 0
    if len(payload) < asn_width * 2 + 4:
        raise MrtError("BGP4MP payload too short")
    peer_asn = struct.unpack(asn_format, payload[offset:offset + asn_width])[0]
    offset += asn_width
    local_asn = struct.unpack(asn_format, payload[offset:offset + asn_width])[0]
    offset += asn_width
    interface_index, address_family = struct.unpack("!HH", payload[offset:offset + 4])
    offset += 4
    if address_family == AFI_IPV4:
        ip_bytes, family = 4, AddressFamily.IPV4
    elif address_family == AFI_IPV6:
        ip_bytes, family = 16, AddressFamily.IPV6
    else:
        raise MrtError(f"unsupported BGP4MP address family {address_family}")
    if offset + ip_bytes * 2 > len(payload):
        raise MrtError("truncated BGP4MP addresses")
    peer_ip = int.from_bytes(payload[offset:offset + ip_bytes], "big")
    offset += ip_bytes
    local_ip = int.from_bytes(payload[offset:offset + ip_bytes], "big")
    offset += ip_bytes
    update = decode_update(payload[offset:], family)
    return Bgp4mpMessage(
        timestamp=record.timestamp,
        peer_asn=peer_asn,
        local_asn=local_asn,
        peer_ip=peer_ip,
        local_ip=local_ip,
        interface_index=interface_index,
        address_family=address_family,
        update=update,
    )


def decode_peer_index_table(record: MrtRecord) -> PeerIndexTable:
    """Decode a TABLE_DUMP_V2 PEER_INDEX_TABLE record."""
    payload = record.payload
    if len(payload) < 6:
        raise MrtError("PEER_INDEX_TABLE payload too short")
    collector_bgp_id, view_length = struct.unpack("!IH", payload[:6])
    offset = 6
    if offset + view_length > len(payload):
        raise MrtError("truncated PEER_INDEX_TABLE view name")
    view_name = payload[offset:offset + view_length].decode("utf-8", errors="replace")
    offset += view_length
    if offset + 2 > len(payload):
        raise MrtError("truncated PEER_INDEX_TABLE peer count")
    (peer_count,) = struct.unpack("!H", payload[offset:offset + 2])
    offset += 2
    peers: list[PeerEntry] = []
    for _ in range(peer_count):
        if offset + 5 > len(payload):
            raise MrtError("truncated PEER_INDEX_TABLE peer entry")
        peer_type, bgp_id = struct.unpack("!BI", payload[offset:offset + 5])
        offset += 5
        ipv6 = bool(peer_type & 0x01)
        as4 = bool(peer_type & 0x02)
        ip_bytes = 16 if ipv6 else 4
        asn_bytes = 4 if as4 else 2
        if offset + ip_bytes + asn_bytes > len(payload):
            raise MrtError("truncated PEER_INDEX_TABLE peer address/ASN")
        peer_ip = int.from_bytes(payload[offset:offset + ip_bytes], "big")
        offset += ip_bytes
        peer_asn = int.from_bytes(payload[offset:offset + asn_bytes], "big")
        offset += asn_bytes
        peers.append(PeerEntry(bgp_id=bgp_id, peer_ip=peer_ip, peer_asn=peer_asn, ipv6=ipv6))
    return PeerIndexTable(collector_bgp_id=collector_bgp_id, view_name=view_name, peers=tuple(peers))


def _decode_rib_attributes(blob: bytes) -> PathAttributes:
    """Decode the attribute blob of one TABLE_DUMP_V2 RIB entry."""
    offset = 0
    origin = Origin.IGP
    as_path = ASPath()
    next_hop = 0
    med = None
    local_pref = None
    communities = CommunitySet()
    while offset < len(blob):
        if offset + 2 > len(blob):
            raise MrtError("truncated RIB attribute header")
        flags, type_code = blob[offset], blob[offset + 1]
        offset += 2
        if flags & FLAG_EXTENDED_LENGTH:
            if offset + 2 > len(blob):
                raise MrtError("truncated RIB extended attribute length")
            (attr_len,) = struct.unpack("!H", blob[offset:offset + 2])
            offset += 2
        else:
            if offset + 1 > len(blob):
                raise MrtError("truncated RIB attribute length")
            attr_len = blob[offset]
            offset += 1
        if offset + attr_len > len(blob):
            raise MrtError("RIB attribute overflows the blob")
        payload = blob[offset:offset + attr_len]
        offset += attr_len
        if type_code == AttributeTypeCode.ORIGIN and len(payload) == 1:
            origin = Origin(payload[0])
        elif type_code == AttributeTypeCode.AS_PATH:
            as_path = _decode_as_path(payload)
        elif type_code == AttributeTypeCode.NEXT_HOP and len(payload) == 4:
            (next_hop,) = struct.unpack("!I", payload)
        elif type_code == AttributeTypeCode.MULTI_EXIT_DISC and len(payload) == 4:
            (med,) = struct.unpack("!I", payload)
        elif type_code == AttributeTypeCode.LOCAL_PREF and len(payload) == 4:
            (local_pref,) = struct.unpack("!I", payload)
        elif type_code == AttributeTypeCode.COMMUNITIES and len(payload) % 4 == 0:
            communities = CommunitySet(
                Community.from_int(struct.unpack("!I", payload[i:i + 4])[0])
                for i in range(0, len(payload), 4)
            )
    return PathAttributes(
        as_path=as_path,
        origin=origin,
        next_hop=next_hop,
        med=med,
        local_pref=local_pref,
        communities=communities,
    )


def decode_rib_prefix_record(record: MrtRecord) -> RibPrefixRecord:
    """Decode a TABLE_DUMP_V2 RIB_IPV4_UNICAST or RIB_IPV6_UNICAST record."""
    payload = record.payload
    family = (
        AddressFamily.IPV4
        if record.subtype == int(TableDumpV2Subtype.RIB_IPV4_UNICAST)
        else AddressFamily.IPV6
    )
    if len(payload) < 4:
        raise MrtError("RIB record payload too short")
    (sequence,) = struct.unpack("!I", payload[:4])
    prefix, offset = _decode_prefix_nlri(payload, 4, family)
    if offset + 2 > len(payload):
        raise MrtError("truncated RIB entry count")
    (entry_count,) = struct.unpack("!H", payload[offset:offset + 2])
    offset += 2
    entries: list[RibEntry] = []
    for _ in range(entry_count):
        if offset + 8 > len(payload):
            raise MrtError("truncated RIB entry header")
        peer_index, originated_time, attr_len = struct.unpack("!HIH", payload[offset:offset + 8])
        offset += 8
        if offset + attr_len > len(payload):
            raise MrtError("truncated RIB entry attributes")
        attributes = _decode_rib_attributes(payload[offset:offset + attr_len])
        offset += attr_len
        entries.append(
            RibEntry(peer_index=peer_index, originated_time=originated_time, attributes=attributes)
        )
    return RibPrefixRecord(sequence=sequence, prefix=prefix, entries=tuple(entries))


def _decode_record(record: MrtRecord):
    """Dispatch one raw record to its specialised decoder (or pass it through)."""
    if record.is_bgp4mp and record.subtype in (
        int(Bgp4mpSubtype.MESSAGE),
        int(Bgp4mpSubtype.MESSAGE_AS4),
    ):
        return decode_bgp4mp_message(record)
    if record.is_table_dump_v2 and record.subtype == int(TableDumpV2Subtype.PEER_INDEX_TABLE):
        return decode_peer_index_table(record)
    if record.is_table_dump_v2 and record.subtype in (
        int(TableDumpV2Subtype.RIB_IPV4_UNICAST),
        int(TableDumpV2Subtype.RIB_IPV6_UNICAST),
    ):
        return decode_rib_prefix_record(record)
    return record


class MrtReader:
    """Iterator over decoded records of an MRT byte stream.

    Yields :class:`Bgp4mpMessage`, :class:`PeerIndexTable`,
    :class:`RibPrefixRecord`, or raw :class:`MrtRecord` objects for
    record types the reader does not specialise.

    A reader is backed either by an in-memory buffer (``MrtReader(data)``)
    or by a file (:meth:`from_file`), which is decoded **record at a
    time** — each iteration pass re-opens the file and streams it, so
    arbitrarily large archives never have to fit in memory.
    """

    def __init__(self, data: bytes | None = None, *, path: str | Path | None = None):
        if (data is None) == (path is None):
            raise MrtError("MrtReader needs exactly one of a byte buffer or a path")
        self._data = data
        self._path = Path(path) if path is not None else None

    @classmethod
    def from_file(cls, path: str | Path) -> "MrtReader":
        """Return a streaming reader over ``path`` (no whole-file slurp)."""
        return cls(path=path)

    def _raw_records(self) -> Iterator[MrtRecord]:
        if self._path is not None:
            with self._path.open("rb") as stream:
                yield from iter_stream_records(stream)
        else:
            assert self._data is not None
            yield from iter_raw_records(self._data)

    def __iter__(self):
        for record in self._raw_records():
            yield _decode_record(record)

    def messages(self) -> Iterator[Bgp4mpMessage]:
        """Yield only the BGP4MP update messages."""
        for item in self:
            if isinstance(item, Bgp4mpMessage):
                yield item


def read_records(path: str | Path) -> list:
    """Read and decode every record in an MRT file."""
    return list(MrtReader.from_file(path))


def read_stream(stream: BinaryIO) -> list:
    """Read and decode every record from an open binary stream (single pass)."""
    return [_decode_record(record) for record in iter_stream_records(stream)]
