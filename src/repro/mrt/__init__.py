"""MRT routing-information export format (RFC 6396) reader and writer.

The public BGP archives the paper uses (RIPE RIS, Route Views, Isolario,
PCH) distribute data as MRT files: BGP4MP message records for update
streams and TABLE_DUMP_V2 records for RIB snapshots.  This package
implements both directions so the synthetic collector platforms can
write byte-exact archives and the measurement pipeline can read either
our own archives or real ones.
"""

from repro.mrt.entries import (
    MrtRecord,
    Bgp4mpMessage,
    PeerIndexTable,
    PeerEntry,
    RibEntry,
    RibPrefixRecord,
)
from repro.mrt.constants import MrtType, Bgp4mpSubtype, TableDumpV2Subtype
from repro.mrt.writer import MrtWriter, write_records
from repro.mrt.reader import MrtReader, read_records

__all__ = [
    "MrtRecord",
    "Bgp4mpMessage",
    "PeerIndexTable",
    "PeerEntry",
    "RibEntry",
    "RibPrefixRecord",
    "MrtType",
    "Bgp4mpSubtype",
    "TableDumpV2Subtype",
    "MrtWriter",
    "write_records",
    "MrtReader",
    "read_records",
]
