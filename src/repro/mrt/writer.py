"""MRT binary writer (RFC 6396).

The synthetic collector platforms (:mod:`repro.collectors`) serialise
their update streams and RIB snapshots through this writer, producing
files that :mod:`repro.mrt.reader` — or any standard MRT tool — can
parse back.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import BinaryIO, Iterable

from repro.bgp.message import BgpUpdate, encode_update
from repro.bgp.prefix import AddressFamily, Prefix
from repro.exceptions import MrtError
from repro.mrt.constants import (
    AFI_IPV4,
    AFI_IPV6,
    Bgp4mpSubtype,
    MrtType,
    TableDumpV2Subtype,
)
from repro.mrt.entries import (
    Bgp4mpMessage,
    MrtRecord,
    PeerEntry,
    PeerIndexTable,
    RibEntry,
    RibPrefixRecord,
)
from repro.bgp.message import (
    AttributeTypeCode,
    FLAG_OPTIONAL,
    FLAG_TRANSITIVE,
    _encode_as_path,
    _encode_attribute,
    _encode_prefix_nlri,
)


def _encode_header(timestamp: int, mrt_type: int, subtype: int, payload: bytes) -> bytes:
    """Encode the 12-byte MRT common header followed by the payload."""
    if len(payload) > 0xFFFFFFFF:
        raise MrtError("MRT payload too large")
    return struct.pack("!IHHI", timestamp & 0xFFFFFFFF, mrt_type, subtype, len(payload)) + payload


def encode_record(record: MrtRecord) -> bytes:
    """Encode a raw :class:`MrtRecord` (header + payload)."""
    return _encode_header(record.timestamp, record.mrt_type, record.subtype, record.payload)


def encode_bgp4mp_message(message: Bgp4mpMessage) -> bytes:
    """Encode a BGP4MP_MESSAGE_AS4 record carrying one BGP UPDATE."""
    family = AddressFamily.IPV4 if message.address_family == AFI_IPV4 else AddressFamily.IPV6
    bgp_bytes = encode_update(message.update, family)
    if message.address_family == AFI_IPV4:
        ip_format, ip_bytes = "!II", 4
    elif message.address_family == AFI_IPV6:
        ip_format, ip_bytes = None, 16
    else:
        raise MrtError(f"unsupported address family {message.address_family}")

    header = struct.pack(
        "!IIHH",
        message.peer_asn & 0xFFFFFFFF,
        message.local_asn & 0xFFFFFFFF,
        message.interface_index & 0xFFFF,
        message.address_family & 0xFFFF,
    )
    if ip_format is not None:
        addresses = struct.pack(ip_format, message.peer_ip & 0xFFFFFFFF, message.local_ip & 0xFFFFFFFF)
    else:
        addresses = message.peer_ip.to_bytes(ip_bytes, "big") + message.local_ip.to_bytes(
            ip_bytes, "big"
        )
    payload = header + addresses + bgp_bytes
    return _encode_header(
        message.timestamp, int(MrtType.BGP4MP), int(Bgp4mpSubtype.MESSAGE_AS4), payload
    )


def encode_peer_index_table(table: PeerIndexTable, timestamp: int = 0) -> bytes:
    """Encode a TABLE_DUMP_V2 PEER_INDEX_TABLE record."""
    view_bytes = table.view_name.encode("utf-8")
    payload = struct.pack("!IH", table.collector_bgp_id & 0xFFFFFFFF, len(view_bytes))
    payload += view_bytes
    payload += struct.pack("!H", len(table.peers))
    for peer in table.peers:
        # Peer type: bit 0 = IPv6 address, bit 1 = 4-byte ASN (always set here).
        peer_type = 0x02 | (0x01 if peer.ipv6 else 0x00)
        payload += struct.pack("!BI", peer_type, peer.bgp_id & 0xFFFFFFFF)
        ip_bytes = 16 if peer.ipv6 else 4
        payload += peer.peer_ip.to_bytes(ip_bytes, "big")
        payload += struct.pack("!I", peer.peer_asn & 0xFFFFFFFF)
    return _encode_header(
        timestamp, int(MrtType.TABLE_DUMP_V2), int(TableDumpV2Subtype.PEER_INDEX_TABLE), payload
    )


def _encode_rib_attributes(entry: RibEntry) -> bytes:
    """Encode the path attributes of one RIB entry (TABLE_DUMP_V2 layout)."""
    attrs = entry.attributes
    blob = b""
    blob += _encode_attribute(AttributeTypeCode.ORIGIN, FLAG_TRANSITIVE, bytes([int(attrs.origin)]))
    blob += _encode_attribute(AttributeTypeCode.AS_PATH, FLAG_TRANSITIVE, _encode_as_path(attrs.as_path))
    blob += _encode_attribute(
        AttributeTypeCode.NEXT_HOP, FLAG_TRANSITIVE, struct.pack("!I", attrs.next_hop & 0xFFFFFFFF)
    )
    if attrs.med is not None:
        blob += _encode_attribute(
            AttributeTypeCode.MULTI_EXIT_DISC, FLAG_OPTIONAL, struct.pack("!I", attrs.med)
        )
    if attrs.local_pref is not None:
        blob += _encode_attribute(
            AttributeTypeCode.LOCAL_PREF, FLAG_TRANSITIVE, struct.pack("!I", attrs.local_pref)
        )
    if attrs.communities:
        payload = b"".join(struct.pack("!I", c.to_int()) for c in attrs.communities)
        blob += _encode_attribute(
            AttributeTypeCode.COMMUNITIES, FLAG_OPTIONAL | FLAG_TRANSITIVE, payload
        )
    return blob


def encode_rib_prefix_record(record: RibPrefixRecord, timestamp: int = 0) -> bytes:
    """Encode a TABLE_DUMP_V2 RIB_IPV4_UNICAST / RIB_IPV6_UNICAST record."""
    subtype = (
        TableDumpV2Subtype.RIB_IPV4_UNICAST
        if record.prefix.is_ipv4
        else TableDumpV2Subtype.RIB_IPV6_UNICAST
    )
    payload = struct.pack("!I", record.sequence & 0xFFFFFFFF)
    payload += _encode_prefix_nlri(record.prefix)
    payload += struct.pack("!H", len(record.entries))
    for entry in record.entries:
        attr_blob = _encode_rib_attributes(entry)
        payload += struct.pack(
            "!HIH", entry.peer_index & 0xFFFF, entry.originated_time & 0xFFFFFFFF, len(attr_blob)
        )
        payload += attr_blob
    return _encode_header(timestamp, int(MrtType.TABLE_DUMP_V2), int(subtype), payload)


class MrtWriter:
    """Streaming writer of MRT records to a binary file object."""

    def __init__(self, stream: BinaryIO):
        self._stream = stream
        self.records_written = 0

    def write_raw(self, record: MrtRecord) -> None:
        """Write a raw record."""
        self._stream.write(encode_record(record))
        self.records_written += 1

    def write_message(self, message: Bgp4mpMessage) -> None:
        """Write a BGP4MP_MESSAGE_AS4 record."""
        self._stream.write(encode_bgp4mp_message(message))
        self.records_written += 1

    def write_peer_index_table(self, table: PeerIndexTable, timestamp: int = 0) -> None:
        """Write a PEER_INDEX_TABLE record."""
        self._stream.write(encode_peer_index_table(table, timestamp))
        self.records_written += 1

    def write_rib_record(self, record: RibPrefixRecord, timestamp: int = 0) -> None:
        """Write a RIB prefix record."""
        self._stream.write(encode_rib_prefix_record(record, timestamp))
        self.records_written += 1


def write_records(path: str | Path, messages: Iterable[Bgp4mpMessage]) -> int:
    """Write BGP4MP messages to ``path``; return the number of records written."""
    path = Path(path)
    with path.open("wb") as stream:
        writer = MrtWriter(stream)
        for message in messages:
            writer.write_message(message)
        return writer.records_written
