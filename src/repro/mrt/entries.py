"""Dataclasses describing decoded MRT records."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bgp.attributes import PathAttributes
from repro.bgp.message import BgpUpdate
from repro.bgp.prefix import Prefix
from repro.mrt.constants import MrtType


@dataclass(frozen=True)
class MrtRecord:
    """A raw MRT record: common header plus undecoded payload bytes."""

    timestamp: int
    mrt_type: int
    subtype: int
    payload: bytes
    microseconds: int = 0

    @property
    def is_bgp4mp(self) -> bool:
        """True for BGP4MP / BGP4MP_ET records."""
        return self.mrt_type in (int(MrtType.BGP4MP), int(MrtType.BGP4MP_ET))

    @property
    def is_table_dump_v2(self) -> bool:
        """True for TABLE_DUMP_V2 records."""
        return self.mrt_type == int(MrtType.TABLE_DUMP_V2)


@dataclass(frozen=True)
class Bgp4mpMessage:
    """A decoded BGP4MP_MESSAGE_AS4 record: who sent what to whom, and the update."""

    timestamp: int
    peer_asn: int
    local_asn: int
    peer_ip: int
    local_ip: int
    interface_index: int
    address_family: int
    update: BgpUpdate


@dataclass(frozen=True)
class PeerEntry:
    """One peer in a TABLE_DUMP_V2 PEER_INDEX_TABLE."""

    bgp_id: int
    peer_ip: int
    peer_asn: int
    ipv6: bool = False


@dataclass(frozen=True)
class PeerIndexTable:
    """The PEER_INDEX_TABLE record that prefixes a TABLE_DUMP_V2 dump."""

    collector_bgp_id: int
    view_name: str
    peers: tuple[PeerEntry, ...] = ()


@dataclass(frozen=True)
class RibEntry:
    """One (peer, attributes) pair inside a TABLE_DUMP_V2 RIB record."""

    peer_index: int
    originated_time: int
    attributes: PathAttributes


@dataclass(frozen=True)
class RibPrefixRecord:
    """A TABLE_DUMP_V2 RIB record: all peers' routes for one prefix."""

    sequence: int
    prefix: Prefix
    entries: tuple[RibEntry, ...] = field(default_factory=tuple)
