"""Shared network data structures (longest-prefix-match tries)."""
