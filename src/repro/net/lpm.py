"""Per-address-family longest-prefix-match (LPM) radix tries.

Every data-plane validation in the paper — RTBH, traffic steering,
route manipulation — boils down to longest-prefix-match lookups: in the
per-AS FIBs (:mod:`repro.dataplane.fib`), in the Loc-RIBs
(:mod:`repro.bgp.rib`), and in the IP-to-AS mapper
(:mod:`repro.probing.ip2as`).  Those used to be O(n) scans over every
installed prefix, and they were family-blind: an IPv4 address integer
happily matched an IPv6 prefix whose low 32 bits lined up.

This module provides the shared fix: a path-compressed binary radix
(Patricia) trie per :class:`~repro.bgp.prefix.AddressFamily`.

* :class:`RadixTrie` — one family.  ``insert`` / ``delete`` / ``get``
  are O(prefix length) node visits; ``longest_match`` walks at most
  ``family.bits`` nodes regardless of table size; ``covering`` returns
  every stored prefix on the root-to-target path (less specifics) and
  ``covered`` every stored prefix inside the target (more specifics).
* :class:`LpmTable` — a dict of tries keyed by family.  A lookup never
  crosses families: an address is matched only against the trie of its
  own (given or inferred) family.

Design notes: nodes are path-compressed, so a table of *n* prefixes
holds at most ``2n - 1`` nodes; internal glue nodes carry no entry and
are pruned on delete, so long insert/delete churn cannot leak memory.
Values are opaque to the trie — the RIBs store :class:`RouteEntry`,
the FIBs :class:`FibEntry`, the mapper plain ASNs.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.bgp.prefix import AddressFamily, Prefix
from repro.exceptions import PrefixError
from repro.utils.ip import network_address

_IPV4_SPAN = 1 << 32


def infer_family(address: int) -> AddressFamily:
    """Guess the family of a bare integer address.

    Integers below 2**32 are treated as IPv4; anything else as IPv6.
    Callers that know the family (e.g. because the address was derived
    from a :class:`Prefix`) should pass it explicitly instead.
    """
    return AddressFamily.IPV4 if 0 <= address < _IPV4_SPAN else AddressFamily.IPV6


class _Node:
    """One (path-compressed) trie node: a prefix position plus an optional entry."""

    __slots__ = ("network", "length", "left", "right", "item")

    def __init__(self, network: int, length: int):
        self.network = network
        self.length = length
        self.left: _Node | None = None
        self.right: _Node | None = None
        #: The stored ``(prefix, value)`` pair, or None for glue nodes.
        self.item: tuple[Prefix, Any] | None = None


class RadixTrie:
    """A path-compressed binary radix (Patricia) trie for one address family."""

    __slots__ = ("family", "_bits", "_root", "_size")

    def __init__(self, family: AddressFamily):
        self.family = family
        self._bits = family.bits
        self._root = _Node(0, 0)
        self._size = 0

    # ----------------------------------------------------------------- helpers
    def _check_family(self, prefix: Prefix) -> None:
        if prefix.family != self.family:
            raise PrefixError(
                f"{prefix} is {prefix.family.name} but this trie holds {self.family.name}"
            )

    # ------------------------------------------------------------------ writes
    def insert(self, prefix: Prefix, value: Any) -> None:
        """Insert (or replace) the value stored under ``prefix``."""
        self._check_family(prefix)
        bits = self._bits
        node = self._root
        while True:
            if node.length == prefix.length and node.network == prefix.network:
                if node.item is None:
                    self._size += 1
                node.item = (prefix, value)
                return
            # Invariant: node is a strict ancestor of prefix here.
            branch = (prefix.network >> (bits - node.length - 1)) & 1
            child = node.left if branch == 0 else node.right
            if child is None:
                leaf = _Node(prefix.network, prefix.length)
                leaf.item = (prefix, value)
                if branch == 0:
                    node.left = leaf
                else:
                    node.right = leaf
                self._size += 1
                return
            limit = min(prefix.length, child.length)
            diff = prefix.network ^ child.network
            common = limit if diff == 0 else min(limit, bits - diff.bit_length())
            if common == child.length:
                node = child
                continue
            # The new prefix diverges inside the child's compressed edge:
            # split the edge at the divergence point.
            mid = _Node(network_address(prefix.network, common, bits), common)
            child_bit = (child.network >> (bits - common - 1)) & 1
            if child_bit == 0:
                mid.left = child
            else:
                mid.right = child
            if common == prefix.length:
                mid.item = (prefix, value)
            else:
                leaf = _Node(prefix.network, prefix.length)
                leaf.item = (prefix, value)
                if child_bit == 0:
                    mid.right = leaf
                else:
                    mid.left = leaf
            if branch == 0:
                node.left = mid
            else:
                node.right = mid
            self._size += 1
            return

    def delete(self, prefix: Prefix) -> bool:
        """Remove the entry stored under ``prefix``; return True if it existed."""
        self._check_family(prefix)
        bits = self._bits
        ancestors: list[_Node] = []
        node: _Node | None = self._root
        while node is not None:
            if node.length > prefix.length:
                return False
            if network_address(prefix.network, node.length, bits) != node.network:
                return False
            if node.length == prefix.length:
                if node.item is None:
                    return False
                node.item = None
                self._size -= 1
                self._prune(ancestors, node)
                return True
            branch = (prefix.network >> (bits - node.length - 1)) & 1
            ancestors.append(node)
            node = node.left if branch == 0 else node.right
        return False

    def _prune(self, ancestors: list[_Node], node: _Node) -> None:
        """Collapse entry-less nodes with fewer than two children after a delete."""
        current = node
        while ancestors:
            parent = ancestors.pop()
            children = [c for c in (current.left, current.right) if c is not None]
            if current.item is not None or len(children) >= 2:
                return
            replacement = children[0] if children else None
            if parent.left is current:
                parent.left = replacement
            else:
                parent.right = replacement
            if replacement is not None:
                # The parent kept its child count; nothing further collapses.
                return
            current = parent

    def clear(self) -> None:
        """Drop every entry."""
        self._root = _Node(0, 0)
        self._size = 0

    # ------------------------------------------------------------------- reads
    def get(self, prefix: Prefix, default: Any = None) -> Any:
        """Exact-match lookup of ``prefix`` (no LPM)."""
        self._check_family(prefix)
        bits = self._bits
        node: _Node | None = self._root
        while node is not None:
            if node.length > prefix.length:
                return default
            if network_address(prefix.network, node.length, bits) != node.network:
                return default
            if node.length == prefix.length:
                return node.item[1] if node.item is not None else default
            branch = (prefix.network >> (bits - node.length - 1)) & 1
            node = node.left if branch == 0 else node.right
        return default

    def longest_match(self, address: int) -> tuple[Prefix, Any] | None:
        """Return the ``(prefix, value)`` of the most specific prefix covering ``address``."""
        bits = self._bits
        if not 0 <= address < (1 << bits):
            return None
        best: tuple[Prefix, Any] | None = None
        node: _Node | None = self._root
        while node is not None:
            if node.length and network_address(address, node.length, bits) != node.network:
                break
            if node.item is not None:
                best = node.item
            if node.length >= bits:
                break
            branch = (address >> (bits - node.length - 1)) & 1
            node = node.left if branch == 0 else node.right
        return best

    def covering(self, prefix: Prefix) -> list[tuple[Prefix, Any]]:
        """Return stored entries whose prefix covers ``prefix``, least specific first."""
        self._check_family(prefix)
        bits = self._bits
        results: list[tuple[Prefix, Any]] = []
        node: _Node | None = self._root
        while node is not None and node.length <= prefix.length:
            if network_address(prefix.network, node.length, bits) != node.network:
                break
            if node.item is not None:
                results.append(node.item)
            if node.length == prefix.length:
                break
            branch = (prefix.network >> (bits - node.length - 1)) & 1
            node = node.left if branch == 0 else node.right
        return results

    def covered(self, prefix: Prefix) -> list[tuple[Prefix, Any]]:
        """Return stored entries covered by ``prefix`` (equal or more specific)."""
        self._check_family(prefix)
        bits = self._bits
        node: _Node | None = self._root
        while node is not None and node.length < prefix.length:
            if network_address(prefix.network, node.length, bits) != node.network:
                return []
            branch = (prefix.network >> (bits - node.length - 1)) & 1
            node = node.left if branch == 0 else node.right
        if node is None:
            return []
        if network_address(node.network, prefix.length, bits) != prefix.network:
            return []
        results: list[tuple[Prefix, Any]] = []
        stack = [node]
        while stack:
            current = stack.pop()
            if current.item is not None:
                results.append(current.item)
            if current.right is not None:
                stack.append(current.right)
            if current.left is not None:
                stack.append(current.left)
        return results

    def items(self) -> Iterator[tuple[Prefix, Any]]:
        """Yield every stored ``(prefix, value)`` pair (pre-order: shorter first)."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.item is not None:
                yield node.item
            if node.right is not None:
                stack.append(node.right)
            if node.left is not None:
                stack.append(node.left)

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[tuple[Prefix, Any]]:
        return self.items()

    def __contains__(self, prefix: Prefix) -> bool:
        sentinel = object()
        return self.get(prefix, sentinel) is not sentinel


def cached_table(
    cache: "tuple[Any, LpmTable] | None",
    fingerprint: Any,
    items: "Iterator[tuple[Prefix, Any]] | Any",
) -> "tuple[tuple[Any, LpmTable], LpmTable]":
    """Reuse (or rebuild) a fingerprint-invalidated cached :class:`LpmTable`.

    The shared pattern behind every derived prefix-ownership trie
    (:meth:`Topology.origin_table`, :meth:`AutonomousSystem.originates`,
    :meth:`InjectionPlatform.owns`): the caller computes a content
    fingerprint of its source collection, and the table is rebuilt from
    ``items`` (an iterable of ``(prefix, value)``) only when the
    fingerprint changed.  Returns ``(new_cache, table)``; the caller
    stores ``new_cache`` back into its cache slot.
    """
    if cache is not None and cache[0] == fingerprint:
        return cache, cache[1]
    table = LpmTable()
    for prefix, value in items:
        table.insert(prefix, value)
    cache = (fingerprint, table)
    return cache, table


class LpmTable:
    """A family-safe LPM table: one :class:`RadixTrie` per address family.

    Lookups are strictly per family — an IPv4 address can never match an
    IPv6 prefix or vice versa, which is the structural fix for the
    family-blind linear scans this subsystem replaces.
    """

    __slots__ = ("_tries",)

    def __init__(self):
        self._tries: dict[AddressFamily, RadixTrie] = {}

    def _trie(self, family: AddressFamily, create: bool = False) -> RadixTrie | None:
        trie = self._tries.get(family)
        if trie is None and create:
            trie = self._tries[family] = RadixTrie(family)
        return trie

    def insert(self, prefix: Prefix, value: Any) -> None:
        """Insert (or replace) the value stored under ``prefix``."""
        self._trie(prefix.family, create=True).insert(prefix, value)

    def delete(self, prefix: Prefix) -> bool:
        """Remove ``prefix``; return True if it was present."""
        trie = self._trie(prefix.family)
        return trie.delete(prefix) if trie is not None else False

    def get(self, prefix: Prefix, default: Any = None) -> Any:
        """Exact-match lookup."""
        trie = self._trie(prefix.family)
        return trie.get(prefix, default) if trie is not None else default

    def longest_match(
        self, address: int, family: AddressFamily | None = None
    ) -> tuple[Prefix, Any] | None:
        """LPM lookup of an integer address within one family's trie.

        When ``family`` is None it is inferred with :func:`infer_family`.
        """
        if family is None:
            family = infer_family(address)
        trie = self._trie(family)
        return trie.longest_match(address) if trie is not None else None

    def covering(self, prefix: Prefix) -> list[tuple[Prefix, Any]]:
        """Entries covering ``prefix`` in its own family, least specific first."""
        trie = self._trie(prefix.family)
        return trie.covering(prefix) if trie is not None else []

    def covered(self, prefix: Prefix) -> list[tuple[Prefix, Any]]:
        """Entries covered by ``prefix`` in its own family."""
        trie = self._trie(prefix.family)
        return trie.covered(prefix) if trie is not None else []

    def clear(self) -> None:
        """Drop every entry in every family."""
        self._tries.clear()

    def items(self) -> Iterator[tuple[Prefix, Any]]:
        """Yield every ``(prefix, value)`` pair across families (IPv4 first)."""
        for family in sorted(self._tries):
            yield from self._tries[family].items()

    def __len__(self) -> int:
        return sum(len(trie) for trie in self._tries.values())

    def __iter__(self) -> Iterator[tuple[Prefix, Any]]:
        return self.items()

    def __contains__(self, prefix: Prefix) -> bool:
        trie = self._trie(prefix.family)
        return trie is not None and prefix in trie
