"""Per-AS community documentation and the value-popularity model.

Real providers document their communities on their web sites and in IRR
objects; there is no central registry (Section 2).  We model that
scattered documentation as a :class:`CommunityDocumentation` per AS and
calibrate the *values* ASes choose to the popularity ranking the paper
reports in Figure 5(c): convenient round numbers (100, 200, 1000, ...),
the blackhole value 666, plus a very long tail of arbitrary values.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bgp.community import Community
from repro.utils.rand import DeterministicRng

#: Popular community values and their relative weights, calibrated to the
#: flavour of Figure 5(c): small round numbers dominate, 666 appears mostly
#: in off-path (blackhole) use, and everything is individually rare.
POPULAR_ON_PATH_VALUES: dict[int, float] = {
    1000: 1.2,
    100: 1.1,
    1: 1.0,
    200: 1.0,
    2000: 0.9,
    10: 0.8,
    2: 0.8,
    3000: 0.7,
    0: 0.7,
    500: 0.6,
    20: 0.5,
    300: 0.4,
    50: 0.3,
}

POPULAR_OFF_PATH_VALUES: dict[int, float] = {
    1: 1.2,
    65000: 1.1,
    666: 1.0,
    100: 0.9,
    0: 0.9,
    3000: 0.8,
    2: 0.8,
    1000: 0.7,
    9498: 0.6,
    200: 0.6,
    2001: 0.4,
    80: 0.3,
}


@dataclass
class CommunityDocumentation:
    """The communities one AS documents, grouped by purpose."""

    asn: int
    informational_values: list[int] = field(default_factory=list)
    location_values: list[int] = field(default_factory=list)
    action_values: list[int] = field(default_factory=list)
    blackhole_values: list[int] = field(default_factory=list)

    def all_communities(self) -> list[Community]:
        """Return every documented community of this AS."""
        values = (
            self.informational_values
            + self.location_values
            + self.action_values
            + self.blackhole_values
        )
        return [Community(self.asn, v) for v in sorted(set(values))]

    def informational_communities(self) -> list[Community]:
        """Communities with no routing action (origin/ingress tags and the like)."""
        return [Community(self.asn, v) for v in self.informational_values]

    def location_communities(self) -> list[Community]:
        """Ingress-location tag communities."""
        return [Community(self.asn, v) for v in self.location_values]

    def blackhole_communities(self) -> list[Community]:
        """RTBH trigger communities."""
        return [Community(self.asn, v) for v in self.blackhole_values]


class CommunityUsageModel:
    """Chooses community values for ASes, reproducing the paper's value popularity."""

    def __init__(self, rng: DeterministicRng):
        self._rng = rng
        self._documentation: dict[int, CommunityDocumentation] = {}

    def _draw_value(self, popular: dict[int, float], tail_probability: float = 0.35) -> int:
        """Draw a community value: popular head with probability 1-tail, else long tail."""
        if self._rng.chance(tail_probability):
            return self._rng.randint(1, 65535)
        values = list(popular)
        weights = [popular[v] for v in values]
        return self._rng.weighted_choice(values, weights)

    def documentation_for(self, asn: int, offers_blackhole: bool = False) -> CommunityDocumentation:
        """Return (building lazily) the documented communities of ``asn``."""
        if asn in self._documentation:
            return self._documentation[asn]
        informational = sorted(
            {self._draw_value(POPULAR_ON_PATH_VALUES) for _ in range(self._rng.randint(1, 4))}
        )
        # Location values are operator-chosen codes; there is no global
        # convention, so each AS picks its own small set of arbitrary values.
        locations = sorted(
            {self._rng.randint(1, 65535) for _ in range(self._rng.randint(0, 3))}
        )
        actions = sorted(
            {self._draw_value(POPULAR_ON_PATH_VALUES) for _ in range(self._rng.randint(0, 3))}
        )
        blackholes = [666] if offers_blackhole else []
        documentation = CommunityDocumentation(
            asn=asn,
            informational_values=list(informational),
            location_values=list(locations),
            action_values=list(actions),
            blackhole_values=blackholes,
        )
        self._documentation[asn] = documentation
        return documentation

    def off_path_value(self) -> int:
        """Draw a value for an off-path community (IXP/bundled/private tagging)."""
        return self._draw_value(POPULAR_OFF_PATH_VALUES, tail_probability=0.3)

    def on_path_value(self) -> int:
        """Draw a value for an on-path community."""
        return self._draw_value(POPULAR_ON_PATH_VALUES, tail_probability=0.4)

    def documented_ases(self) -> list[int]:
        """Return the ASes for which documentation has been generated."""
        return sorted(self._documentation)
