"""Blackhole community lists in the style of Giotsas et al. (IMC 2017).

Section 7.6 of the paper sweeps the 307 *verified* blackhole
communities identified by prior work (plus notes 115 further *inferred*
ones).  We regenerate an equivalent labelled list from the simulated
topology: every AS that offers an RTBH service contributes its
blackhole communities, and a configurable number of extra "inferred"
entries (some of which are wrong, as inference is imperfect) pads the
list to the requested size.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bgp.community import BLACKHOLE, Community
from repro.topology.topology import Topology
from repro.utils.rand import DeterministicRng


@dataclass(frozen=True)
class BlackholeCommunityRecord:
    """One list entry: the community, its target AS, and how it was labelled."""

    community: Community
    target_asn: int
    verified: bool = True
    #: True if the community actually triggers blackholing in the ground truth
    #: (inferred entries may be wrong).
    actually_blackholes: bool = True


@dataclass
class BlackholeCommunityList:
    """A labelled list of blackhole communities."""

    records: list[BlackholeCommunityRecord] = field(default_factory=list)

    def verified(self) -> list[BlackholeCommunityRecord]:
        """Return only the verified entries (the 307-style list)."""
        return [r for r in self.records if r.verified]

    def inferred(self) -> list[BlackholeCommunityRecord]:
        """Return only the inferred entries (the 115-style list)."""
        return [r for r in self.records if not r.verified]

    def communities(self) -> list[Community]:
        """Return every community in the list."""
        return [r.community for r in self.records]

    def verified_communities(self) -> list[Community]:
        """Return the verified communities."""
        return [r.community for r in self.verified()]

    def record_for(self, community: Community) -> BlackholeCommunityRecord | None:
        """Return the record for ``community`` (None if absent)."""
        for record in self.records:
            if record.community == community:
                return record
        return None

    def __len__(self) -> int:
        return len(self.records)


def build_blackhole_list(
    topology: Topology,
    inferred_count: int = 10,
    inferred_error_rate: float = 0.4,
    seed: int = 99,
) -> BlackholeCommunityList:
    """Build the blackhole community list for a topology.

    Verified entries are the RTBH communities of every AS whose service
    catalogue includes a blackhole action (ground truth, so "verified"
    is literally true).  Inferred entries are plausible-looking ``asn:666``
    communities of ASes that may or may not actually honour them;
    ``inferred_error_rate`` controls how many are wrong.
    """
    rng = DeterministicRng(seed).child("blackhole-list")
    records: list[BlackholeCommunityRecord] = []
    offering_asns: set[int] = set()
    for asys in topology:
        if asys.services is None:
            continue
        for community in asys.services.blackhole_communities():
            if community == BLACKHOLE:
                # The well-known community is not AS-specific; skip it in the
                # per-AS list (the sweep tests it separately).
                continue
            records.append(
                BlackholeCommunityRecord(
                    community=community, target_asn=asys.asn, verified=True
                )
            )
            offering_asns.add(asys.asn)

    candidates = [
        asys.asn
        for asys in topology.transit_ases()
        if asys.asn not in offering_asns and asys.asn <= 0xFFFF
    ]
    for asn in rng.sample(candidates, min(inferred_count, len(candidates))):
        records.append(
            BlackholeCommunityRecord(
                community=Community(asn, 666),
                target_asn=asn,
                verified=False,
                actually_blackholes=not rng.chance(inferred_error_rate),
            )
        )
    return BlackholeCommunityList(records=records)
