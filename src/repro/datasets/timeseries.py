"""Longitudinal community-usage model (Figure 3).

Figure 3 of the paper plots, from 2010 to 2018, the number of unique
ASes appearing in communities, unique communities, absolute community
attachments, and BGP table entries, and the text notes an 18–20 %
increase in observable communities over the final year.  We model the
series as smooth exponential growth curves anchored to the 2018 values
observed in a synthetic dataset (or to the paper's own 2018 numbers),
which reproduces the *shape* of the figure — monotone growth with the
community curves growing faster than the table itself.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import DatasetError


@dataclass(frozen=True)
class YearlySnapshot:
    """One year's headline counts (the four series of Figure 3)."""

    year: int
    unique_ases_in_communities: int
    unique_communities: int
    absolute_communities: int
    bgp_table_entries: int


@dataclass
class GrowthModel:
    """Exponential growth model anchored at a final-year snapshot."""

    final_year: int = 2018
    first_year: int = 2010
    #: Year-over-year growth of unique communities (the paper reports ~18–20 %).
    community_growth_rate: float = 0.18
    #: Year-over-year growth of ASes using communities.
    as_growth_rate: float = 0.12
    #: Year-over-year growth of absolute community attachments.
    absolute_growth_rate: float = 0.22
    #: Year-over-year growth of BGP table entries (much slower).
    table_growth_rate: float = 0.05

    def series(self, final_snapshot: YearlySnapshot) -> list[YearlySnapshot]:
        """Return yearly snapshots from ``first_year`` to ``final_year``."""
        if final_snapshot.year != self.final_year:
            raise DatasetError(
                f"final snapshot year {final_snapshot.year} does not match model "
                f"final year {self.final_year}"
            )
        if self.first_year >= self.final_year:
            raise DatasetError("first_year must precede final_year")
        snapshots: list[YearlySnapshot] = []
        for year in range(self.first_year, self.final_year + 1):
            age = self.final_year - year
            snapshots.append(
                YearlySnapshot(
                    year=year,
                    unique_ases_in_communities=max(
                        1, round(final_snapshot.unique_ases_in_communities / (1 + self.as_growth_rate) ** age)
                    ),
                    unique_communities=max(
                        1, round(final_snapshot.unique_communities / (1 + self.community_growth_rate) ** age)
                    ),
                    absolute_communities=max(
                        1, round(final_snapshot.absolute_communities / (1 + self.absolute_growth_rate) ** age)
                    ),
                    bgp_table_entries=max(
                        1, round(final_snapshot.bgp_table_entries / (1 + self.table_growth_rate) ** age)
                    ),
                )
            )
        return snapshots

    def last_year_increase(self, series: list[YearlySnapshot]) -> float:
        """Return the relative growth of unique communities over the final year."""
        if len(series) < 2:
            raise DatasetError("need at least two years to compute an increase")
        previous, final = series[-2], series[-1]
        if previous.unique_communities == 0:
            raise DatasetError("previous year has zero communities")
        return final.unique_communities / previous.unique_communities - 1.0


#: The paper's own April-2018 headline numbers (Table 1 total row + Figure 3).
PAPER_2018_SNAPSHOT = YearlySnapshot(
    year=2018,
    unique_ases_in_communities=5659,
    unique_communities=63797,
    absolute_communities=7_000_000_000,
    bgp_table_entries=967_499,
)


def historical_series(
    final_snapshot: YearlySnapshot | None = None, model: GrowthModel | None = None
) -> list[YearlySnapshot]:
    """Return the 2010–2018 series, anchored at the paper's numbers by default."""
    model = model or GrowthModel()
    return model.series(final_snapshot or PAPER_2018_SNAPSHOT)
