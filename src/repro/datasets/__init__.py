"""Synthetic datasets calibrated to the paper's published distributions."""

from repro.datasets.communities_db import CommunityUsageModel, CommunityDocumentation
from repro.datasets.giotsas import BlackholeCommunityList, build_blackhole_list
from repro.datasets.synthetic import (
    DatasetParameters,
    SyntheticDataset,
    SyntheticDatasetBuilder,
)
from repro.datasets.timeseries import GrowthModel, YearlySnapshot, historical_series

__all__ = [
    "CommunityUsageModel",
    "CommunityDocumentation",
    "BlackholeCommunityList",
    "build_blackhole_list",
    "DatasetParameters",
    "SyntheticDataset",
    "SyntheticDatasetBuilder",
    "GrowthModel",
    "YearlySnapshot",
    "historical_series",
]
