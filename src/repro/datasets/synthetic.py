"""Synthetic April-2018-style BGP observation dataset.

The builder reproduces, over a generated topology, the *processes* that
create the community patterns the paper measures:

* origins tag their announcements with documented informational
  communities;
* intermediate ASes add ingress-location tags, action communities
  addressed to other ASes on the path, and off-path communities (IXP
  route-server communities, bundled tags, private-ASN tags);
* every AS applies its community *propagation policy* when exporting,
  so forward-all ASes pass foreign tags on while strip-all ASes drop
  them — the behaviour the measurement pipeline later infers;
* a fraction of prefixes additionally produce remotely-triggered
  blackhole announcements (/32s tagged with the provider's RTBH
  community) which operators treat specially and which therefore do not
  travel as far.

The builder records ground truth (who tagged what, which AS runs which
propagation behaviour) so the test-suite can check the measurement
pipeline against it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bgp.community import Community, CommunitySet, BLACKHOLE
from repro.bgp.prefix import Prefix
from repro.collectors.observation import ObservationArchive, RouteObservation
from repro.collectors.platform import CollectorDeployment
from repro.datasets.communities_db import CommunityUsageModel
from repro.datasets.giotsas import BlackholeCommunityList, build_blackhole_list
from repro.exceptions import DatasetError
from repro.policy.community_policy import PropagationBehavior
from repro.topology.asys import AsRole
from repro.topology.graph import valley_free_paths
from repro.topology.topology import Topology
from repro.utils.rand import DeterministicRng

#: Private-use 16-bit ASNs used for off-path private tagging (RFC 6996).
_PRIVATE_ASN_POOL = [64512, 64513, 64600, 65001, 65100, 65210, 65333, 65500]


@dataclass(frozen=True)
class TaggingEvent:
    """Ground truth: one community added to one announcement by one AS."""

    prefix: Prefix
    community: Community
    tagger_asn: int
    peer_asn: int
    on_path: bool


@dataclass
class GroundTruth:
    """Everything the generator knows that the measurement pipeline must infer."""

    tagging_events: list[TaggingEvent] = field(default_factory=list)
    #: asn -> propagation behaviour label of that AS.
    propagation_behavior: dict[int, PropagationBehavior] = field(default_factory=dict)
    #: Prefixes announced as blackhole (/32) announcements.
    blackhole_prefixes: set[Prefix] = field(default_factory=set)

    def forward_all_ases(self) -> set[int]:
        """ASes configured to forward every foreign community."""
        return {
            asn
            for asn, behavior in self.propagation_behavior.items()
            if behavior == PropagationBehavior.FORWARD_ALL
        }

    def strip_all_ases(self) -> set[int]:
        """ASes configured to strip every foreign community."""
        return {
            asn
            for asn, behavior in self.propagation_behavior.items()
            if behavior == PropagationBehavior.STRIP_ALL
        }


@dataclass
class DatasetParameters:
    """Knobs of the synthetic dataset builder."""

    #: Fraction of (collector-peer, prefix) pairs for which updates are generated.
    coverage: float = 0.8
    #: Updates generated per covered (peer, prefix) pair (1..max).
    max_updates_per_pair: int = 2
    #: Probability the origin AS tags its announcement with documented communities.
    origin_tag_probability: float = 0.75
    #: Probability an intermediate AS adds an ingress/location/informational tag.
    transit_tag_probability: float = 0.40
    #: Probability an intermediate AS adds an action community addressed to
    #: another AS on the path (prepend/local-pref requests).
    action_tag_probability: float = 0.12
    #: Probability an AS adds an off-path community (IXP, bundled, private ASN).
    offpath_tag_probability: float = 0.10
    #: Probability the AS a blackhole community is addressed to strips it after
    #: acting on it (which is why 666 is rare among on-path values, §4.3).
    blackhole_strip_probability: float = 0.75
    #: Probability an origin AS prepends itself (exercises prepending removal).
    prepend_probability: float = 0.10
    #: Fraction of stub ASes that also issue a blackhole announcement.
    blackhole_origin_fraction: float = 0.25
    #: Per-hop probability that a blackhole announcement is propagated further
    #: than the AS acting on it (operators treat RTBH announcements specially).
    blackhole_propagation_probability: float = 0.55
    #: Simulated collection window in seconds (one month, like the paper).
    window_seconds: int = 30 * 24 * 3600
    seed: int = 2018


@dataclass
class SyntheticDataset:
    """The generated dataset: observations plus ground truth and metadata."""

    archive: ObservationArchive
    topology: Topology
    deployment: CollectorDeployment
    ground_truth: GroundTruth
    blackhole_list: BlackholeCommunityList
    parameters: DatasetParameters

    def message_count(self) -> int:
        """Total number of generated update observations."""
        return len(self.archive)


class SyntheticDatasetBuilder:
    """Builds a :class:`SyntheticDataset` over a topology and collector deployment."""

    def __init__(
        self,
        topology: Topology,
        deployment: CollectorDeployment,
        parameters: DatasetParameters | None = None,
    ):
        self.topology = topology
        self.deployment = deployment
        self.parameters = parameters or DatasetParameters()
        self._rng = DeterministicRng(self.parameters.seed)
        self._usage = CommunityUsageModel(self._rng.child("usage"))
        self._ixp_rs_asns = [ixp.route_server_asn for ixp in topology.ixps.values()]

    # ------------------------------------------------------------------ build
    def build(self) -> SyntheticDataset:
        """Generate the full dataset."""
        archive = ObservationArchive()
        ground_truth = GroundTruth()
        for asys in self.topology:
            if asys.propagation_policy is not None:
                ground_truth.propagation_behavior[asys.asn] = (
                    asys.propagation_policy.behavior
                )

        peer_lookup = self._peer_lookup()
        if not peer_lookup:
            raise DatasetError("collector deployment has no peers in the topology")

        origins = [a for a in self.topology if a.role != AsRole.IXP and a.prefixes]
        rng = self._rng.child("updates")
        for origin in origins:
            paths_from_origin = valley_free_paths(self.topology, origin.asn)
            self._generate_regular_updates(
                origin, paths_from_origin, peer_lookup, archive, ground_truth, rng
            )
            if origin.is_stub and rng.chance(self.parameters.blackhole_origin_fraction):
                self._generate_blackhole_updates(
                    origin, paths_from_origin, peer_lookup, archive, ground_truth, rng
                )

        blackhole_list = build_blackhole_list(self.topology, seed=self.parameters.seed + 1)
        return SyntheticDataset(
            archive=archive,
            topology=self.topology,
            deployment=self.deployment,
            ground_truth=ground_truth,
            blackhole_list=blackhole_list,
            parameters=self.parameters,
        )

    # ----------------------------------------------------------------- helpers
    def _peer_lookup(self) -> dict[int, list]:
        """Map peer ASN -> list of collectors peering with it."""
        lookup: dict[int, list] = {}
        for collector in self.deployment.all_collectors():
            for peer in collector.peer_asns:
                if peer in self.topology:
                    lookup.setdefault(peer, []).append(collector)
        return lookup

    def _documentation(self, asn: int):
        asys = self.topology.get_as(asn)
        offers_blackhole = (
            asys.services is not None and bool(asys.services.blackhole_communities())
        )
        return self._usage.documentation_for(asn, offers_blackhole)

    def _off_path_community(self, path: list[int], rng: DeterministicRng) -> Community:
        """Draw an off-path community: IXP route server, private ASN, or bundled AS."""
        roll = rng.random()
        if roll < 0.4 and self._ixp_rs_asns:
            asn = rng.choice(self._ixp_rs_asns)
        elif roll < 0.65:
            asn = rng.choice(_PRIVATE_ASN_POOL)
        else:
            candidates = [a for a in self.topology.asns() if a not in path and a <= 0xFFFF]
            asn = rng.choice(candidates) if candidates else rng.choice(_PRIVATE_ASN_POOL)
        return Community(asn, self._usage.off_path_value())

    def _action_community(self, path: list[int], position: int, rng: DeterministicRng) -> Community | None:
        """Draw an action community addressed to a *later* AS on the path."""
        later = path[:position]  # ASes the announcement has yet to reach (towards the peer)
        later = [a for a in later if a <= 0xFFFF]
        if not later:
            return None
        target = rng.choice(later)
        documentation = self._documentation(target)
        values = documentation.action_values or [self._usage.on_path_value()]
        return Community(target, rng.choice(values))

    # ------------------------------------------------------------ propagation
    def _propagate_along_path(
        self,
        prefix: Prefix,
        path: list[int],
        peer_asn: int,
        rng: DeterministicRng,
        ground_truth: GroundTruth,
        is_blackhole: bool = False,
        blackhole_community: Community | None = None,
    ) -> CommunitySet | None:
        """Walk the announcement from origin to collector peer, applying tagging and policies.

        ``path`` is in observation order (peer first, origin last).  The
        return value is the community set as exported by the peer to the
        collector, or None if (for blackhole announcements) propagation
        stopped before reaching the peer.
        """
        params = self.parameters
        ordered = list(reversed(path))  # origin ... peer
        carried = CommunitySet()

        for position, asn in enumerate(ordered):
            asys = self.topology.get_as(asn)
            added: list[Community] = []
            path_position_from_peer = len(ordered) - 1 - position

            if position == 0:
                # Origin tagging.
                if is_blackhole and blackhole_community is not None:
                    added.append(blackhole_community)
                    added.append(BLACKHOLE)
                if rng.chance(params.origin_tag_probability):
                    documentation = self._documentation(asn)
                    choices = documentation.informational_communities()
                    if choices:
                        added.extend(rng.sample(choices, rng.randint(1, len(choices))))
            else:
                if rng.chance(params.transit_tag_probability):
                    documentation = self._documentation(asn)
                    choices = (
                        documentation.location_communities()
                        + documentation.informational_communities()
                    )
                    if choices:
                        added.extend(rng.sample(choices, rng.randint(1, min(2, len(choices)))))
                if rng.chance(params.action_tag_probability):
                    action = self._action_community(path, path_position_from_peer, rng)
                    if action is not None:
                        added.append(action)
            if rng.chance(params.offpath_tag_probability):
                added.append(self._off_path_community(path, rng))

            for community in added:
                ground_truth.tagging_events.append(
                    TaggingEvent(
                        prefix=prefix,
                        community=community,
                        tagger_asn=asn,
                        peer_asn=peer_asn,
                        on_path=community.asn in path,
                    )
                )
            carried = carried.add(*added) if added else carried

            # Export towards the next AS (or the collector when at the peer).
            next_asn = ordered[position + 1] if position + 1 < len(ordered) else None
            if is_blackhole and position > 0 and next_asn is not None:
                if not rng.chance(params.blackhole_propagation_probability):
                    return None
            if (
                is_blackhole
                and blackhole_community is not None
                and asn == blackhole_community.asn
                and rng.chance(params.blackhole_strip_probability)
            ):
                # The community target acted on the blackhole request and
                # scopes/strips the blackhole communities before re-exporting.
                carried = carried.filter(lambda c: not c.has_blackhole_value)
            policy = asys.propagation_policy
            if policy is not None:
                exporter_target = next_asn if next_asn is not None else -1
                carried = policy.outbound_communities(carried, asn, exporter_target)
        return carried

    # ----------------------------------------------------------------- updates
    def _generate_regular_updates(
        self,
        origin,
        paths_from_origin: dict[int, list[int]],
        peer_lookup: dict[int, list],
        archive: ObservationArchive,
        ground_truth: GroundTruth,
        rng: DeterministicRng,
    ) -> None:
        params = self.parameters
        for prefix in origin.prefixes:
            for peer_asn, collectors in peer_lookup.items():
                if peer_asn == origin.asn:
                    continue
                path = paths_from_origin.get(peer_asn)
                if path is None:
                    continue
                if not rng.chance(params.coverage):
                    continue
                update_count = rng.randint(1, params.max_updates_per_pair)
                for _ in range(update_count):
                    communities = self._propagate_along_path(
                        prefix, path, peer_asn, rng, ground_truth
                    )
                    if communities is None:
                        continue
                    observed_path = list(path)
                    if rng.chance(params.prepend_probability):
                        observed_path = observed_path + [origin.asn] * rng.randint(1, 2)
                    timestamp = rng.random() * params.window_seconds
                    for collector in collectors:
                        archive.add(
                            RouteObservation(
                                platform=collector.platform,
                                collector_id=collector.collector_id,
                                peer_asn=peer_asn,
                                prefix=prefix,
                                as_path=tuple(observed_path),
                                communities=communities,
                                timestamp=timestamp,
                            )
                        )

    def _generate_blackhole_updates(
        self,
        origin,
        paths_from_origin: dict[int, list[int]],
        peer_lookup: dict[int, list],
        archive: ObservationArchive,
        ground_truth: GroundTruth,
        rng: DeterministicRng,
    ) -> None:
        """Generate the /32 RTBH announcement of one attacked stub AS."""
        params = self.parameters
        ipv4_prefixes = [p for p in origin.prefixes if p.is_ipv4]
        if not ipv4_prefixes:
            return
        parent = rng.choice(ipv4_prefixes)
        victim = parent.subprefix(32, rng.randint(0, 255))
        ground_truth.blackhole_prefixes.add(victim)
        providers = self.topology.providers(origin.asn)
        if not providers:
            return
        provider = rng.choice(providers)
        provider_as = self.topology.get_as(provider)
        if provider_as.services is not None and provider_as.services.blackhole_communities():
            blackhole_community = provider_as.services.blackhole_communities()[0]
        else:
            blackhole_community = Community(provider, 666) if provider <= 0xFFFF else BLACKHOLE

        for peer_asn, collectors in peer_lookup.items():
            if peer_asn == origin.asn:
                continue
            path = paths_from_origin.get(peer_asn)
            if path is None:
                continue
            if not rng.chance(params.coverage):
                continue
            communities = self._propagate_along_path(
                victim,
                path,
                peer_asn,
                rng,
                ground_truth,
                is_blackhole=True,
                blackhole_community=blackhole_community,
            )
            if communities is None:
                continue
            timestamp = rng.random() * params.window_seconds
            for collector in collectors:
                archive.add(
                    RouteObservation(
                        platform=collector.platform,
                        collector_id=collector.collector_id,
                        peer_asn=peer_asn,
                        prefix=victim,
                        as_path=tuple(path),
                        communities=communities,
                        timestamp=timestamp,
                    )
                )


def build_default_dataset(
    topology: Topology | None = None,
    parameters: DatasetParameters | None = None,
    collector_seed: int = 7,
) -> SyntheticDataset:
    """Convenience helper: generate a topology, deploy collectors, build the dataset."""
    from repro.topology.generator import TopologyGenerator

    if topology is None:
        topology = TopologyGenerator().generate()
    deployment = CollectorDeployment.default_deployment(topology, seed=collector_seed)
    builder = SyntheticDatasetBuilder(topology, deployment, parameters)
    return builder.build()
