"""Route collector platforms (RIS / Route Views / Isolario / PCH style)."""

from repro.collectors.observation import RouteObservation, ObservationArchive
from repro.collectors.platform import Collector, CollectorPlatform, CollectorDeployment

__all__ = [
    "RouteObservation",
    "ObservationArchive",
    "Collector",
    "CollectorPlatform",
    "CollectorDeployment",
]
