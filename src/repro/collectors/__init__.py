"""Route collector platforms (RIS / Route Views / Isolario / PCH style)."""

from repro.collectors.observation import RouteObservation, ObservationArchive
from repro.collectors.platform import Collector, CollectorPlatform, CollectorDeployment
from repro.collectors.harvest import HarvestItem, build_worklist, harvest_archive

__all__ = [
    "RouteObservation",
    "ObservationArchive",
    "Collector",
    "CollectorPlatform",
    "CollectorDeployment",
    "HarvestItem",
    "build_worklist",
    "harvest_archive",
]
