"""Route observations: the unit of data the measurement pipeline consumes.

A :class:`RouteObservation` is one (collector, peer, prefix) data point:
the AS path as seen by the collector peer and the communities attached
to the announcement.  Both the synthetic dataset generator and the live
simulation produce these; the Section 4 analyses consume them; and the
MRT bridge serialises them to and from standard BGP archives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator

from repro.bgp.aspath import ASPath
from repro.bgp.attributes import PathAttributes
from repro.bgp.community import Community, CommunitySet
from repro.bgp.message import BgpUpdate
from repro.bgp.prefix import AddressFamily, Prefix
from repro.mrt.entries import Bgp4mpMessage
from repro.mrt.reader import MrtReader
from repro.mrt.writer import MrtWriter


@dataclass(frozen=True)
class RouteObservation:
    """One route as observed at a collector."""

    platform: str
    collector_id: str
    peer_asn: int
    prefix: Prefix
    #: AS path with the collector peer first and the origin AS last
    #: (prepending preserved; analyses normalise it themselves).
    as_path: tuple[int, ...]
    communities: CommunitySet = field(default_factory=CommunitySet)
    timestamp: float = 0.0

    @property
    def origin_asn(self) -> int | None:
        """The origin AS of the observed route."""
        return self.as_path[-1] if self.as_path else None

    @property
    def path_without_prepending(self) -> tuple[int, ...]:
        """The AS path with consecutive duplicates collapsed."""
        collapsed: list[int] = []
        for asn in self.as_path:
            if not collapsed or collapsed[-1] != asn:
                collapsed.append(asn)
        return tuple(collapsed)

    @property
    def has_communities(self) -> bool:
        """True if at least one community is attached."""
        return bool(self.communities)

    def community_asns(self) -> set[int]:
        """The distinct ASN parts of the attached communities."""
        return self.communities.asns()

    def is_on_path(self, community: Community) -> bool:
        """True if the community's ASN part appears on the AS path."""
        return community.asn in set(self.as_path)


class ObservationArchive:
    """A collection of route observations with query helpers and MRT round-tripping."""

    def __init__(self, observations: Iterable[RouteObservation] = ()):
        self._observations: list[RouteObservation] = list(observations)

    # --------------------------------------------------------------- mutation
    def add(self, observation: RouteObservation) -> None:
        """Append one observation."""
        self._observations.append(observation)

    def extend(self, observations: Iterable[RouteObservation]) -> None:
        """Append many observations."""
        self._observations.extend(observations)

    # ---------------------------------------------------------------- queries
    def __len__(self) -> int:
        return len(self._observations)

    def __iter__(self) -> Iterator[RouteObservation]:
        return iter(self._observations)

    def filter(self, predicate: Callable[[RouteObservation], bool]) -> "ObservationArchive":
        """Return a new archive with only the matching observations."""
        return ObservationArchive(o for o in self._observations if predicate(o))

    def by_platform(self, platform: str) -> "ObservationArchive":
        """Return only the observations of one platform."""
        return self.filter(lambda o: o.platform == platform)

    def platforms(self) -> list[str]:
        """Return the distinct platform names, sorted."""
        return sorted({o.platform for o in self._observations})

    def collectors(self) -> list[tuple[str, str]]:
        """Return the distinct (platform, collector) pairs, sorted."""
        return sorted({(o.platform, o.collector_id) for o in self._observations})

    def peer_asns(self) -> set[int]:
        """Return the distinct collector-peer ASNs."""
        return {o.peer_asn for o in self._observations}

    def prefixes(self) -> set[Prefix]:
        """Return the distinct observed prefixes."""
        return {o.prefix for o in self._observations}

    def with_communities(self) -> "ObservationArchive":
        """Return only the observations carrying at least one community."""
        return self.filter(lambda o: o.has_communities)

    def observed_community_asns(self) -> set[int]:
        """Return every ASN encoded in any observed community."""
        asns: set[int] = set()
        for observation in self._observations:
            asns |= observation.community_asns()
        return asns

    def unique_communities(self) -> set[Community]:
        """Return the distinct communities observed."""
        communities: set[Community] = set()
        for observation in self._observations:
            communities.update(observation.communities)
        return communities

    # ------------------------------------------------------------------- MRT
    def to_mrt_messages(self, collector_asn: int = 65000) -> Iterator[Bgp4mpMessage]:
        """Convert observations to BGP4MP messages (IPv4 observations only)."""
        for observation in self._observations:
            if not observation.prefix.is_ipv4:
                continue
            attributes = PathAttributes(
                as_path=ASPath.of(*observation.as_path),
                communities=observation.communities,
            )
            update = BgpUpdate(announced=[observation.prefix], attributes=attributes)
            yield Bgp4mpMessage(
                timestamp=int(observation.timestamp),
                peer_asn=observation.peer_asn,
                local_asn=collector_asn,
                peer_ip=0x0A000001,
                local_ip=0x0A000002,
                interface_index=0,
                address_family=1,
                update=update,
            )

    def write_mrt(self, path: str | Path, collector_asn: int = 65000) -> int:
        """Write the archive as an MRT file; return the record count."""
        path = Path(path)
        with path.open("wb") as stream:
            writer = MrtWriter(stream)
            for message in self.to_mrt_messages(collector_asn):
                writer.write_message(message)
            return writer.records_written

    @classmethod
    def from_mrt(
        cls, path: str | Path, platform: str = "mrt", collector_id: str = "mrt-0"
    ) -> "ObservationArchive":
        """Load an MRT update file into an archive."""
        archive = cls()
        for message in MrtReader.from_file(path).messages():
            for prefix in message.update.announced:
                archive.add(
                    RouteObservation(
                        platform=platform,
                        collector_id=collector_id,
                        peer_asn=message.peer_asn,
                        prefix=prefix,
                        as_path=tuple(message.update.attributes.as_path.asns()),
                        communities=message.update.attributes.communities,
                        timestamp=float(message.timestamp),
                    )
                )
        return archive
