"""Route observations: the unit of data the measurement pipeline consumes.

A :class:`RouteObservation` is one (collector, peer, prefix) data point:
the AS path as seen by the collector peer and the communities attached
to the announcement (or a withdrawal marker — collectors see those
too).  Both the synthetic dataset generator and the live simulation
produce these; the Section 4 analyses consume them; and the MRT bridge
serialises them to and from standard BGP archives losslessly — IPv4 and
IPv6 announcements and withdrawals all round-trip.

:class:`ObservationArchive` keeps its observations indexed: per-platform
and per-collector buckets plus an :class:`~repro.net.lpm.LpmTable` over
the observed prefixes, so the per-platform slicing and prefix queries
the Section 4 analyses hammer are bucket lookups instead of O(n)
rescans of the whole archive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from pathlib import Path
from typing import Callable, Iterable, Iterator

from repro.bgp.aspath import ASPath
from repro.bgp.attributes import PathAttributes
from repro.bgp.community import Community, CommunitySet
from repro.bgp.message import BgpUpdate
from repro.bgp.prefix import Prefix
from repro.exceptions import MrtError
from repro.mrt.constants import AFI_IPV4, AFI_IPV6
from repro.mrt.entries import Bgp4mpMessage
from repro.mrt.reader import MrtReader
from repro.mrt.writer import MrtWriter
from repro.net.lpm import LpmTable

#: MRT common headers carry a 32-bit Unix timestamp; anything outside
#: this window used to wrap silently through the ``& 0xFFFFFFFF`` mask.
_MRT_TIMESTAMP_LIMIT = 1 << 32

#: Synthetic peer addressing for MRT export.  IPv6 peers live in
#: 2001:db8::/96 (ASN in the low 32 bits) and the collector in a
#: disjoint 2001:db8:0:ffff::/64 — no ASN can collide with it.  IPv4
#: has no room for an injective 32-bit-ASN mapping *plus* a disjoint
#: collector, so peers map identically (address = ASN, injective across
#: all peers) and the collector uses 192.0.2.1; only the one ASN equal
#: to that literal address could ever collide with the collector side.
_PEER_IPV6_BASE = 0x20010DB8 << 96
_COLLECTOR_IPV4 = 0xC0000201  # 192.0.2.1
_COLLECTOR_IPV6 = _PEER_IPV6_BASE | (0xFFFF << 64) | 1


def peer_ip_for(peer_asn: int, address_family: int) -> int:
    """A deterministic, per-peer synthetic IP for MRT export.

    Distinct peers must not collapse onto one address (the constant
    ``10.0.0.1`` every peer used to get made archives unattributable),
    so the mapping is injective over the full 32-bit ASN space for both
    families.
    """
    if address_family == AFI_IPV4:
        return peer_asn & 0xFFFFFFFF
    return _PEER_IPV6_BASE | (peer_asn & 0xFFFFFFFF)


def collector_ip_for(address_family: int) -> int:
    """The synthetic collector-side IP for MRT export."""
    return _COLLECTOR_IPV4 if address_family == AFI_IPV4 else _COLLECTOR_IPV6


def _validate_timestamp(timestamp: float) -> None:
    """Reject timestamps the 32-bit MRT header cannot represent."""
    if not 0 <= timestamp < _MRT_TIMESTAMP_LIMIT:
        raise MrtError(
            f"observation timestamp {timestamp} does not fit the 32-bit "
            "MRT header (must be within 1970-01-01..2106-02-07 UTC)"
        )


@dataclass(frozen=True)
class RouteObservation:
    """One route as observed at a collector."""

    platform: str
    collector_id: str
    peer_asn: int
    prefix: Prefix
    #: AS path with the collector peer first and the origin AS last
    #: (prepending preserved; analyses normalise it themselves).
    as_path: tuple[int, ...]
    communities: CommunitySet = field(default_factory=CommunitySet)
    timestamp: float = 0.0
    #: True for a withdrawal: the peer revoked the prefix.  Withdrawals
    #: carry no path or communities; they exist so MRT archives with
    #: mixed announce/withdraw streams replay losslessly.
    withdrawn: bool = False

    @property
    def origin_asn(self) -> int | None:
        """The origin AS of the observed route."""
        return self.as_path[-1] if self.as_path else None

    @cached_property
    def path_without_prepending(self) -> tuple[int, ...]:
        """The AS path with consecutive duplicates collapsed (cached)."""
        collapsed: list[int] = []
        for asn in self.as_path:
            if not collapsed or collapsed[-1] != asn:
                collapsed.append(asn)
        return tuple(collapsed)

    @cached_property
    def path_asns(self) -> frozenset[int]:
        """The distinct ASNs on the AS path (cached).

        The propagation analyses test path membership per observed
        community; building ``set(self.as_path)`` on every call made
        that quadratic in the community count.
        """
        return frozenset(self.as_path)

    @property
    def has_communities(self) -> bool:
        """True if at least one community is attached."""
        return bool(self.communities)

    def community_asns(self) -> set[int]:
        """The distinct ASN parts of the attached communities."""
        return self.communities.asns()

    def is_on_path(self, community: Community) -> bool:
        """True if the community's ASN part appears on the AS path."""
        return community.asn in self.path_asns


class _ArchiveIndex:
    """The query indexes of one archive: buckets plus a prefix trie."""

    __slots__ = ("platform_buckets", "collector_buckets", "prefix_table", "peer_asns")

    def __init__(self) -> None:
        self.platform_buckets: dict[str, list[RouteObservation]] = {}
        self.collector_buckets: dict[tuple[str, str], list[RouteObservation]] = {}
        #: prefix -> observations of exactly that prefix, in archive order.
        self.prefix_table = LpmTable()
        self.peer_asns: set[int] = set()

    def add(self, observation: RouteObservation) -> None:
        self.platform_buckets.setdefault(observation.platform, []).append(observation)
        self.collector_buckets.setdefault(
            (observation.platform, observation.collector_id), []
        ).append(observation)
        bucket = self.prefix_table.get(observation.prefix)
        if bucket is None:
            self.prefix_table.insert(observation.prefix, [observation])
        else:
            bucket.append(observation)
        self.peer_asns.add(observation.peer_asn)


class ObservationArchive:
    """A collection of route observations with indexed queries and MRT round-tripping."""

    def __init__(self, observations: Iterable[RouteObservation] = ()):
        self._observations: list[RouteObservation] = list(observations)
        #: Built lazily on the first indexed query; appends keep it in
        #: sync incrementally instead of invalidating it.
        self._index: _ArchiveIndex | None = None

    # --------------------------------------------------------------- mutation
    def add(self, observation: RouteObservation) -> None:
        """Append one observation."""
        self._observations.append(observation)
        if self._index is not None:
            self._index.add(observation)

    def extend(self, observations: Iterable[RouteObservation]) -> None:
        """Append many observations."""
        for observation in observations:
            self.add(observation)

    # ---------------------------------------------------------------- indexes
    def _ensure_index(self) -> _ArchiveIndex:
        if self._index is None:
            index = _ArchiveIndex()
            for observation in self._observations:
                index.add(observation)
            self._index = index
        return self._index

    # ---------------------------------------------------------------- queries
    def __len__(self) -> int:
        return len(self._observations)

    def __iter__(self) -> Iterator[RouteObservation]:
        return iter(self._observations)

    def filter(self, predicate: Callable[[RouteObservation], bool]) -> "ObservationArchive":
        """Return a new archive with only the matching observations."""
        return ObservationArchive(o for o in self._observations if predicate(o))

    def by_platform(self, platform: str) -> "ObservationArchive":
        """Return only the observations of one platform (bucket lookup)."""
        return ObservationArchive(self._ensure_index().platform_buckets.get(platform, ()))

    def by_collector(self, platform: str, collector_id: str) -> "ObservationArchive":
        """Return only one collector's observations (bucket lookup)."""
        bucket = self._ensure_index().collector_buckets.get((platform, collector_id), ())
        return ObservationArchive(bucket)

    def platforms(self) -> list[str]:
        """Return the distinct platform names, sorted."""
        return sorted(self._ensure_index().platform_buckets)

    def collectors(self) -> list[tuple[str, str]]:
        """Return the distinct (platform, collector) pairs, sorted."""
        return sorted(self._ensure_index().collector_buckets)

    def peer_asns(self) -> set[int]:
        """Return the distinct collector-peer ASNs."""
        return set(self._ensure_index().peer_asns)

    def prefixes(self) -> set[Prefix]:
        """Return the distinct observed prefixes."""
        return {prefix for prefix, _bucket in self._ensure_index().prefix_table.items()}

    def observations_for(self, prefix: Prefix) -> list[RouteObservation]:
        """Return the observations of exactly ``prefix``, in archive order."""
        bucket = self._ensure_index().prefix_table.get(prefix)
        return list(bucket) if bucket else []

    def covered_by(self, prefix: Prefix) -> "ObservationArchive":
        """Observations whose prefix lies inside ``prefix`` (more specifics)."""
        matches = sorted(self._ensure_index().prefix_table.covered(prefix))
        return ObservationArchive(o for _prefix, bucket in matches for o in bucket)

    def covering(self, prefix: Prefix) -> "ObservationArchive":
        """Observations whose prefix covers ``prefix`` (less specifics)."""
        matches = sorted(self._ensure_index().prefix_table.covering(prefix))
        return ObservationArchive(o for _prefix, bucket in matches for o in bucket)

    def announcements(self) -> "ObservationArchive":
        """Return only the announcement observations."""
        return self.filter(lambda o: not o.withdrawn)

    def withdrawals(self) -> "ObservationArchive":
        """Return only the withdrawal observations."""
        return self.filter(lambda o: o.withdrawn)

    def with_communities(self) -> "ObservationArchive":
        """Return only the observations carrying at least one community."""
        return self.filter(lambda o: o.has_communities)

    def observed_community_asns(self) -> set[int]:
        """Return every ASN encoded in any observed community."""
        asns: set[int] = set()
        for observation in self._observations:
            asns |= observation.community_asns()
        return asns

    def unique_communities(self) -> set[Community]:
        """Return the distinct communities observed."""
        communities: set[Community] = set()
        for observation in self._observations:
            communities.update(observation.communities)
        return communities

    # ------------------------------------------------------------------- MRT
    def to_mrt_messages(self, collector_asn: int = 65000) -> Iterator[Bgp4mpMessage]:
        """Convert every observation — IPv4 and IPv6, announce and withdraw —
        to BGP4MP messages.

        Withdrawals become withdrawal-only UPDATEs; each peer gets a
        distinct synthetic address (see :func:`peer_ip_for`); and a
        timestamp outside the 32-bit MRT window raises a clear
        :class:`MrtError` instead of wrapping silently in the header.
        """
        for observation in self._observations:
            timestamp = observation.timestamp
            _validate_timestamp(timestamp)
            address_family = AFI_IPV4 if observation.prefix.is_ipv4 else AFI_IPV6
            if observation.withdrawn:
                update = BgpUpdate(withdrawn=[observation.prefix])
            else:
                attributes = PathAttributes(
                    as_path=ASPath.of(*observation.as_path),
                    communities=observation.communities,
                )
                update = BgpUpdate(announced=[observation.prefix], attributes=attributes)
            yield Bgp4mpMessage(
                timestamp=int(timestamp),
                peer_asn=observation.peer_asn,
                local_asn=collector_asn,
                peer_ip=peer_ip_for(observation.peer_asn, address_family),
                local_ip=collector_ip_for(address_family),
                interface_index=0,
                address_family=address_family,
                update=update,
            )

    def write_mrt(self, path: str | Path, collector_asn: int = 65000) -> int:
        """Write the archive as an MRT file; return the record count.

        Timestamps are validated up front so a bad observation in the
        middle of the archive fails the whole write instead of leaving
        a truncated file at the destination.
        """
        for observation in self._observations:
            _validate_timestamp(observation.timestamp)
        path = Path(path)
        with path.open("wb") as stream:
            writer = MrtWriter(stream)
            for message in self.to_mrt_messages(collector_asn):
                writer.write_message(message)
            return writer.records_written

    @classmethod
    def from_mrt(
        cls, path: str | Path, platform: str = "mrt", collector_id: str = "mrt-0"
    ) -> "ObservationArchive":
        """Load an MRT update file into an archive (streamed record-at-a-time).

        Both sides of every UPDATE are surfaced: withdrawn prefixes
        become withdrawal-marked observations (first, matching the wire
        layout) and announced prefixes regular ones — so a write →
        read round-trip is lossless for mixed archives.
        """
        archive = cls()
        for message in MrtReader.from_file(path).messages():
            timestamp = float(message.timestamp)
            for prefix in message.update.withdrawn:
                archive.add(
                    RouteObservation(
                        platform=platform,
                        collector_id=collector_id,
                        peer_asn=message.peer_asn,
                        prefix=prefix,
                        as_path=(),
                        timestamp=timestamp,
                        withdrawn=True,
                    )
                )
            for prefix in message.update.announced:
                archive.add(
                    RouteObservation(
                        platform=platform,
                        collector_id=collector_id,
                        peer_asn=message.peer_asn,
                        prefix=prefix,
                        as_path=tuple(message.update.attributes.as_path.asns()),
                        communities=message.update.attributes.communities,
                        timestamp=timestamp,
                    )
                )
        return archive
