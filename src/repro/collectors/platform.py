"""Collector platforms and their deployment over a simulated Internet.

The paper combines four platforms — RIPE RIS, Route Views, Isolario and
PCH — each consisting of multiple collectors, each peering with many
ASes (PCH's speciality being route-server peerings at IXPs).  A
:class:`CollectorDeployment` places such platforms over a topology and
harvests :class:`RouteObservation` records either from a converged
:class:`~repro.routing.engine.BgpSimulator` or directly from a
synthetic-path generator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.collectors.observation import ObservationArchive
from repro.exceptions import CollectorError
from repro.routing.engine import BgpSimulator
from repro.topology.topology import Topology
from repro.utils.rand import DeterministicRng

#: The four platforms of the study with their approximate relative sizes
#: (collectors, peers per collector) scaled down from Table 1.
DEFAULT_PLATFORM_SHAPES = {
    "RIS": {"collectors": 4, "peers_per_collector": 12},
    "RV": {"collectors": 5, "peers_per_collector": 10},
    "IS": {"collectors": 2, "peers_per_collector": 14},
    "PCH": {"collectors": 8, "peers_per_collector": 6},
}


@dataclass
class Collector:
    """One route collector: an identifier and the ASes it peers with."""

    collector_id: str
    platform: str
    peer_asns: list[int] = field(default_factory=list)
    #: Collector ASN used when exporting MRT (does not participate in routing).
    collector_asn: int = 65010

    def __post_init__(self) -> None:
        if not self.collector_id:
            raise CollectorError("collector_id must not be empty")


@dataclass
class CollectorPlatform:
    """A collector platform: a name and its collectors."""

    name: str
    collectors: list[Collector] = field(default_factory=list)

    def peer_asns(self) -> set[int]:
        """Return every peer AS of any collector of the platform."""
        peers: set[int] = set()
        for collector in self.collectors:
            peers.update(collector.peer_asns)
        return peers

    def collector_count(self) -> int:
        """Number of collectors."""
        return len(self.collectors)


class CollectorDeployment:
    """All platforms deployed over one topology."""

    def __init__(self, platforms: Iterable[CollectorPlatform]):
        self.platforms: dict[str, CollectorPlatform] = {p.name: p for p in platforms}

    @classmethod
    def default_deployment(
        cls,
        topology: Topology,
        seed: int = 7,
        shapes: dict[str, dict[str, int]] | None = None,
    ) -> "CollectorDeployment":
        """Place the four standard platforms over a topology.

        RIS/RV/IS peer preferentially with transit ASes (full feeds);
        PCH peers with IXP members via route servers, mirroring the
        real deployments.
        """
        rng = DeterministicRng(seed).child("collector-deployment")
        shapes = shapes or DEFAULT_PLATFORM_SHAPES
        transit_asns = [a.asn for a in topology.transit_ases()]
        stub_asns = [a.asn for a in topology.stub_ases()]
        ixp_member_asns = sorted(
            {member for ixp in topology.ixps.values() for member in ixp.members}
        )
        platforms = []
        next_collector_asn = 65100
        for name, shape in shapes.items():
            collectors = []
            for index in range(shape["collectors"]):
                if name == "PCH" and ixp_member_asns:
                    pool = ixp_member_asns
                else:
                    # Mostly transit peers plus a few stubs, like real feeds.
                    pool = transit_asns + stub_asns[: max(1, len(stub_asns) // 10)]
                if not pool:
                    raise CollectorError("topology has no candidate collector peers")
                peer_count = min(shape["peers_per_collector"], len(pool))
                peers = rng.sample(pool, peer_count)
                collectors.append(
                    Collector(
                        collector_id=f"{name.lower()}-{index:02d}",
                        platform=name,
                        peer_asns=sorted(peers),
                        collector_asn=next_collector_asn,
                    )
                )
                next_collector_asn += 1
            platforms.append(CollectorPlatform(name=name, collectors=collectors))
        return cls(platforms)

    # ----------------------------------------------------------------- queries
    def all_collectors(self) -> list[Collector]:
        """Return every collector across all platforms."""
        return [c for p in self.platforms.values() for c in p.collectors]

    def all_peer_asns(self) -> set[int]:
        """Return every collector-peer AS across all platforms."""
        peers: set[int] = set()
        for platform in self.platforms.values():
            peers.update(platform.peer_asns())
        return peers

    def collector_count(self) -> int:
        """Total number of collectors."""
        return sum(p.collector_count() for p in self.platforms.values())

    # ------------------------------------------------------------- harvesting
    def collect_from_simulator(
        self,
        simulator: BgpSimulator,
        timestamp: float = 0.0,
        shards: int | str | None = None,
    ) -> ObservationArchive:
        """Harvest observations from a converged simulation.

        Each collector peer exports its full table to the collector
        exactly as it would to a customer, so the observation carries
        the communities the peer's propagation policy lets through.

        The work runs through :mod:`repro.collectors.harvest`: exports
        are memoised per peer (N collectors sharing a peer pay the
        policy chain once) and ``shards`` (an integer or ``"auto"``)
        fans the (collector, peer) work-list over the simulator's
        fork-once worker pool — the archive is byte-identical to the
        serial loop for any shard count.
        """
        from repro.collectors.harvest import harvest_archive

        return harvest_archive(self, simulator, timestamp=timestamp, shards=shards)
