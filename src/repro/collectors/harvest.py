"""Sharded, memoised collector harvesting.

``CollectorDeployment.collect_from_simulator`` used to be the last
serial hot path of the pipeline: one process re-ran each peer router's
full-table export policy chain once per (collector, peer) session.
This module is the subsystem that replaces that loop:

* :func:`build_worklist` flattens a deployment into the exact
  (collector, peer) sequence the serial loop walked — the item index is
  the merge key that keeps any parallel execution byte-identical;
* the **per-peer export memo**: every session shares one harvest-scoped
  export cache keyed by :meth:`Router.export_memo_key`, so N collectors
  peering with the same AS pay the policy/prepend/rewrite chain once
  per distinct best route instead of N times;
* :func:`harvest_archive` with ``shards=K`` partitions the work-list
  **by peer** (:func:`repro.routing.shard.stable_asn_shard` — all of a
  peer's sessions land on one shard so the memo still pays once) and
  drives the shards through the owning simulator's fork-once
  :class:`~repro.routing.shard.ShardPool`.  Workers rebuild each peer's
  Loc-RIB from the shipped best routes, run the same memoised export
  core, and return observation rows tagged with their work-list index;
  the parent merges them back in index order — the resulting archive is
  byte-identical to the serial loop for every shard count.

Parallelism composes with the rest of the system: the pool is the same
one sharded propagation uses (one topology snapshot, one set of warm
workers) and its size is capped by
:func:`repro.routing.shard.shard_worker_budget`, which
:class:`~repro.experiments.grid.GridRunner` pins per grid worker via
``REPRO_SHARD_BUDGET`` — grid × shard × harvest parallelism never
oversubscribes the machine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.bgp.rib import LocRib
from repro.collectors.observation import ObservationArchive, RouteObservation
from repro.routing.engine import AUTO_SHARD_MAX, AUTO_SHARD_MIN_BUDGET
from repro.topology.relationships import Relationship

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance
    from repro.bgp.route import Announcement
    from repro.collectors.platform import CollectorDeployment
    from repro.routing.engine import BgpSimulator

#: Below this many (collector, peer) work items, ``shards="auto"`` stays
#: serial: worker start-up and Loc-RIB shipping would eat the win.
HARVEST_AUTO_MIN_ITEMS = 64


@dataclass(frozen=True)
class HarvestItem:
    """One (collector, peer) session of the harvest work-list."""

    #: Position in the serial work-list — the merge key that keeps a
    #: sharded harvest byte-identical to the serial loop.
    index: int
    platform: str
    collector_id: str
    collector_asn: int
    peer_asn: int


def build_worklist(
    deployment: "CollectorDeployment", simulator: "BgpSimulator"
) -> list[HarvestItem]:
    """Flatten a deployment into the serial-order (collector, peer) work-list.

    Peers without a router in the simulation are skipped, exactly like
    the historical serial loop skipped them.
    """
    items: list[HarvestItem] = []
    routers = simulator.routers
    for collector in deployment.all_collectors():
        for peer_asn in collector.peer_asns:
            if peer_asn not in routers:
                continue
            items.append(
                HarvestItem(
                    index=len(items),
                    platform=collector.platform,
                    collector_id=collector.collector_id,
                    collector_asn=collector.collector_asn,
                    peer_asn=peer_asn,
                )
            )
    return items


def _observation_from(
    item: HarvestItem, announcement: "Announcement", timestamp: float
) -> RouteObservation:
    """Turn one exported announcement into the observation the archive stores."""
    return RouteObservation(
        platform=item.platform,
        collector_id=item.collector_id,
        peer_asn=item.peer_asn,
        prefix=announcement.prefix,
        as_path=tuple(announcement.attributes.as_path.asns()),
        communities=announcement.attributes.communities,
        timestamp=timestamp,
    )


def _export_item(
    simulator: "BgpSimulator", item: HarvestItem, timestamp: float, export_cache: dict
) -> list[RouteObservation]:
    """Export one session's full table through the shared memo."""
    router = simulator.router(item.peer_asn)
    shared_key = router.export_memo_key(item.collector_asn)
    return [
        _observation_from(item, announcement, timestamp)
        for announcement in router.export_all_to(item.collector_asn, export_cache, shared_key)
    ]


def _harvest_serial(
    items: Sequence[HarvestItem], simulator: "BgpSimulator", timestamp: float
) -> ObservationArchive:
    """The in-process reference path: serial order, memoised exports."""
    archive = ObservationArchive()
    export_cache: dict = {}
    for item in items:
        simulator.register_collector_peering(item.peer_asn, item.collector_asn)
        archive.extend(_export_item(simulator, item, timestamp, export_cache))
    return archive


def resolve_harvest_shards(
    shards: int | str | None,
    item_count: int,
    peer_count: int,
    simulator: "BgpSimulator",
) -> int:
    """Turn the harvest shard policy into a concrete shard count.

    ``None`` and ``1`` mean serial; an integer K is honoured (capped by
    the distinct-peer count — surplus shards would only idle);
    ``"auto"`` engages when the CPU budget and the work-list size make
    the pool worth paying for.
    """
    if shards is None or shards == 1 or peer_count <= 1:
        return 1
    if shards == "auto":
        from repro.routing.shard import shard_worker_budget

        budget = (
            simulator.max_workers
            if simulator.max_workers is not None
            else shard_worker_budget()
        )
        if budget < AUTO_SHARD_MIN_BUDGET or item_count < HARVEST_AUTO_MIN_ITEMS:
            return 1
        return min(AUTO_SHARD_MAX, budget, peer_count)
    count = int(shards)
    if count <= 1:
        return 1
    return min(count, peer_count)


# ---------------------------------------------------------------- sharded path
#: One shard's task payload: its work items, each distinct peer's
#: Loc-RIB best routes (in Loc-RIB order), the peers' export community
#: additions, and the harvest timestamp.
HarvestTask = tuple


def _capture_peer_state(simulator: "BgpSimulator", peer_asns: Iterable[int]) -> tuple:
    """Snapshot each peer router's best routes, preserving Loc-RIB order.

    The order matters: ``export_all_to`` walks ``loc_rib.prefixes()``,
    so the worker must rebuild the table in the parent's insertion
    order for the exported announcement sequence — and therefore the
    merged archive — to be byte-identical.
    """
    states = []
    for peer_asn in peer_asns:
        loc_rib = simulator.router(peer_asn).loc_rib
        entries = tuple((prefix, loc_rib.best(prefix)) for prefix in loc_rib.prefixes())
        states.append((peer_asn, entries))
    return tuple(states)


def _run_harvest_shard(task: HarvestTask) -> list[tuple[int, list[RouteObservation]]]:
    """Worker entry point: rebuild the shard's peers, export, tag with indexes."""
    from repro.routing import shard as shard_module

    simulator = shard_module._WORKER_SIMULATOR
    if simulator is None:  # pragma: no cover - initializer always ran
        raise RuntimeError("harvest worker used before initialization")
    items, peer_states, additions, timestamp = task
    for peer_asn, entries in peer_states:
        router = simulator.routers[peer_asn]
        # Replace the Loc-RIB wholesale with the parent's best routes.
        # The LPM trie is left empty on purpose: exports never do LPM
        # lookups, and a later propagation task on this worker clears
        # and reinstalls its own prefixes through the public API anyway.
        fresh = LocRib()
        for prefix, best in entries:
            fresh._best[prefix] = best
        router.loc_rib = fresh
        # Mirror the parent's additions AND keep the shard module's
        # bookkeeping honest: a later propagation task clears exactly
        # the ASNs in _WORKER_ADDITION_ASNS, so any addition this task
        # sets (or clears) must be reflected there — otherwise a
        # harvest-installed addition would silently outlive a parent
        # that since dropped it, and sharded applies would diverge.
        peer_additions = additions.get(peer_asn)
        if peer_additions:
            router.export_community_additions = dict(peer_additions)
            shard_module._WORKER_ADDITION_ASNS.add(peer_asn)
        else:
            router.export_community_additions = {}
            shard_module._WORKER_ADDITION_ASNS.discard(peer_asn)
    export_cache: dict = {}
    results: list[tuple[int, list[RouteObservation]]] = []
    for item in items:
        router = simulator.routers[item.peer_asn]
        router.add_neighbor(item.collector_asn, Relationship.CUSTOMER)
        results.append((item.index, _export_item(simulator, item, timestamp, export_cache)))
    return results


def _harvest_sharded(
    items: Sequence[HarvestItem],
    simulator: "BgpSimulator",
    timestamp: float,
    shard_count: int,
) -> ObservationArchive:
    """Partition by peer, export in the worker pool, merge in work-list order."""
    from repro.routing.shard import stable_asn_shard

    # The parent registers every session too, exactly like the serial
    # path — parent simulator state is identical whichever path ran.
    for item in items:
        simulator.register_collector_peering(item.peer_asn, item.collector_asn)
    groups: dict[int, list[HarvestItem]] = {}
    for item in items:
        groups.setdefault(stable_asn_shard(item.peer_asn, shard_count), []).append(item)
    tasks = []
    for _shard_index, group in sorted(groups.items()):
        peer_order: list[int] = []
        seen: set[int] = set()
        for item in group:
            if item.peer_asn not in seen:
                seen.add(item.peer_asn)
                peer_order.append(item.peer_asn)
        additions = {
            asn: dict(simulator.router(asn).export_community_additions)
            for asn in peer_order
            if simulator.router(asn).export_community_additions
        }
        tasks.append(
            (tuple(group), _capture_peer_state(simulator, peer_order), additions, timestamp)
        )
    pool = simulator._ensure_pool(len(tasks))
    outcomes = pool.run(tasks, fn=_run_harvest_shard)
    rows = [row for outcome in outcomes for row in outcome]
    rows.sort(key=lambda pair: pair[0])
    archive = ObservationArchive()
    for _index, observations in rows:
        archive.extend(observations)
    return archive


def harvest_archive(
    deployment: "CollectorDeployment",
    simulator: "BgpSimulator",
    timestamp: float = 0.0,
    shards: int | str | None = None,
) -> ObservationArchive:
    """Harvest a deployment's observations from a converged simulation.

    ``shards`` selects the execution policy: ``1`` serial, an integer K
    or ``"auto"`` parallel; ``None`` inherits the simulator's own
    explicit ``shards`` policy (a ``BgpSimulator(shards=4)`` harvests
    sharded too), falling back to serial when the simulator also left
    it unset.  The archive is byte-identical whichever path runs.

    The sharded path inherits the worker-pool contract of
    :mod:`repro.routing.shard`: worker routers mirror the parent's
    configuration as of pool creation, so router config (policies,
    vendor, filters) changed *after* the first sharded call is not
    reflected — reconfigure first, or :meth:`BgpSimulator.close` to
    force a fresh snapshot.  Loc-RIB bests and per-session export
    community additions are re-shipped with every harvest and are
    always current.
    """
    if shards is None:
        shards = simulator.shards
    items = build_worklist(deployment, simulator)
    peer_count = len({item.peer_asn for item in items})
    shard_count = resolve_harvest_shards(shards, len(items), peer_count, simulator)
    if shard_count <= 1:
        return _harvest_serial(items, simulator, timestamp)
    return _harvest_sharded(items, simulator, timestamp, shard_count)
