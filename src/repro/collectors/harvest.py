"""Sharded, memoised collector harvesting.

``CollectorDeployment.collect_from_simulator`` used to be the last
serial hot path of the pipeline: one process re-ran each peer router's
full-table export policy chain once per (collector, peer) session.
This module is the subsystem that replaces that loop:

* :func:`build_worklist` flattens a deployment into the exact
  (collector, peer) sequence the serial loop walked — the item index is
  the merge key that keeps any parallel execution byte-identical;
* the **per-peer export memo**: every session shares one harvest-scoped
  export cache keyed by :meth:`Router.export_memo_key`, so N collectors
  peering with the same AS pay the policy/prepend/rewrite chain once
  per distinct best route instead of N times;
* :func:`harvest_archive` with ``shards=K`` exports from the
  **resident** Loc-RIBs of the owning simulator's slot-pinned
  :class:`~repro.routing.shard.ShardPool`: each worker already holds
  the converged state of its prefix shards from propagation, so a
  harvest ships only the parent's pending-sync backlog (nothing, when
  the last batches ran sharded) plus the work-list — no per-harvest
  best-route re-shipping.  Every worker runs the same memoised export
  core over the full work-list restricted to its resident prefixes and
  returns observation rows tagged with their work-list index; the
  parent merges each item's rows back in its own per-peer Loc-RIB
  insertion order — the resulting archive is byte-identical to the
  serial loop for every shard count.

Parallelism composes with the rest of the system: the pool is the same
one sharded propagation uses (one topology snapshot, one set of warm,
resident workers) and its size is capped by
:func:`repro.routing.shard.shard_worker_budget`, which
:class:`~repro.experiments.grid.GridRunner` pins per grid worker via
``REPRO_SHARD_BUDGET`` — grid × shard × harvest parallelism never
oversubscribes the machine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.collectors.observation import ObservationArchive, RouteObservation
from repro.routing.engine import AUTO_SHARD_MAX, AUTO_SHARD_MIN_BUDGET
from repro.topology.relationships import Relationship

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance
    from repro.bgp.prefix import Prefix

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance
    from repro.bgp.route import Announcement
    from repro.collectors.platform import CollectorDeployment
    from repro.routing.engine import BgpSimulator

#: Below this many (collector, peer) work items, ``shards="auto"`` stays
#: serial: worker start-up and Loc-RIB shipping would eat the win.
HARVEST_AUTO_MIN_ITEMS = 64


@dataclass(frozen=True)
class HarvestItem:
    """One (collector, peer) session of the harvest work-list."""

    #: Position in the serial work-list — the merge key that keeps a
    #: sharded harvest byte-identical to the serial loop.
    index: int
    platform: str
    collector_id: str
    collector_asn: int
    peer_asn: int


def build_worklist(
    deployment: "CollectorDeployment", simulator: "BgpSimulator"
) -> list[HarvestItem]:
    """Flatten a deployment into the serial-order (collector, peer) work-list.

    Peers without a router in the simulation are skipped, exactly like
    the historical serial loop skipped them.
    """
    items: list[HarvestItem] = []
    routers = simulator.routers
    for collector in deployment.all_collectors():
        for peer_asn in collector.peer_asns:
            if peer_asn not in routers:
                continue
            items.append(
                HarvestItem(
                    index=len(items),
                    platform=collector.platform,
                    collector_id=collector.collector_id,
                    collector_asn=collector.collector_asn,
                    peer_asn=peer_asn,
                )
            )
    return items


def _observation_from(
    item: HarvestItem, announcement: "Announcement", timestamp: float
) -> RouteObservation:
    """Turn one exported announcement into the observation the archive stores."""
    return RouteObservation(
        platform=item.platform,
        collector_id=item.collector_id,
        peer_asn=item.peer_asn,
        prefix=announcement.prefix,
        as_path=tuple(announcement.attributes.as_path.asns()),
        communities=announcement.attributes.communities,
        timestamp=timestamp,
    )


def _export_item(
    simulator: "BgpSimulator", item: HarvestItem, timestamp: float, export_cache: dict
) -> list[RouteObservation]:
    """Export one session's full table through the shared memo."""
    router = simulator.router(item.peer_asn)
    shared_key = router.export_memo_key(item.collector_asn)
    return [
        _observation_from(item, announcement, timestamp)
        for announcement in router.export_all_to(item.collector_asn, export_cache, shared_key)
    ]


def _harvest_serial(
    items: Sequence[HarvestItem], simulator: "BgpSimulator", timestamp: float
) -> ObservationArchive:
    """The in-process reference path: serial order, memoised exports."""
    archive = ObservationArchive()
    export_cache: dict = {}
    for item in items:
        simulator.register_collector_peering(item.peer_asn, item.collector_asn)
        archive.extend(_export_item(simulator, item, timestamp, export_cache))
    return archive


def resolve_harvest_shards(
    shards: int | str | None,
    item_count: int,
    peer_count: int,
    simulator: "BgpSimulator",
) -> int:
    """Turn the harvest shard policy into a concrete shard count.

    ``None`` and ``1`` mean serial; an integer K is honoured (capped by
    the distinct-peer count — surplus shards would only idle);
    ``"auto"`` engages when the CPU budget and the work-list size make
    the pool worth paying for.
    """
    if shards is None or shards == 1 or peer_count <= 1:
        return 1
    if shards == "auto":
        from repro.routing.shard import shard_worker_budget

        budget = (
            simulator.max_workers
            if simulator.max_workers is not None
            else shard_worker_budget()
        )
        if budget < AUTO_SHARD_MIN_BUDGET or item_count < HARVEST_AUTO_MIN_ITEMS:
            return 1
        return min(AUTO_SHARD_MAX, budget, peer_count)
    count = int(shards)
    if count <= 1:
        return 1
    return min(count, peer_count)


# ---------------------------------------------------------------- sharded path
#: One slot's task payload: ``(epoch, router_config | None,
#: additions_blob, items_blob, states_blob, timestamp)`` — the same
#: sync header the propagation tasks carry, the full work-list, and the
#: slot's pending state deltas, all as :mod:`repro.routing.wire` blobs.
HarvestTask = tuple


def _run_harvest_shard(task: HarvestTask) -> bytes:
    """Worker entry point: export the work-list from the resident Loc-RIBs.

    The worker's routers already hold the converged state of this
    slot's prefix shards (``states`` carries only what the parent
    mutated since the last dispatch), so each item's export is simply
    ``export_all_to`` over the resident table — which contains exactly
    this slot's share of the peer's prefixes.  Rows carry only the
    per-route payload (prefix, AS path, communities) plus their
    work-list index; the parent re-attaches the per-item constants and
    reorders each item's merged rows into its own Loc-RIB order.
    """
    from repro.routing import shard as shard_module
    from repro.routing import wire

    epoch, router_config, additions_blob, items_blob, states_blob, timestamp = task
    simulator = shard_module._resident_simulator()
    interner = simulator._wire_intern
    shard_module._sync_worker(simulator, epoch, router_config)
    shard_module.install_prefix_state(
        simulator, wire.decode_states(states_blob, interner), stale=None
    )
    shard_module._install_additions(simulator, wire.decode_additions(additions_blob, interner))
    export_cache: dict = {}
    results: list[tuple[int, list[tuple]]] = []
    for fields in wire.decode_items(items_blob, interner):
        item = HarvestItem(*fields)
        router = simulator.routers[item.peer_asn]
        router.add_neighbor(item.collector_asn, Relationship.CUSTOMER)
        shared_key = router.export_memo_key(item.collector_asn)
        rows = [
            (
                announcement.prefix,
                tuple(announcement.attributes.as_path.asns()),
                announcement.attributes.communities,
            )
            for announcement in router.export_all_to(
                item.collector_asn, export_cache, shared_key
            )
        ]
        results.append((item.index, rows))
    return wire.encode_observations(results)


def _harvest_sharded(
    items: Sequence[HarvestItem],
    simulator: "BgpSimulator",
    timestamp: float,
    shard_count: int,
) -> ObservationArchive:
    """Export from the resident workers, merge in work-list + Loc-RIB order."""
    from repro.routing import shard as shard_module
    from repro.routing import wire

    # The parent registers every session too, exactly like the serial
    # path — parent simulator state is identical whichever path ran.
    # (Collector sessions never influence propagation, so they do not
    # perturb the pool's config epoch either.)
    for item in items:
        simulator.register_collector_peering(item.peer_asn, item.collector_asn)
    pool = simulator._ensure_pool(shard_count)
    simulator._refresh_pool_epoch(pool)
    # A harvest reads *every* resident Loc-RIB, so the parent's entire
    # pending-sync backlog must flush — grouped by the slot that owns
    # each prefix.  Slots that hold no state at all are never dispatched.
    slot_sync: dict[int, dict["Prefix", set[int]]] = {}
    for prefix in list(simulator._pending_sync):
        slot = pool.slot_for(shard_module.stable_shard(prefix, pool.shards))
        slot_sync.setdefault(slot, {})[prefix] = simulator._pending_sync.pop(prefix)
    live_slots = sorted(
        {
            pool.slot_for(shard_module.stable_shard(prefix, pool.shards))
            for prefix, holders in simulator._prefix_holders.items()
            if holders
        }
    )
    additions = {
        asn: dict(router.export_community_additions)
        for asn, router in simulator.routers.items()
        if router.export_community_additions
    }
    by_index = {item.index: item for item in items}
    futures = []
    try:
        # The additions and the work-list encode once: every slot ships
        # the exact same blobs.
        additions_blob = wire.encode_additions(additions)
        items_blob = wire.encode_items(items)
        for slot in live_slots:
            sync = slot_sync.get(slot, {})
            states = shard_module.capture_prefix_state(simulator, list(sync), holders=sync)
            epoch, config = pool.sync_header(slot, simulator._pool_lease.config_blob)
            pool.shipped_state_entries += len(states)
            futures.append(
                pool.submit(
                    slot,
                    _run_harvest_shard,
                    (epoch, config, additions_blob, items_blob,
                     wire.encode_states(states), timestamp),
                )
            )
        outcomes = [future.result() for future in futures]
    except BaseException:
        simulator._invalidate_pool()
        raise
    # Merge: each item's observations arrive split across slots; the
    # serial export order is the parent peer's Loc-RIB insertion order,
    # so sort each item's rows by the parent's own position map.  The
    # wire rows carry only (prefix, as_path, communities) — the
    # per-item constants and the timestamp are re-attached here, with
    # the communities interned through the parent's own table.
    by_item: dict[int, list[RouteObservation]] = {}
    for blob in outcomes:
        for index, rows in wire.decode_observations(blob, simulator._wire_intern):
            if not rows:
                continue
            item = by_index[index]
            by_item.setdefault(index, []).extend(
                RouteObservation(
                    platform=item.platform,
                    collector_id=item.collector_id,
                    peer_asn=item.peer_asn,
                    prefix=prefix,
                    as_path=as_path,
                    communities=communities,
                    timestamp=timestamp,
                )
                for prefix, as_path, communities in rows
            )
    order_cache: dict[int, dict["Prefix", int]] = {}
    archive = ObservationArchive()
    for item in items:
        observations = by_item.get(item.index)
        if not observations:
            continue
        order = order_cache.get(item.peer_asn)
        if order is None:
            order = {
                prefix: position
                for position, prefix in enumerate(
                    simulator.router(item.peer_asn).loc_rib.prefixes()
                )
            }
            order_cache[item.peer_asn] = order
        observations.sort(key=lambda observation: order.get(observation.prefix, len(order)))
        archive.extend(observations)
    return archive


def harvest_archive(
    deployment: "CollectorDeployment",
    simulator: "BgpSimulator",
    timestamp: float = 0.0,
    shards: int | str | None = None,
) -> ObservationArchive:
    """Harvest a deployment's observations from a converged simulation.

    ``shards`` selects the execution policy: ``1`` serial, an integer K
    or ``"auto"`` parallel; ``None`` inherits the simulator's own
    explicit ``shards`` policy (a ``BgpSimulator(shards=4)`` harvests
    sharded too), falling back to serial when the simulator also left
    it unset.  The archive is byte-identical whichever path runs.

    The sharded path inherits the resident worker-pool contract of
    :mod:`repro.routing.shard`: router config changes (policies,
    vendor, filters) are detected before dispatch and bump the pool's
    state epoch, so workers re-sync automatically; per-router export
    community additions are re-shipped with every task and are always
    current.  A harvest flushes the parent's whole pending-sync backlog
    — after it, every resident Loc-RIB mirrors the parent exactly.
    """
    if shards is None:
        shards = simulator.shards
    items = build_worklist(deployment, simulator)
    peer_count = len({item.peer_asn for item in items})
    shard_count = resolve_harvest_shards(shards, len(items), peer_count, simulator)
    if shard_count <= 1:
        return _harvest_serial(items, simulator, timestamp)
    return _harvest_sharded(items, simulator, timestamp, shard_count)
