"""Statistics helpers used by the measurement pipeline.

The paper's Section 4 figures are almost all empirical CDFs (ECDFs) and
histograms; this module provides small, dependency-light implementations
whose output maps directly onto the series the figures plot.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.exceptions import MeasurementError


def fraction(numerator: int, denominator: int) -> float:
    """Return ``numerator / denominator``, defining 0/0 as 0.0."""
    if denominator == 0:
        return 0.0
    return numerator / denominator


def percentile(values: Sequence[float], q: float) -> float:
    """Return the q-th percentile (0..100) using linear interpolation."""
    if not values:
        raise MeasurementError("cannot compute percentile of an empty sequence")
    if not 0.0 <= q <= 100.0:
        raise MeasurementError(f"percentile {q} must be in [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return float(ordered[low])
    weight = rank - low
    return float(ordered[low] * (1.0 - weight) + ordered[high] * weight)


@dataclass(frozen=True)
class EcdfPoint:
    """A single (x, cumulative fraction) point of an empirical CDF."""

    x: float
    fraction: float


class Ecdf:
    """Empirical cumulative distribution function over numeric samples."""

    def __init__(self, values: Iterable[float]):
        self._values = sorted(float(v) for v in values)

    def __len__(self) -> int:
        return len(self._values)

    def __bool__(self) -> bool:
        return bool(self._values)

    @property
    def values(self) -> list[float]:
        """The sorted underlying samples."""
        return list(self._values)

    def at(self, x: float) -> float:
        """Return P(X <= x)."""
        if not self._values:
            return 0.0
        # Binary search for the right-most value <= x.
        lo, hi = 0, len(self._values)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._values[mid] <= x:
                lo = mid + 1
            else:
                hi = mid
        return lo / len(self._values)

    def survival(self, x: float) -> float:
        """Return P(X > x) (0.0 for an empty sample)."""
        if not self._values:
            return 0.0
        return 1.0 - self.at(x)

    def points(self) -> list[EcdfPoint]:
        """Return the ECDF as a list of step points at distinct sample values."""
        points: list[EcdfPoint] = []
        total = len(self._values)
        if total == 0:
            return points
        count = 0
        previous: float | None = None
        for value in self._values:
            count += 1
            if previous is not None and value == previous:
                points[-1] = EcdfPoint(value, count / total)
            else:
                points.append(EcdfPoint(value, count / total))
            previous = value
        return points

    def quantile(self, q: float) -> float:
        """Return the q-quantile (0..1) of the samples."""
        return percentile(self._values, q * 100.0)

    def mean(self) -> float:
        """Return the sample mean."""
        if not self._values:
            raise MeasurementError("cannot compute mean of an empty ECDF")
        return sum(self._values) / len(self._values)


class Histogram:
    """Counting histogram over hashable keys with convenience accessors."""

    def __init__(self, values: Iterable = ()):  # type: ignore[type-arg]
        self._counts: Counter = Counter(values)

    def add(self, key, count: int = 1) -> None:
        """Add ``count`` observations of ``key``."""
        self._counts[key] += count

    def count(self, key) -> int:
        """Return the number of observations of ``key``."""
        return self._counts.get(key, 0)

    def total(self) -> int:
        """Return the total number of observations."""
        return sum(self._counts.values())

    def top(self, n: int) -> list[tuple]:
        """Return the ``n`` most common (key, count) pairs."""
        return self._counts.most_common(n)

    def keys(self):
        """Return the observed keys."""
        return self._counts.keys()

    def items(self):
        """Return (key, count) pairs."""
        return self._counts.items()

    def fractions(self) -> dict:
        """Return key -> fraction-of-total."""
        total = self.total()
        return {key: fraction(count, total) for key, count in self._counts.items()}

    def __len__(self) -> int:
        return len(self._counts)

    def __contains__(self, key) -> bool:
        return key in self._counts


def summarize(values: Sequence[float]) -> dict[str, float]:
    """Return min/median/mean/p90/max summary statistics for a sample."""
    if not values:
        raise MeasurementError("cannot summarize an empty sequence")
    ordered = sorted(float(v) for v in values)
    return {
        "min": ordered[0],
        "median": percentile(ordered, 50.0),
        "mean": sum(ordered) / len(ordered),
        "p90": percentile(ordered, 90.0),
        "max": ordered[-1],
        "count": float(len(ordered)),
    }
