"""Plain-text table rendering for benchmark and CLI reports.

The benchmark harness prints every reproduced table/figure as an ASCII
table so the rows can be compared side by side with the paper.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_count(value: float | int) -> str:
    """Format a count with thousands separators (floats get 2 decimals)."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        if value == int(value) and abs(value) >= 1000:
            return f"{int(value):,}"
        return f"{value:,.2f}"
    return str(value)


class Table:
    """A simple column-aligned ASCII table builder."""

    def __init__(self, columns: Sequence[str], title: str | None = None):
        self.title = title
        self.columns = list(columns)
        self.rows: list[list[str]] = []

    def add_row(self, values: Iterable) -> None:
        """Append a row; values are stringified with :func:`format_count`."""
        row = [format_count(v) if isinstance(v, (int, float)) else str(v) for v in values]
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(self.columns)} columns"
            )
        self.rows.append(row)

    def render(self) -> str:
        """Render the table as a string."""
        widths = [len(col) for col in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def render_row(cells: Sequence[str]) -> str:
            return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(render_row(self.columns))
        lines.append("-+-".join("-" * w for w in widths))
        lines.extend(render_row(row) for row in self.rows)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
