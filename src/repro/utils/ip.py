"""Low-level IPv4/IPv6 prefix arithmetic.

The BGP data model (:mod:`repro.bgp.prefix`) and the MRT codec
(:mod:`repro.mrt`) need fast integer-based address manipulation:
parsing, formatting, masking, containment and overlap checks.  We keep
these as plain functions over integers so hot loops (longest-prefix
match, dataset generation) avoid object allocation.
"""

from __future__ import annotations

from repro.exceptions import PrefixError

IPV4_BITS = 32
IPV6_BITS = 128

_IPV4_MAX = (1 << IPV4_BITS) - 1
_IPV6_MAX = (1 << IPV6_BITS) - 1


def parse_ipv4(text: str) -> int:
    """Parse dotted-quad IPv4 text into an integer.

    >>> parse_ipv4("10.0.0.1")
    167772161
    """
    parts = text.strip().split(".")
    if len(parts) != 4:
        raise PrefixError(f"invalid IPv4 address {text!r}: expected 4 octets")
    value = 0
    for part in parts:
        if not part.isdigit():
            raise PrefixError(f"invalid IPv4 address {text!r}: non-numeric octet {part!r}")
        octet = int(part)
        if octet > 255:
            raise PrefixError(f"invalid IPv4 address {text!r}: octet {octet} out of range")
        value = (value << 8) | octet
    return value


def format_ipv4(value: int) -> str:
    """Format an integer as dotted-quad IPv4 text."""
    if not 0 <= value <= _IPV4_MAX:
        raise PrefixError(f"IPv4 integer {value} out of range")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def parse_ipv6(text: str) -> int:
    """Parse IPv6 text (with optional ``::`` compression) into an integer."""
    text = text.strip()
    if text.count("::") > 1:
        raise PrefixError(f"invalid IPv6 address {text!r}: multiple '::'")
    if "::" in text:
        head, _, tail = text.partition("::")
        head_groups = head.split(":") if head else []
        tail_groups = tail.split(":") if tail else []
        missing = 8 - len(head_groups) - len(tail_groups)
        if missing < 1:
            raise PrefixError(f"invalid IPv6 address {text!r}: too many groups")
        groups = head_groups + ["0"] * missing + tail_groups
    else:
        groups = text.split(":")
    if len(groups) != 8:
        raise PrefixError(f"invalid IPv6 address {text!r}: expected 8 groups")
    value = 0
    for group in groups:
        if group == "":
            raise PrefixError(f"invalid IPv6 address {text!r}: empty group")
        try:
            part = int(group, 16)
        except ValueError as exc:
            raise PrefixError(f"invalid IPv6 address {text!r}: bad group {group!r}") from exc
        if part > 0xFFFF:
            raise PrefixError(f"invalid IPv6 address {text!r}: group {group!r} out of range")
        value = (value << 16) | part
    return value


def format_ipv6(value: int) -> str:
    """Format an integer as IPv6 text, compressing the longest zero run."""
    if not 0 <= value <= _IPV6_MAX:
        raise PrefixError(f"IPv6 integer {value} out of range")
    groups = [(value >> (112 - 16 * i)) & 0xFFFF for i in range(8)]
    # Find the longest run of zero groups (length >= 2) to compress.
    best_start, best_len = -1, 0
    run_start, run_len = -1, 0
    for i, group in enumerate(groups):
        if group == 0:
            if run_start < 0:
                run_start, run_len = i, 1
            else:
                run_len += 1
            if run_len > best_len:
                best_start, best_len = run_start, run_len
        else:
            run_start, run_len = -1, 0
    if best_len >= 2:
        head = ":".join(format(g, "x") for g in groups[:best_start])
        tail = ":".join(format(g, "x") for g in groups[best_start + best_len:])
        return f"{head}::{tail}"
    return ":".join(format(g, "x") for g in groups)


def mask_for_length(length: int, bits: int = IPV4_BITS) -> int:
    """Return the network mask integer for a prefix length."""
    if not 0 <= length <= bits:
        raise PrefixError(f"prefix length {length} out of range for {bits}-bit addresses")
    if length == 0:
        return 0
    return ((1 << length) - 1) << (bits - length)


def network_address(address: int, length: int, bits: int = IPV4_BITS) -> int:
    """Return the network (base) address of ``address/length``."""
    return address & mask_for_length(length, bits)


def host_count(length: int, bits: int = IPV4_BITS) -> int:
    """Return the number of addresses covered by a prefix of this length."""
    if not 0 <= length <= bits:
        raise PrefixError(f"prefix length {length} out of range for {bits}-bit addresses")
    return 1 << (bits - length)


def prefix_contains(
    outer_network: int,
    outer_length: int,
    inner_network: int,
    inner_length: int,
    bits: int = IPV4_BITS,
) -> bool:
    """Return True if ``outer`` covers ``inner`` (outer is equal or less specific)."""
    if outer_length > inner_length:
        return False
    mask = mask_for_length(outer_length, bits)
    return (inner_network & mask) == (outer_network & mask)


def prefixes_overlap(
    network_a: int,
    length_a: int,
    network_b: int,
    length_b: int,
    bits: int = IPV4_BITS,
) -> bool:
    """Return True if the two prefixes share at least one address."""
    return prefix_contains(network_a, length_a, network_b, length_b, bits) or prefix_contains(
        network_b, length_b, network_a, length_a, bits
    )
