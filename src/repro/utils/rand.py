"""Deterministic random-number helpers.

All synthetic dataset generation and topology generation is seeded so
every table and figure the benchmark harness regenerates is exactly
reproducible run-to-run.
"""

from __future__ import annotations

import random
from typing import Sequence, TypeVar

T = TypeVar("T")


class DeterministicRng:
    """A thin, explicitly-seeded wrapper around :class:`random.Random`.

    Using a wrapper rather than the module-level functions keeps the
    generators used by different subsystems independent: the topology
    generator and the dataset generator receive separate child streams
    (see :meth:`child`) so adding draws to one does not perturb the
    other.
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._rng = random.Random(self.seed)

    def child(self, label: str) -> "DeterministicRng":
        """Derive an independent, reproducible child stream for ``label``."""
        # ``hash`` of a str is salted per-process, so the child seed is mixed
        # from the label bytes only: children must be stable across
        # interpreter invocations for run-to-run reproducibility.
        mixed = self.seed
        for byte in label.encode("utf-8"):
            mixed = (mixed * 131 + byte) & 0x7FFFFFFFFFFF
        return DeterministicRng(mixed)

    def randint(self, low: int, high: int) -> int:
        """Return a uniform integer in [low, high]."""
        return self._rng.randint(low, high)

    def random(self) -> float:
        """Return a uniform float in [0, 1)."""
        return self._rng.random()

    def chance(self, probability: float) -> bool:
        """Return True with the given probability."""
        return self._rng.random() < probability

    def choice(self, items: Sequence[T]) -> T:
        """Return a uniformly chosen item."""
        return self._rng.choice(items)

    def sample(self, items: Sequence[T], count: int) -> list[T]:
        """Return ``count`` distinct items chosen without replacement."""
        count = min(count, len(items))
        return self._rng.sample(list(items), count)

    def shuffle(self, items: list[T]) -> list[T]:
        """Return a new list with the items shuffled."""
        shuffled = list(items)
        self._rng.shuffle(shuffled)
        return shuffled

    def weighted_choice(self, items: Sequence[T], weights: Sequence[float]) -> T:
        """Return one item chosen proportionally to ``weights``."""
        return self._rng.choices(list(items), weights=list(weights), k=1)[0]

    def pareto_int(self, alpha: float, minimum: int = 1, maximum: int | None = None) -> int:
        """Return a Pareto-distributed integer >= minimum (heavy-tailed sizes)."""
        value = int(minimum * self._rng.paretovariate(alpha))
        if maximum is not None:
            value = min(value, maximum)
        return max(minimum, value)

    def expovariate(self, rate: float) -> float:
        """Return an exponentially distributed float with the given rate."""
        return self._rng.expovariate(rate)
