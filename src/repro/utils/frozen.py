"""The sanctioned write path into frozen dataclass instances.

Frozen value objects (:class:`~repro.bgp.prefix.Prefix`,
:class:`~repro.bgp.attributes.PathAttributes`, ...) occasionally need a
real field write: normalising a field during ``__post_init__`` or
memoising an immutable derivation (the cached ``_hash`` that keys every
RIB container).  Scattering raw ``object.__setattr__`` calls for that
makes the immutability discipline unreviewable — any call site could be
mutating anything.

:func:`set_frozen_field` is the single blessed escape hatch: lint rule
``RPR020`` (:mod:`repro.analysis`) flags every ``object.__setattr__``
outside ``__post_init__`` and this helper, so all frozen-instance
writes are findable in one place and reviewable as one pattern.  The
contract for callers: write only during construction, or write a value
that is a pure function of already-frozen fields (a cache, never a
state change).
"""

from __future__ import annotations

from typing import Any


def set_frozen_field(instance: Any, name: str, value: Any) -> None:
    """Write ``name`` on a frozen dataclass instance.

    Only legitimate during construction (``__post_init__`` field
    normalisation) or to memoise a value derived purely from frozen
    fields — the observable value semantics of ``instance`` must not
    change.
    """
    object.__setattr__(instance, name, value)
