"""Shared utilities: prefix arithmetic, statistics helpers, deterministic RNG, tables."""

from repro.utils.ip import (
    parse_ipv4,
    format_ipv4,
    parse_ipv6,
    format_ipv6,
    mask_for_length,
    network_address,
    prefix_contains,
    prefixes_overlap,
)
from repro.utils.stats import Ecdf, Histogram, fraction, percentile, summarize
from repro.utils.frozen import set_frozen_field
from repro.utils.rand import DeterministicRng
from repro.utils.tables import Table, format_count

__all__ = [
    "parse_ipv4",
    "format_ipv4",
    "parse_ipv6",
    "format_ipv6",
    "mask_for_length",
    "network_address",
    "prefix_contains",
    "prefixes_overlap",
    "Ecdf",
    "Histogram",
    "fraction",
    "percentile",
    "summarize",
    "DeterministicRng",
    "set_frozen_field",
    "Table",
    "format_count",
]
