"""Forwarding information bases derived from the control plane.

Each AS's FIB maps prefixes to a next-hop AS (or to a null interface for
blackholed routes); lookups use longest-prefix match.  The wild
experiments verify attacks on the data plane — "the next-hop address for
the prefix changed to a null interface address" — which is exactly the
state this module captures.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bgp.prefix import AddressFamily, Prefix
from repro.bgp.rib import LocRib
from repro.bgp.route import RouteEntry
from repro.net.lpm import LpmTable


@dataclass(frozen=True)
class FibEntry:
    """One FIB entry: the prefix, where to send matching traffic, and flags."""

    prefix: Prefix
    #: The neighbor AS traffic is forwarded to; None for locally delivered
    #: (originated) prefixes.
    next_hop_asn: int | None
    #: True when traffic to the prefix is discarded (null interface).
    blackholed: bool = False

    @property
    def is_local(self) -> bool:
        """True if traffic matching this entry is delivered locally."""
        return self.next_hop_asn is None and not self.blackholed


class Fib:
    """Longest-prefix-match forwarding table of one AS."""

    def __init__(self, asn: int):
        self.asn = asn
        self._entries: dict[Prefix, FibEntry] = {}
        #: Per-family radix trie mirroring ``_entries`` for O(bits) lookups.
        self._lpm = LpmTable()

    def install(self, entry: FibEntry) -> None:
        """Install (or replace) the entry for the entry's prefix."""
        self._entries[entry.prefix] = entry
        self._lpm.insert(entry.prefix, entry)

    def remove(self, prefix: Prefix) -> None:
        """Remove the entry for ``prefix`` if present."""
        if self._entries.pop(prefix, None) is not None:
            self._lpm.delete(prefix)

    def lookup(self, address: int, family: AddressFamily | None = None) -> FibEntry | None:
        """Longest-prefix-match lookup for an integer IPv4/IPv6 address.

        Matching is per family: an IPv4 address (or any address whose
        family was passed explicitly) is only matched against prefixes
        of the same family.
        """
        hit = self._lpm.longest_match(address, family)
        return hit[1] if hit is not None else None

    def get(self, prefix: Prefix) -> FibEntry | None:
        """Return the entry installed for exactly ``prefix``."""
        return self._entries.get(prefix)

    def entries(self) -> list[FibEntry]:
        """Return all installed entries."""
        return list(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, prefix: Prefix) -> bool:
        return prefix in self._entries


def fib_entry_for(
    asn: int, prefix: Prefix, best: RouteEntry | None, originated: bool
) -> FibEntry | None:
    """Derive the FIB entry one AS should hold for ``prefix``.

    Originated prefixes become local-delivery entries; blackholed best
    routes become discard entries; everything else points at the
    neighbor the best route was learned from.  Returns None when the AS
    should hold no entry at all (no route).
    """
    if originated:
        return FibEntry(prefix=prefix, next_hop_asn=None, blackholed=False)
    if best is None:
        return None
    if best.blackholed:
        return FibEntry(prefix=prefix, next_hop_asn=None, blackholed=True)
    if best.learned_from == asn:
        return FibEntry(prefix=prefix, next_hop_asn=None, blackholed=False)
    return FibEntry(prefix=prefix, next_hop_asn=best.learned_from, blackholed=False)


def build_fib(asn: int, loc_rib: LocRib, originated: set[Prefix] = frozenset()) -> Fib:
    """Build the FIB of one AS from scratch from its Loc-RIB."""
    fib = Fib(asn)
    for prefix in originated:
        fib.install(fib_entry_for(asn, prefix, None, True))
    for entry in loc_rib.best_routes():
        if entry.prefix in originated:
            continue
        fib.install(fib_entry_for(asn, entry.prefix, entry, False))
    return fib


def patch_fib(fib: Fib, asn: int, loc_rib: LocRib, originated: set[Prefix], prefix: Prefix) -> None:
    """Re-derive and install/remove the single FIB entry for ``prefix``."""
    entry = fib_entry_for(asn, prefix, loc_rib.best(prefix), prefix in originated)
    if entry is None:
        fib.remove(prefix)
    else:
        fib.install(entry)
