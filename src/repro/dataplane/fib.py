"""Forwarding information bases derived from the control plane.

Each AS's FIB maps prefixes to a next-hop AS (or to a null interface for
blackholed routes); lookups use longest-prefix match.  The wild
experiments verify attacks on the data plane — "the next-hop address for
the prefix changed to a null interface address" — which is exactly the
state this module captures.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bgp.prefix import Prefix
from repro.bgp.rib import LocRib


@dataclass(frozen=True)
class FibEntry:
    """One FIB entry: the prefix, where to send matching traffic, and flags."""

    prefix: Prefix
    #: The neighbor AS traffic is forwarded to; None for locally delivered
    #: (originated) prefixes.
    next_hop_asn: int | None
    #: True when traffic to the prefix is discarded (null interface).
    blackholed: bool = False

    @property
    def is_local(self) -> bool:
        """True if traffic matching this entry is delivered locally."""
        return self.next_hop_asn is None and not self.blackholed


class Fib:
    """Longest-prefix-match forwarding table of one AS."""

    def __init__(self, asn: int):
        self.asn = asn
        self._entries: dict[Prefix, FibEntry] = {}

    def install(self, entry: FibEntry) -> None:
        """Install (or replace) the entry for the entry's prefix."""
        self._entries[entry.prefix] = entry

    def remove(self, prefix: Prefix) -> None:
        """Remove the entry for ``prefix`` if present."""
        self._entries.pop(prefix, None)

    def lookup(self, address: int) -> FibEntry | None:
        """Longest-prefix-match lookup for an integer IPv4/IPv6 address."""
        best: FibEntry | None = None
        for prefix, entry in self._entries.items():
            if prefix.contains_address(address):
                if best is None or prefix.length > best.prefix.length:
                    best = entry
        return best

    def entries(self) -> list[FibEntry]:
        """Return all installed entries."""
        return list(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, prefix: Prefix) -> bool:
        return prefix in self._entries


def build_fib(asn: int, loc_rib: LocRib, originated: set[Prefix] = frozenset()) -> Fib:
    """Build the FIB of one AS from its Loc-RIB.

    Originated prefixes become local-delivery entries; blackholed best
    routes become discard entries; everything else points at the
    neighbor the best route was learned from.
    """
    fib = Fib(asn)
    for prefix in originated:
        fib.install(FibEntry(prefix=prefix, next_hop_asn=None, blackholed=False))
    for entry in loc_rib.best_routes():
        if entry.prefix in originated:
            continue
        if entry.blackholed:
            fib.install(FibEntry(prefix=entry.prefix, next_hop_asn=None, blackholed=True))
        elif entry.learned_from == asn:
            fib.install(FibEntry(prefix=entry.prefix, next_hop_asn=None, blackholed=False))
        else:
            fib.install(
                FibEntry(prefix=entry.prefix, next_hop_asn=entry.learned_from, blackholed=False)
            )
    return fib
