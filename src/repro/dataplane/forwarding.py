"""AS-level packet forwarding, ping and traceroute simulation.

The paper validates every attack on the data plane with RIPE Atlas
probes; :class:`DataPlane` provides the equivalent capability over the
simulated Internet: build every AS's FIB from the converged control
plane, then walk packets hop by hop, reporting delivery, blackholing,
loops, or missing routes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.bgp.prefix import AddressFamily, Prefix
from repro.dataplane.fib import Fib, build_fib, patch_fib
from repro.exceptions import DataPlaneError
from repro.net.lpm import infer_family
from repro.routing.engine import BgpSimulator, SimulationReport


class ForwardingOutcome(str, Enum):
    """What happened to a forwarded packet."""

    DELIVERED = "delivered"
    BLACKHOLED = "blackholed"
    NO_ROUTE = "no_route"
    LOOP = "loop"
    TTL_EXPIRED = "ttl_expired"


@dataclass
class TracerouteResult:
    """The AS-level path a packet took and how its journey ended."""

    source_asn: int
    destination: int
    outcome: ForwardingOutcome
    path: list[int] = field(default_factory=list)
    #: The AS at which the packet was dropped (if it was).
    dropped_at: int | None = None

    @property
    def reached(self) -> bool:
        """True if the packet was delivered."""
        return self.outcome == ForwardingOutcome.DELIVERED


@dataclass
class PingResult:
    """Reachability of a destination address from a source AS."""

    source_asn: int
    destination: int
    reachable: bool
    outcome: ForwardingOutcome
    hops: int = 0


class DataPlane:
    """Per-AS FIBs plus hop-by-hop forwarding over a converged simulation."""

    def __init__(self, simulator: BgpSimulator, max_ttl: int = 64):
        self.simulator = simulator
        self.max_ttl = max_ttl
        self.fibs: dict[int, Fib] = {}
        self.rebuild()

    def rebuild(self, report: SimulationReport | None = None) -> None:
        """Bring the FIBs in sync with the current control-plane state.

        Without a ``report`` every AS's FIB is rebuilt from scratch.  With
        the :class:`SimulationReport` returned by ``announce``/``withdraw``,
        only the (router, prefix) pairs whose best route changed during
        that run are re-derived — an incremental patch that costs
        O(dirty entries) instead of O(ASes x table size).  Falls back to a
        full rebuild when the router set changed since the last build.
        """
        routers = self.simulator.routers
        if report is None or self.fibs.keys() != routers.keys():
            self.fibs = {}
            for asn, router in routers.items():
                originated = set(router.originated)
                self.fibs[asn] = build_fib(asn, router.loc_rib, originated)
            return
        for asn, prefixes in report.dirty.items():
            router = routers.get(asn)
            if router is None:
                continue
            fib = self.fibs[asn]
            originated = set(router.originated)
            for prefix in prefixes:
                patch_fib(fib, asn, router.loc_rib, originated, prefix)

    def fib(self, asn: int) -> Fib:
        """Return the FIB of ``asn``."""
        try:
            return self.fibs[asn]
        except KeyError as exc:
            raise DataPlaneError(f"no FIB for AS{asn}") from exc

    # -------------------------------------------------------------- forwarding
    def traceroute(
        self, source_asn: int, destination: int, family: AddressFamily | None = None
    ) -> TracerouteResult:
        """Forward a packet from ``source_asn`` toward integer address ``destination``."""
        if source_asn not in self.fibs:
            raise DataPlaneError(f"source AS{source_asn} is not part of the simulation")
        if family is None:
            family = infer_family(destination)
        path = [source_asn]
        current = source_asn
        for _ in range(self.max_ttl):
            fib = self.fibs[current]
            entry = fib.lookup(destination, family)
            if entry is None:
                return TracerouteResult(
                    source_asn, destination, ForwardingOutcome.NO_ROUTE, path, dropped_at=current
                )
            if entry.blackholed:
                return TracerouteResult(
                    source_asn, destination, ForwardingOutcome.BLACKHOLED, path, dropped_at=current
                )
            if entry.is_local:
                return TracerouteResult(source_asn, destination, ForwardingOutcome.DELIVERED, path)
            next_asn = entry.next_hop_asn
            if next_asn in path:
                return TracerouteResult(
                    source_asn, destination, ForwardingOutcome.LOOP, path + [next_asn],
                    dropped_at=current,
                )
            if next_asn not in self.fibs:
                return TracerouteResult(
                    source_asn, destination, ForwardingOutcome.NO_ROUTE, path, dropped_at=current
                )
            path.append(next_asn)
            current = next_asn
        return TracerouteResult(
            source_asn, destination, ForwardingOutcome.TTL_EXPIRED, path, dropped_at=current
        )

    def ping(
        self, source_asn: int, destination: int, family: AddressFamily | None = None
    ) -> PingResult:
        """Return reachability of ``destination`` from ``source_asn``."""
        trace = self.traceroute(source_asn, destination, family)
        return PingResult(
            source_asn=source_asn,
            destination=destination,
            reachable=trace.reached,
            outcome=trace.outcome,
            hops=max(0, len(trace.path) - 1),
        )

    def ping_prefix(
        self, source_asn: int, prefix: Prefix, host_offset: int | None = None
    ) -> PingResult:
        """Ping a representative host inside ``prefix``.

        The default host offset follows :meth:`Prefix.host`: 1, clamped to
        0 for /32 and /128 host routes (the paper's RTBH scenarios announce
        exactly such /32 blackhole prefixes).
        """
        return self.ping(source_asn, prefix.host(host_offset), prefix.family)

    def reachability_matrix(
        self, sources: list[int], destination: int, family: AddressFamily | None = None
    ) -> dict[int, bool]:
        """Return per-source reachability of one destination address."""
        if family is None:
            family = infer_family(destination)
        return {source: self.ping(source, destination, family).reachable for source in sources}
