"""Data-plane simulation: FIBs, packet forwarding, ping and traceroute."""

from repro.dataplane.fib import Fib, FibEntry, build_fib
from repro.dataplane.forwarding import (
    DataPlane,
    ForwardingOutcome,
    PingResult,
    TracerouteResult,
)

__all__ = [
    "Fib",
    "FibEntry",
    "build_fib",
    "DataPlane",
    "ForwardingOutcome",
    "PingResult",
    "TracerouteResult",
]
