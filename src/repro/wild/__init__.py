"""Experiments "in the wild" over a generated Internet (Section 7)."""

from repro.wild.peering import InjectionPlatform, attach_peering_testbed, attach_research_network
from repro.wild.propagation_check import PropagationCheckResult, run_propagation_check
from repro.wild.experiments import RtbhWildExperiment, RtbhWildResult
from repro.wild.blackhole_sweep import BlackholeSweep, SweepResult, CommunitySweepOutcome

__all__ = [
    "InjectionPlatform",
    "attach_peering_testbed",
    "attach_research_network",
    "PropagationCheckResult",
    "run_propagation_check",
    "RtbhWildExperiment",
    "RtbhWildResult",
    "BlackholeSweep",
    "SweepResult",
    "CommunitySweepOutcome",
]
