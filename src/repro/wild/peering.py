"""Injection platforms: the PEERING testbed and the research network.

The paper injects announcements from two points: the PEERING testbed
(hundreds of peers via route servers at ten PoPs, strict AUP: only own
prefixes, correct origin ASN, no hijacking) and an experimental research
network (one physical location, two upstreams, one of which propagates
communities).  :func:`attach_peering_testbed` and
:func:`attach_research_network` graft equivalent ASes onto a generated
topology, and :class:`InjectionPlatform` enforces the AUP when
announcing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bgp.community import CommunitySet
from repro.bgp.prefix import Prefix
from repro.exceptions import AupViolationError, TopologyError
from repro.policy.community_policy import ForwardAllPolicy, StripAllPolicy
from repro.routing.engine import BgpSimulator, SimulationReport
from repro.topology.asys import AsRole, AutonomousSystem
from repro.topology.topology import Topology
from repro.utils.rand import DeterministicRng

#: The real PEERING testbed ASN, reused for recognisability.
PEERING_ASN = 47065
RESEARCH_NETWORK_ASN = 64496


@dataclass
class InjectionPlatform:
    """An AS under the experimenter's control, with an acceptable-use policy."""

    name: str
    asn: int
    allocated_prefixes: list[Prefix] = field(default_factory=list)
    #: Whether the AUP allows announcing prefixes outside the allocation
    #: (PEERING: no; the research network: yes, with coordination).
    allows_hijack: bool = False
    upstream_asns: list[int] = field(default_factory=list)
    #: Cached allocation trie, fingerprinted by the full allocation tuple
    #: (the list is tiny) so any mutation rebuilds it.
    _allocation_cache: "tuple[tuple, object] | None" = field(
        default=None, init=False, repr=False, compare=False
    )

    def owns(self, prefix: Prefix) -> bool:
        """True if the prefix is inside the platform's allocation.

        Trie-backed (``LpmTable.covering``): the AUP check runs once per
        announced prefix, which for batched multi-prefix announcements
        used to mean a full scan of the allocation list per prefix.
        """
        from repro.net.lpm import cached_table

        self._allocation_cache, table = cached_table(
            self._allocation_cache,
            tuple(self.allocated_prefixes),
            ((own, self.asn) for own in self.allocated_prefixes),
        )
        return bool(table.covering(prefix))

    def _check_aup(self, prefix: Prefix, hijack: bool) -> None:
        """Raise :class:`AupViolationError` if announcing ``prefix`` violates the AUP."""
        if self.owns(prefix):
            return
        if not hijack:
            raise AupViolationError(
                f"{self.name} does not own {prefix}; pass hijack=True only where permitted"
            )
        if not self.allows_hijack:
            raise AupViolationError(
                f"the AUP of {self.name} forbids announcing prefixes outside its allocation"
            )

    def announce(
        self,
        simulator: BgpSimulator,
        prefix: Prefix,
        communities: CommunitySet | None = None,
        hijack: bool = False,
        spoofed_origin_asn: int | None = None,
    ) -> SimulationReport:
        """Announce a prefix from the platform, enforcing the AUP.

        ``hijack=True`` must be set explicitly when announcing address
        space outside the allocation; it raises
        :class:`AupViolationError` on platforms that forbid it.
        """
        self._check_aup(prefix, hijack)
        if spoofed_origin_asn is not None and not self.allows_hijack:
            raise AupViolationError(f"the AUP of {self.name} forbids origin spoofing")
        return simulator.announce(
            self.asn, prefix, communities=communities, spoofed_origin_asn=spoofed_origin_asn
        )

    def announce_many(
        self,
        simulator: BgpSimulator,
        announcements: list[tuple[Prefix, CommunitySet | None]],
        hijack: bool = False,
    ) -> SimulationReport:
        """Announce many ``(prefix, communities)`` pairs in one batched pass.

        The AUP is enforced per prefix *before* anything is originated,
        so a violating batch leaves the simulation untouched.
        """
        announcements = list(announcements)
        for prefix, _communities in announcements:
            self._check_aup(prefix, hijack)
        return simulator.announce_many(
            (self.asn, prefix, communities) for prefix, communities in announcements
        )

    def withdraw(self, simulator: BgpSimulator, prefix: Prefix) -> SimulationReport:
        """Withdraw a previously announced prefix."""
        return simulator.withdraw(self.asn, prefix)

    def withdraw_many(
        self, simulator: BgpSimulator, prefixes: list[Prefix]
    ) -> SimulationReport:
        """Withdraw many previously announced prefixes in one batched pass."""
        return simulator.withdraw_many((self.asn, prefix) for prefix in prefixes)


def _next_free_slash20(topology: Topology) -> int:
    """Find an unused /20 network for the platform allocation."""
    used = [p.network + (1 << (32 - p.length)) for p in topology.originated_prefixes() if p.is_ipv4]
    highest = max(used) if used else (1 << 24)
    # Round up to the next /20 boundary.
    block = 1 << 12
    return ((highest + block - 1) // block) * block


def attach_peering_testbed(
    topology: Topology,
    upstream_count: int = 10,
    seed: int = 13,
    asn: int = PEERING_ASN,
) -> InjectionPlatform:
    """Attach a PEERING-like multi-PoP stub AS to the topology.

    The testbed becomes a customer of ``upstream_count`` transit ASes
    (its "points of presence"), receives a /20 allocation, and forwards
    communities on every session (the platform explicitly supports
    setting arbitrary communities).
    """
    if asn in topology:
        raise TopologyError(f"AS{asn} already exists in the topology")
    rng = DeterministicRng(seed).child("peering")
    transit_pool = [a.asn for a in topology.transit_ases()]
    if not transit_pool:
        raise TopologyError("topology has no transit ASes to attach the testbed to")
    upstreams = rng.sample(transit_pool, min(upstream_count, len(transit_pool)))
    testbed = AutonomousSystem(
        asn=asn,
        name="PEERING",
        role=AsRole.STUB,
        propagation_policy=ForwardAllPolicy(),
    )
    allocation = Prefix.ipv4(_next_free_slash20(topology), 20)
    testbed.add_prefix(allocation)
    topology.add_as(testbed)
    for upstream in upstreams:
        topology.add_customer_link(upstream, asn)
    return InjectionPlatform(
        name="PEERING",
        asn=asn,
        allocated_prefixes=[allocation],
        allows_hijack=False,
        upstream_asns=sorted(upstreams),
    )


def attach_research_network(
    topology: Topology,
    seed: int = 17,
    asn: int = RESEARCH_NETWORK_ASN,
    permissioned_hijack_space: Prefix | None = None,
) -> InjectionPlatform:
    """Attach the research-network injection point: two upstreams, one strips communities.

    ``permissioned_hijack_space`` models the address block the paper had
    explicit permission to hijack; announcing it still requires
    ``hijack=True`` but does not violate the platform AUP.
    """
    if asn in topology:
        raise TopologyError(f"AS{asn} already exists in the topology")
    rng = DeterministicRng(seed).child("research-network")
    transit_pool = [a.asn for a in topology.transit_ases()]
    if len(transit_pool) < 2:
        raise TopologyError("topology needs at least two transit ASes")
    upstreams = rng.sample(transit_pool, 2)
    # Only one of the two upstream providers propagates communities.
    topology.get_as(upstreams[0]).propagation_policy = ForwardAllPolicy()
    topology.get_as(upstreams[1]).propagation_policy = StripAllPolicy()
    network = AutonomousSystem(
        asn=asn,
        name="research-network",
        role=AsRole.STUB,
        propagation_policy=ForwardAllPolicy(),
    )
    allocation = Prefix.ipv4(_next_free_slash20(topology) + (1 << 16), 20)
    network.add_prefix(allocation)
    topology.add_as(network)
    for upstream in upstreams:
        topology.add_customer_link(upstream, asn)
    platform = InjectionPlatform(
        name="research-network",
        asn=asn,
        allocated_prefixes=[allocation],
        allows_hijack=True,
        upstream_asns=sorted(upstreams),
    )
    if permissioned_hijack_space is not None:
        platform.allocated_prefixes.append(permissioned_hijack_space)
    return platform
