"""Propagation checking with a benign community (Section 7.2).

Before running any attack, the paper announces a prefix tagged with a
*benign* community — the injection point's own ASN with an unused value
— and checks at the route collectors which transit providers forward the
prefix with the community intact.  The same procedure runs here over the
simulated Internet, for both injection platforms.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bgp.community import Community, CommunitySet
from repro.bgp.prefix import Prefix
from repro.collectors.platform import CollectorDeployment
from repro.experiments import Experiment, ExperimentContext, ExperimentResult, register
from repro.routing.engine import BgpSimulator
from repro.topology.topology import Topology
from repro.wild.peering import InjectionPlatform

#: A low-order community value not observed in the wild (the paper uses one too).
BENIGN_COMMUNITY_VALUE = 4242


@dataclass
class PropagationCheckResult:
    """Which ASes forwarded the benign community, as seen at the collectors."""

    platform_name: str
    benign_community: Community
    test_prefix: Prefix
    #: Transit ASes seen forwarding the prefix *with* the community intact.
    forwarding_transit_ases: set[int] = field(default_factory=set)
    #: All transit/origin ASes seen on any path towards the test prefix.
    ases_on_paths: set[int] = field(default_factory=set)
    #: Collector peers at which the community was observed.
    observing_peers: set[int] = field(default_factory=set)

    @property
    def forwarding_count(self) -> int:
        """Number of transit providers forwarding the community."""
        return len(self.forwarding_transit_ases)

    @property
    def coverage_fraction(self) -> float:
        """Fraction of on-path ASes seen forwarding the community."""
        if not self.ases_on_paths:
            return 0.0
        return len(self.forwarding_transit_ases) / len(self.ases_on_paths)


def run_propagation_check(
    topology: Topology,
    platform: InjectionPlatform,
    deployment: CollectorDeployment,
    community_value: int = BENIGN_COMMUNITY_VALUE,
    harvest_shards: int | str | None = None,
) -> PropagationCheckResult:
    """Announce a benign-community-tagged prefix from ``platform`` and measure propagation.

    ``harvest_shards`` fans the collector harvest over worker processes
    (see :mod:`repro.collectors.harvest`); the observations are
    byte-identical to a serial harvest.
    """
    asn_part = platform.asn if platform.asn <= 0xFFFF else 0
    benign = Community(asn_part, community_value)
    test_prefix = platform.allocated_prefixes[0].subprefix(24, 0)

    simulator = BgpSimulator(topology)
    try:
        platform.announce(simulator, test_prefix, communities=CommunitySet.of(benign))
        archive = deployment.collect_from_simulator(simulator, shards=harvest_shards)
    finally:
        simulator.close()

    result = PropagationCheckResult(
        platform_name=platform.name, benign_community=benign, test_prefix=test_prefix
    )
    for observation in archive:
        if observation.prefix != test_prefix:
            continue
        path = observation.path_without_prepending
        # ASes on the announcement path excluding the injection AS itself.
        result.ases_on_paths.update(a for a in path if a != platform.asn)
        if benign in observation.communities:
            result.observing_peers.add(observation.peer_asn)
            # Every AS between the injection point and the collector peer
            # (inclusive of the peer) relayed the community.
            if platform.asn in path:
                injection_index = path.index(platform.asn)
                for index in range(0, injection_index):
                    result.forwarding_transit_ases.add(path[index])
    return result


@register("propagation-check")
class PropagationCheckExperiment(Experiment):
    """The Section 7.2 propagation check, run for both injection platforms."""

    description = "benign-community propagation check from both injection platforms"
    paper_section = "Section 7.2"
    default_topology = {"tier1_count": 3, "transit_count": 30, "stub_count": 120}
    default_platforms = ("peering", "research", "collectors")
    default_params = {"community_value": BENIGN_COMMUNITY_VALUE}

    def execute(self, ctx: ExperimentContext) -> dict:
        deployment = ctx.platform("collectors")
        checks: list[dict] = []
        # The research network first, then PEERING — the order the paper
        # (and the legacy CLI subcommand) reports them in.
        for platform in (ctx.platform("research"), ctx.platform("peering")):
            check = run_propagation_check(
                ctx.require_topology(),
                platform,
                deployment,
                community_value=self.int_param("community_value", 0),
                harvest_shards=self.propagation_shards(),
            )
            ctx.scratch[platform.name] = check
            checks.append(
                {
                    "platform": check.platform_name,
                    "benign_community": str(check.benign_community),
                    "test_prefix": str(check.test_prefix),
                    "forwarding_count": check.forwarding_count,
                    "ases_on_paths": len(check.ases_on_paths),
                    "observing_peers": len(check.observing_peers),
                    "coverage_fraction": check.coverage_fraction,
                }
            )
        return {"checks": checks}

    def validate(self, ctx: ExperimentContext, metrics: dict) -> bool:
        # The announced prefix must at least have reached the collectors
        # from every platform; forwarding zero communities is a finding,
        # an empty path set is a broken run.
        return all(check["ases_on_paths"] > 0 for check in metrics["checks"])

    def render_text(self, result: ExperimentResult) -> str:
        return "\n".join(
            f"{check['platform']}: benign community {check['benign_community']} on "
            f"{check['test_prefix']} forwarded by {check['forwarding_count']} transit "
            f"providers (of {check['ases_on_paths']} on-path ASes)"
            for check in result.metrics["checks"]
        )
