"""The automated blackhole-community sweep (Section 7.6).

For every community in the verified blackhole list the sweep:

1. advertises the experiment prefix *without* communities;
2. probes it from the fixed set of Atlas vantage points;
3. advertises the prefix *with* the community attached;
4. re-probes from the same vantage points;

and records which communities caused at least one previously responsive
vantage point to become unresponsive.  A confirmation pass repeats the
sweep; because the simulation is deterministic the confirmation matches
exactly, just as the paper's two rounds did.  Finally, traceroutes
lower-bound how many AS hops the acted-upon community traversed by
locating the community's target AS on the forwarding path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bgp.community import BLACKHOLE, Community, CommunitySet
from repro.bgp.prefix import Prefix
from repro.dataplane.forwarding import DataPlane
from repro.datasets.giotsas import BlackholeCommunityList
from repro.experiments import Experiment, ExperimentContext, ExperimentResult, register
from repro.probing.atlas import AtlasPlatform
from repro.routing.engine import BgpSimulator
from repro.topology.topology import Topology
from repro.wild.peering import InjectionPlatform


@dataclass
class CommunitySweepOutcome:
    """The result of sweeping one blackhole community."""

    community: Community
    target_asn: int
    probes_before: int
    probes_after: int
    probes_lost: set[int] = field(default_factory=set)
    #: AS-hop distance of the community target from the injection point on the
    #: affected probes' forwarding paths (None when the target is not on them).
    target_hops: int | None = None

    @property
    def induced_blackholing(self) -> bool:
        """True if at least one vantage point lost reachability."""
        return bool(self.probes_lost)


@dataclass
class SweepResult:
    """Aggregate results of the full sweep."""

    outcomes: list[CommunitySweepOutcome] = field(default_factory=list)
    probe_count: int = 0
    confirmed: bool = False

    def effective_communities(self) -> list[CommunitySweepOutcome]:
        """Outcomes where the community induced blackholing somewhere."""
        return [o for o in self.outcomes if o.induced_blackholing]

    def effective_fraction(self) -> float:
        """Fraction of swept communities that induced blackholing (8.1 % in the paper)."""
        if not self.outcomes:
            return 0.0
        return len(self.effective_communities()) / len(self.outcomes)

    def affected_probes(self) -> set[int]:
        """Vantage points affected by at least one community."""
        affected: set[int] = set()
        for outcome in self.effective_communities():
            affected |= outcome.probes_lost
        return affected

    def affected_probe_fraction(self) -> float:
        """Fraction of vantage points affected by at least one community (24 % in the paper)."""
        if not self.probe_count:
            return 0.0
        return len(self.affected_probes()) / self.probe_count

    def direct_peer_pairs(self) -> int:
        """Community/path pairs where the target is the injection point's direct peer."""
        return sum(1 for o in self.effective_communities() if o.target_hops == 1)

    def multi_hop_pairs(self) -> int:
        """Community/path pairs where the target is two or more hops away."""
        return sum(
            1 for o in self.effective_communities() if o.target_hops is not None and o.target_hops >= 2
        )

    def offpath_pairs(self) -> int:
        """Pairs where the target AS is not on the affected forwarding paths at all."""
        return sum(1 for o in self.effective_communities() if o.target_hops is None)


class BlackholeSweep:
    """Runs the Section 7.6 sweep over the verified blackhole community list."""

    def __init__(
        self,
        topology: Topology,
        platform: InjectionPlatform,
        atlas: AtlasPlatform,
        blackhole_list: BlackholeCommunityList,
        include_well_known: bool = True,
        shards: int | str | None = None,
    ):
        self.topology = topology
        self.platform = platform
        self.atlas = atlas
        self.blackhole_list = blackhole_list
        self.include_well_known = include_well_known
        #: Propagation shard policy threaded into every simulator the
        #: sweep builds (None = the process default; the sweep's own
        #: announcements are single-prefix, so this matters when the
        #: sweep runs over a pre-seeded, fully originated topology).
        self.shards = shards
        self.experiment_prefix = platform.allocated_prefixes[0].subprefix(24, 2)

    def _simulator(self) -> BgpSimulator:
        """A fresh simulator over the sweep topology with the sweep's shard policy."""
        return BgpSimulator(self.topology, shards=self.shards)

    def _baseline_plane(self) -> DataPlane:
        """The clean (untagged) forwarding state, shared by every sweep step.

        The pre-attack state is identical for every swept community, so
        it is simulated once per :meth:`run` instead of once per
        community — the traceroute lower-bounds reuse it directly.
        """
        clean = self._simulator()
        self.platform.announce(clean, self.experiment_prefix)
        return DataPlane(clean)

    def _sweep_one(
        self, community: Community, target_asn: int, baseline_plane: DataPlane
    ) -> CommunitySweepOutcome:
        """Run the four-step protocol for one community."""
        simulator = self._simulator()
        # Step 1+2: plain announcement, baseline probing.
        self.platform.announce(simulator, self.experiment_prefix)
        dataplane = DataPlane(simulator)
        before = self.atlas.measure(dataplane, self.experiment_prefix)
        # Step 3+4: tagged announcement, re-probe the same vantage points.
        # The report's dirty set confines the FIB refresh to changed routers.
        report = self.platform.announce(
            simulator, self.experiment_prefix, communities=CommunitySet.of(community)
        )
        dataplane.rebuild(report)
        after = self.atlas.measure(dataplane, self.experiment_prefix, with_traceroute=True)
        lost, _gained = self.atlas.compare(before, after)

        target_hops: int | None = None
        if lost:
            # Lower-bound the distance of the community target using the
            # forwarding path of an affected probe before the blackholing.
            probe_asn = self._probe_asn(sorted(lost)[0])
            trace = baseline_plane.traceroute(
                probe_asn, self.experiment_prefix.host(), self.experiment_prefix.family
            )
            if target_asn in trace.path:
                # Hops between the target and the injection point on that path.
                target_hops = len(trace.path) - 1 - trace.path.index(target_asn)
        return CommunitySweepOutcome(
            community=community,
            target_asn=target_asn,
            probes_before=len(before.responsive_probes()),
            probes_after=len(after.responsive_probes()),
            probes_lost=lost,
            target_hops=target_hops,
        )

    def _probe_asn(self, probe_id: int) -> int:
        for vantage_point in self.atlas.vantage_points:
            if vantage_point.probe_id == probe_id:
                return vantage_point.asn
        raise KeyError(f"unknown probe id {probe_id}")

    def run(self, confirm: bool = True) -> SweepResult:
        """Sweep every verified community (optionally confirming with a second pass)."""
        records = list(self.blackhole_list.verified())
        result = SweepResult(probe_count=len(self.atlas.vantage_points))
        baseline_plane = self._baseline_plane()
        for record in records:
            result.outcomes.append(
                self._sweep_one(record.community, record.target_asn, baseline_plane)
            )
        if self.include_well_known:
            result.outcomes.append(self._sweep_one(BLACKHOLE, 0, baseline_plane))
        if confirm:
            second = [
                self._sweep_one(record.community, record.target_asn, baseline_plane)
                for record in records
            ]
            first_effective = {
                o.community
                for o in result.outcomes
                if o.induced_blackholing and o.community != BLACKHOLE
            }
            second_effective = {o.community for o in second if o.induced_blackholing}
            result.confirmed = first_effective == second_effective
        return result


@register("blackhole-sweep")
class BlackholeSweepExperiment(Experiment):
    """The Section 7.6 sweep over the verified blackhole community list."""

    description = "automated sweep of the verified blackhole community list"
    paper_section = "Section 7.6"
    default_topology = {"tier1_count": 3, "transit_count": 25, "stub_count": 80}
    default_platforms = ("peering", "atlas")
    default_params = {
        "probes": 60,
        "confirm": True,
        "include_well_known": True,
        "inferred_count": 10,
    }

    def execute(self, ctx: ExperimentContext) -> dict:
        from repro.datasets.giotsas import build_blackhole_list

        blackhole_list = build_blackhole_list(
            ctx.require_topology(),
            inferred_count=self.int_param("inferred_count", 0),
            seed=ctx.spec.seed,
        )
        sweep = BlackholeSweep(
            ctx.require_topology(),
            ctx.platform("peering"),
            ctx.platform("atlas"),
            blackhole_list,
            include_well_known=bool(self.param("include_well_known")),
        )
        outcome = sweep.run(confirm=bool(self.param("confirm")))
        ctx.scratch["sweep"] = outcome
        effective = outcome.effective_communities()
        return {
            "communities_swept": len(outcome.outcomes),
            "effective_communities": len(effective),
            "effective_fraction": outcome.effective_fraction(),
            "affected_probes": len(outcome.affected_probes()),
            "probe_count": outcome.probe_count,
            "affected_probe_fraction": outcome.affected_probe_fraction(),
            "confirmed": outcome.confirmed,
            "direct_peer_pairs": outcome.direct_peer_pairs(),
            "multi_hop_pairs": outcome.multi_hop_pairs(),
            "offpath_pairs": outcome.offpath_pairs(),
            "outcomes": [
                {
                    "community": str(o.community),
                    "target_asn": o.target_asn,
                    "probes_lost": len(o.probes_lost),
                    "target_hops": o.target_hops,
                }
                for o in effective
            ],
        }

    def validate(self, ctx: ExperimentContext, metrics: dict) -> bool:
        # A requested confirmation pass that disagrees with the first
        # pass would mean the simulation is not deterministic.
        return metrics["confirmed"] or not bool(self.param("confirm"))

    def render_text(self, result: ExperimentResult) -> str:
        metrics = result.metrics
        return "\n".join(
            [
                f"communities swept:        {metrics['communities_swept']}",
                f"inducing blackholing:     {metrics['effective_communities']}"
                f" ({100 * metrics['effective_fraction']:.1f}%)",
                f"vantage points affected:  {metrics['affected_probes']} of "
                f"{metrics['probe_count']} ({100 * metrics['affected_probe_fraction']:.1f}%)",
                f"confirmation pass agrees: {metrics['confirmed']}",
            ]
        )
