"""The Section 7.3 remotely-triggered-blackholing experiment over a generated Internet.

The experiment follows the paper's protocol step by step:

1. use the propagation check to find a community-propagating path to a
   provider that offers RTBH and sits at least two AS hops from the
   injection point;
2. announce a /24 sub-prefix of the platform's allocation tagged with
   the target's blackhole community (the non-hijack variant), or a /24
   from address space we have permission to hijack (after registering it
   in the IRR, for the hijack variant);
3. validate on the control plane (target's looking glass shows the
   null next hop) and on the data plane (Atlas probes that could reach
   the prefix before can no longer).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bgp.community import BLACKHOLE, Community, CommunitySet
from repro.bgp.prefix import Prefix
from repro.dataplane.forwarding import DataPlane
from repro.exceptions import AttackError
from repro.experiments import Experiment, ExperimentContext, ExperimentResult, register
from repro.policy.filters import IrrDatabase
from repro.probing.atlas import AtlasPlatform
from repro.probing.looking_glass import LookingGlass
from repro.routing.engine import BgpSimulator
from repro.topology.graph import shortest_valley_free_path
from repro.topology.topology import Topology
from repro.wild.peering import InjectionPlatform


@dataclass
class RtbhWildResult:
    """Everything the Section 7.3 experiment records."""

    target_asn: int
    target_hops_from_injection: int
    attack_prefix: Prefix
    hijack: bool
    community: Community
    accepted_at_target: bool = False
    target_next_hop: str = ""
    probes_reachable_before: int = 0
    probes_reachable_after: int = 0
    probes_lost: set[int] = field(default_factory=set)
    irr_updated: bool = False

    @property
    def succeeded(self) -> bool:
        """True if the target blackholes the prefix or the data plane lost reachability."""
        return self.target_next_hop == "null0" or bool(self.probes_lost)


class RtbhWildExperiment:
    """Drive the RTBH experiment from an injection platform over a generated topology."""

    def __init__(
        self,
        topology: Topology,
        platform: InjectionPlatform,
        atlas: AtlasPlatform,
        irr: IrrDatabase | None = None,
        min_hops_to_target: int = 2,
    ):
        self.topology = topology
        self.platform = platform
        self.atlas = atlas
        self.irr = irr or IrrDatabase()
        self.min_hops_to_target = min_hops_to_target

    # ------------------------------------------------------------ target choice
    def find_target(self) -> tuple[int, int]:
        """Find an RTBH-offering provider at least ``min_hops_to_target`` hops away.

        Returns (target ASN, hop distance).  Raises :class:`AttackError`
        when no such provider exists (e.g. every candidate strips
        communities on the way).
        """
        candidates: list[tuple[int, int]] = []
        for asys in self.topology.transit_ases():
            if asys.services is None or not asys.services.blackhole_communities():
                continue
            path = shortest_valley_free_path(self.topology, asys.asn, self.platform.asn)
            if path is None:
                continue
            hops = len(path) - 1
            if hops >= self.min_hops_to_target:
                candidates.append((asys.asn, hops))
        if not candidates:
            raise AttackError("no RTBH-offering provider reachable at the required distance")
        # Prefer the closest qualifying target (the paper picks one two hops away).
        candidates.sort(key=lambda item: (item[1], item[0]))
        return candidates[0]

    # ---------------------------------------------------------------- protocol
    def run(self, use_hijack: bool = False, hijack_space: Prefix | None = None) -> RtbhWildResult:
        """Run the experiment; ``use_hijack`` selects the Figure 7(b)-style variant."""
        target_asn, hops = self.find_target()
        target_services = self.topology.get_as(target_asn).services
        assert target_services is not None  # guaranteed by find_target
        community = target_services.blackhole_communities()[0]

        if use_hijack:
            if hijack_space is None:
                raise AttackError("the hijack variant needs the permissioned hijack space")
            attack_prefix = hijack_space.subprefix(24, 0) if hijack_space.length < 24 else hijack_space
        else:
            attack_prefix = self.platform.allocated_prefixes[0].subprefix(24, 1)

        irr_updated = False
        if use_hijack:
            # The research network's provider validates against the IRR, so the
            # experiment first registers a route object for the hijacked space.
            self.irr.register(attack_prefix, self.platform.asn)
            irr_updated = True

        # Step 1: announce without the blackhole community, measure the baseline.
        simulator = BgpSimulator(self.topology)
        self.platform.announce(simulator, attack_prefix, hijack=use_hijack)
        dataplane = DataPlane(simulator)
        before = self.atlas.measure(dataplane, attack_prefix)

        # Step 2: re-announce with the blackhole community attached; patch
        # only the FIB entries the re-announcement actually changed.
        communities = CommunitySet.of(community, BLACKHOLE)
        report = self.platform.announce(
            simulator, attack_prefix, communities=communities, hijack=use_hijack
        )
        dataplane.rebuild(report)
        after = self.atlas.measure(dataplane, attack_prefix)
        lost, _gained = self.atlas.compare(before, after)

        looking_glass = LookingGlass(simulator, target_asn)
        entry = looking_glass.show_route(attack_prefix)
        return RtbhWildResult(
            target_asn=target_asn,
            target_hops_from_injection=hops,
            attack_prefix=attack_prefix,
            hijack=use_hijack,
            community=community,
            accepted_at_target=entry is not None,
            target_next_hop=entry.next_hop if entry is not None else "no route",
            probes_reachable_before=len(before.responsive_probes()),
            probes_reachable_after=len(after.responsive_probes()),
            probes_lost=lost,
            irr_updated=irr_updated,
        )


@register("rtbh-wild")
class WildRtbhExperiment(Experiment):
    """The Section 7.3 RTBH protocol over a generated Internet.

    Builds the topology from the spec, attaches the PEERING-like
    injection platform and the Atlas probes, then drives
    :class:`RtbhWildExperiment` end to end.  The hijack variant
    additionally carves the permissioned hijack space out of the
    research network's allocation and registers it in the IRR.
    """

    description = "RTBH from an injection platform over a generated Internet"
    paper_section = "Section 7.3"
    default_topology = {"tier1_count": 3, "transit_count": 25, "stub_count": 90}
    default_platforms = ("peering", "atlas")
    default_params = {"probes": 100, "hijack": False, "min_hops_to_target": 2}

    @classmethod
    def default_spec(cls, seed=None, scale=None, **params):
        """The hijack variant runs from the research network (the only
        platform whose AUP permits hijacking), and the spec records it."""
        spec = super().default_spec(seed=seed, scale=scale, **params)
        if spec.params.get("hijack"):
            spec = spec.replace(platforms=("research", "atlas"))
        return spec

    def attach_platform(self, ctx: ExperimentContext, platform_name: str) -> None:
        if platform_name == "research" and bool(self.param("hijack")):
            # Attach with the permissioned hijack space the paper had
            # explicit permission to announce (registered in the IRR later).
            from repro.wild.peering import attach_research_network

            hijack_space = Prefix.from_string("203.0.112.0/20")
            ctx.platforms[platform_name] = attach_research_network(
                ctx.require_topology(), permissioned_hijack_space=hijack_space
            )
            ctx.scratch["hijack_space"] = hijack_space
        else:
            super().attach_platform(ctx, platform_name)

    def execute(self, ctx: ExperimentContext) -> dict:
        use_hijack = bool(self.param("hijack"))
        platform = ctx.platform("research" if use_hijack else "peering")
        experiment = RtbhWildExperiment(
            ctx.require_topology(),
            platform,
            ctx.platform("atlas"),
            min_hops_to_target=self.int_param("min_hops_to_target", 0),
        )
        outcome = experiment.run(
            use_hijack=use_hijack, hijack_space=ctx.scratch.get("hijack_space")
        )
        ctx.scratch["outcome"] = outcome
        return {
            "succeeded": outcome.succeeded,
            "platform": platform.name,
            "target_asn": outcome.target_asn,
            "target_hops_from_injection": outcome.target_hops_from_injection,
            "attack_prefix": str(outcome.attack_prefix),
            "hijack": outcome.hijack,
            "community": str(outcome.community),
            "accepted_at_target": outcome.accepted_at_target,
            "target_next_hop": outcome.target_next_hop,
            "probes_reachable_before": outcome.probes_reachable_before,
            "probes_reachable_after": outcome.probes_reachable_after,
            "probes_lost": len(outcome.probes_lost),
            "irr_updated": outcome.irr_updated,
        }

    def validate(self, ctx: ExperimentContext, metrics: dict) -> bool:
        return bool(metrics["succeeded"])

    def render_text(self, result: ExperimentResult) -> str:
        metrics = result.metrics
        return "\n".join(
            [
                f"RTBH in the wild from {metrics['platform']}"
                f" ({'hijack' if metrics['hijack'] else 'no hijack'})",
                f"  community target:       AS{metrics['target_asn']}"
                f" ({metrics['target_hops_from_injection']} AS hops away)",
                f"  blackhole community:    {metrics['community']}",
                f"  announced prefix:       {metrics['attack_prefix']}",
                f"  target looking glass:   {metrics['target_next_hop']}",
                f"  probes reaching before: {metrics['probes_reachable_before']}",
                f"  probes reaching after:  {metrics['probes_reachable_after']}",
                f"  attack succeeded:       {metrics['succeeded']}",
            ]
        )
