"""BGP UPDATE message wire encoding and decoding (RFC 4271 + RFC 1997 + RFC 8092).

The MRT writer embeds full BGP UPDATE messages inside BGP4MP records,
and the MRT reader decodes them back; this module implements that wire
format.  Only the attributes the study needs are given first-class
treatment; unrecognised attributes round-trip as opaque bytes so no
information is silently dropped.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.bgp.aspath import ASPath, ASPathSegment, SegmentType
from repro.bgp.attributes import AttributeTypeCode, Origin, PathAttributes
from repro.bgp.community import Community, CommunitySet, LargeCommunity
from repro.bgp.prefix import AddressFamily, Prefix
from repro.exceptions import MessageError

#: BGP message header marker: 16 bytes of 0xFF.
BGP_MARKER = b"\xff" * 16
BGP_HEADER_LENGTH = 19
BGP_MAX_MESSAGE_LENGTH = 4096

#: BGP message types.
MESSAGE_TYPE_OPEN = 1
MESSAGE_TYPE_UPDATE = 2
MESSAGE_TYPE_NOTIFICATION = 3
MESSAGE_TYPE_KEEPALIVE = 4

#: Attribute flag bits.
FLAG_OPTIONAL = 0x80
FLAG_TRANSITIVE = 0x40
FLAG_PARTIAL = 0x20
FLAG_EXTENDED_LENGTH = 0x10


@dataclass
class BgpUpdate:
    """A decoded BGP UPDATE: withdrawn prefixes, attributes, announced prefixes."""

    announced: list[Prefix] = field(default_factory=list)
    withdrawn: list[Prefix] = field(default_factory=list)
    attributes: PathAttributes = field(default_factory=PathAttributes)
    unknown_attributes: list[tuple[int, int, bytes]] = field(default_factory=list)

    def is_withdrawal_only(self) -> bool:
        """True if the update withdraws prefixes and announces none."""
        return bool(self.withdrawn) and not self.announced


def _encode_prefix_nlri(prefix: Prefix) -> bytes:
    """Encode one prefix in NLRI form: length byte + minimal network bytes."""
    byte_count = (prefix.length + 7) // 8
    bits = prefix.family.bits
    network_bytes = prefix.network.to_bytes(bits // 8, "big")[:byte_count]
    return bytes([prefix.length]) + network_bytes


def _decode_prefix_nlri(data: bytes, offset: int, family: AddressFamily) -> tuple[Prefix, int]:
    """Decode one NLRI-form prefix starting at ``offset``; return (prefix, new offset)."""
    if offset >= len(data):
        raise MessageError("truncated NLRI: missing length byte")
    length = data[offset]
    offset += 1
    byte_count = (length + 7) // 8
    if offset + byte_count > len(data):
        raise MessageError("truncated NLRI: missing prefix bytes")
    raw = data[offset:offset + byte_count]
    offset += byte_count
    total_bytes = family.bits // 8
    padded = raw + b"\x00" * (total_bytes - byte_count)
    network = int.from_bytes(padded, "big")
    return Prefix(family, network, length), offset


def _encode_attribute(type_code: int, flags: int, payload: bytes) -> bytes:
    """Encode one path attribute with automatic extended-length handling."""
    if len(payload) > 0xFFFF:
        raise MessageError(f"attribute {type_code} payload too long ({len(payload)} bytes)")
    if len(payload) > 0xFF:
        flags |= FLAG_EXTENDED_LENGTH
        header = struct.pack("!BBH", flags, type_code, len(payload))
    else:
        flags &= ~FLAG_EXTENDED_LENGTH
        header = struct.pack("!BBB", flags, type_code, len(payload))
    return header + payload


def _encode_as_path(as_path: ASPath, as4: bool = True) -> bytes:
    """Encode the AS_PATH attribute payload (4-byte ASNs by default)."""
    fmt = "!I" if as4 else "!H"
    payload = b""
    for segment in as_path.segments:
        asns = segment.asns
        # A segment can hold at most 255 ASNs; split longer sequences.
        for start in range(0, len(asns), 255):
            chunk = asns[start:start + 255]
            payload += struct.pack("!BB", int(segment.segment_type), len(chunk))
            for asn in chunk:
                if not as4 and asn > 0xFFFF:
                    raise MessageError(f"ASN {asn} does not fit in a 2-byte AS_PATH")
                payload += struct.pack(fmt, asn)
    return payload


def _decode_as_path(payload: bytes, as4: bool = True) -> ASPath:
    """Decode an AS_PATH attribute payload."""
    width = 4 if as4 else 2
    fmt = "!I" if as4 else "!H"
    segments: list[ASPathSegment] = []
    offset = 0
    while offset < len(payload):
        if offset + 2 > len(payload):
            raise MessageError("truncated AS_PATH segment header")
        segment_type, count = payload[offset], payload[offset + 1]
        offset += 2
        needed = count * width
        if offset + needed > len(payload):
            raise MessageError("truncated AS_PATH segment body")
        asns = tuple(
            struct.unpack(fmt, payload[offset + i * width:offset + (i + 1) * width])[0]
            for i in range(count)
        )
        offset += needed
        try:
            seg_type = SegmentType(segment_type)
        except ValueError as exc:
            raise MessageError(f"unknown AS_PATH segment type {segment_type}") from exc
        segments.append(ASPathSegment(seg_type, asns))
    return ASPath(segments)


def encode_update(update: BgpUpdate, family: AddressFamily = AddressFamily.IPV4) -> bytes:
    """Encode a :class:`BgpUpdate` into a full BGP message (header included)."""
    withdrawn_bytes = b"".join(_encode_prefix_nlri(p) for p in update.withdrawn)
    attrs = update.attributes
    attribute_bytes = b""
    if update.announced:
        attribute_bytes += _encode_attribute(
            AttributeTypeCode.ORIGIN, FLAG_TRANSITIVE, bytes([int(attrs.origin)])
        )
        attribute_bytes += _encode_attribute(
            AttributeTypeCode.AS_PATH, FLAG_TRANSITIVE, _encode_as_path(attrs.as_path)
        )
        attribute_bytes += _encode_attribute(
            AttributeTypeCode.NEXT_HOP,
            FLAG_TRANSITIVE,
            struct.pack("!I", attrs.next_hop & 0xFFFFFFFF),
        )
        if attrs.med is not None:
            attribute_bytes += _encode_attribute(
                AttributeTypeCode.MULTI_EXIT_DISC, FLAG_OPTIONAL, struct.pack("!I", attrs.med)
            )
        if attrs.local_pref is not None:
            attribute_bytes += _encode_attribute(
                AttributeTypeCode.LOCAL_PREF, FLAG_TRANSITIVE, struct.pack("!I", attrs.local_pref)
            )
        if attrs.atomic_aggregate:
            attribute_bytes += _encode_attribute(
                AttributeTypeCode.ATOMIC_AGGREGATE, FLAG_TRANSITIVE, b""
            )
        if attrs.communities:
            payload = b"".join(struct.pack("!I", c.to_int()) for c in attrs.communities)
            attribute_bytes += _encode_attribute(
                AttributeTypeCode.COMMUNITIES, FLAG_OPTIONAL | FLAG_TRANSITIVE, payload
            )
        if attrs.large_communities:
            payload = b"".join(
                struct.pack("!III", lc.global_admin, lc.local_data1, lc.local_data2)
                for lc in sorted(attrs.large_communities)
            )
            attribute_bytes += _encode_attribute(
                AttributeTypeCode.LARGE_COMMUNITIES, FLAG_OPTIONAL | FLAG_TRANSITIVE, payload
            )
    for type_code, flags, payload in update.unknown_attributes:
        attribute_bytes += _encode_attribute(type_code, flags, payload)

    nlri_bytes = b"".join(_encode_prefix_nlri(p) for p in update.announced)
    body = (
        struct.pack("!H", len(withdrawn_bytes))
        + withdrawn_bytes
        + struct.pack("!H", len(attribute_bytes))
        + attribute_bytes
        + nlri_bytes
    )
    total_length = BGP_HEADER_LENGTH + len(body)
    if total_length > BGP_MAX_MESSAGE_LENGTH:
        raise MessageError(f"encoded UPDATE is {total_length} bytes (max {BGP_MAX_MESSAGE_LENGTH})")
    header = BGP_MARKER + struct.pack("!HB", total_length, MESSAGE_TYPE_UPDATE)
    return header + body


def decode_update(data: bytes, family: AddressFamily = AddressFamily.IPV4) -> BgpUpdate:
    """Decode a full BGP UPDATE message (header included) into a :class:`BgpUpdate`."""
    if len(data) < BGP_HEADER_LENGTH:
        raise MessageError(f"message too short ({len(data)} bytes) for a BGP header")
    marker, length, message_type = data[:16], struct.unpack("!H", data[16:18])[0], data[18]
    if marker != BGP_MARKER:
        raise MessageError("invalid BGP marker")
    if length != len(data):
        raise MessageError(f"header length {length} does not match data length {len(data)}")
    if message_type != MESSAGE_TYPE_UPDATE:
        raise MessageError(f"not an UPDATE message (type {message_type})")

    body = data[BGP_HEADER_LENGTH:]
    if len(body) < 2:
        raise MessageError("truncated UPDATE: missing withdrawn routes length")
    withdrawn_length = struct.unpack("!H", body[:2])[0]
    offset = 2
    if offset + withdrawn_length > len(body):
        raise MessageError("truncated UPDATE: withdrawn routes overflow")
    withdrawn: list[Prefix] = []
    end = offset + withdrawn_length
    while offset < end:
        prefix, offset = _decode_prefix_nlri(body, offset, family)
        withdrawn.append(prefix)

    if offset + 2 > len(body):
        raise MessageError("truncated UPDATE: missing path attribute length")
    attribute_length = struct.unpack("!H", body[offset:offset + 2])[0]
    offset += 2
    if offset + attribute_length > len(body):
        raise MessageError("truncated UPDATE: path attributes overflow")
    attribute_end = offset + attribute_length

    origin = Origin.IGP
    as_path = ASPath()
    next_hop = 0
    med: int | None = None
    local_pref: int | None = None
    atomic_aggregate = False
    communities = CommunitySet()
    large_communities: list[LargeCommunity] = []
    unknown: list[tuple[int, int, bytes]] = []

    while offset < attribute_end:
        if offset + 2 > attribute_end:
            raise MessageError("truncated path attribute header")
        flags, type_code = body[offset], body[offset + 1]
        offset += 2
        if flags & FLAG_EXTENDED_LENGTH:
            if offset + 2 > attribute_end:
                raise MessageError("truncated extended attribute length")
            attr_len = struct.unpack("!H", body[offset:offset + 2])[0]
            offset += 2
        else:
            if offset + 1 > attribute_end:
                raise MessageError("truncated attribute length")
            attr_len = body[offset]
            offset += 1
        if offset + attr_len > attribute_end:
            raise MessageError(f"attribute {type_code} overflows the attribute section")
        payload = body[offset:offset + attr_len]
        offset += attr_len

        if type_code == AttributeTypeCode.ORIGIN:
            if len(payload) != 1:
                raise MessageError("ORIGIN attribute must be exactly 1 byte")
            origin = Origin(payload[0])
        elif type_code == AttributeTypeCode.AS_PATH:
            as_path = _decode_as_path(payload)
        elif type_code == AttributeTypeCode.NEXT_HOP:
            if len(payload) != 4:
                raise MessageError("NEXT_HOP attribute must be exactly 4 bytes")
            next_hop = struct.unpack("!I", payload)[0]
        elif type_code == AttributeTypeCode.MULTI_EXIT_DISC:
            if len(payload) != 4:
                raise MessageError("MED attribute must be exactly 4 bytes")
            med = struct.unpack("!I", payload)[0]
        elif type_code == AttributeTypeCode.LOCAL_PREF:
            if len(payload) != 4:
                raise MessageError("LOCAL_PREF attribute must be exactly 4 bytes")
            local_pref = struct.unpack("!I", payload)[0]
        elif type_code == AttributeTypeCode.ATOMIC_AGGREGATE:
            atomic_aggregate = True
        elif type_code == AttributeTypeCode.COMMUNITIES:
            if len(payload) % 4 != 0:
                raise MessageError("COMMUNITIES attribute length must be a multiple of 4")
            values = [
                Community.from_int(struct.unpack("!I", payload[i:i + 4])[0])
                for i in range(0, len(payload), 4)
            ]
            communities = CommunitySet(values)
        elif type_code == AttributeTypeCode.LARGE_COMMUNITIES:
            if len(payload) % 12 != 0:
                raise MessageError("LARGE_COMMUNITIES attribute length must be a multiple of 12")
            for i in range(0, len(payload), 12):
                a, b, c = struct.unpack("!III", payload[i:i + 12])
                large_communities.append(LargeCommunity(a, b, c))
        else:
            unknown.append((type_code, flags, payload))

    announced: list[Prefix] = []
    while offset < len(body):
        prefix, offset = _decode_prefix_nlri(body, offset, family)
        announced.append(prefix)

    attributes = PathAttributes(
        as_path=as_path,
        origin=origin,
        next_hop=next_hop,
        med=med,
        local_pref=local_pref,
        communities=communities,
        large_communities=tuple(large_communities),
        atomic_aggregate=atomic_aggregate,
    )
    return BgpUpdate(
        announced=announced,
        withdrawn=withdrawn,
        attributes=attributes,
        unknown_attributes=unknown,
    )
