"""BGP data model: communities, AS paths, prefixes, attributes, messages, RIBs."""

from repro.bgp.community import (
    Community,
    LargeCommunity,
    CommunitySet,
    WellKnownCommunity,
    BLACKHOLE,
    NO_EXPORT,
    NO_ADVERTISE,
    NO_EXPORT_SUBCONFED,
    NO_PEER,
    is_private_asn,
)
from repro.bgp.aspath import ASPath, ASPathSegment, SegmentType
from repro.bgp.prefix import Prefix, AddressFamily
from repro.bgp.attributes import Origin, PathAttributes
from repro.bgp.route import Announcement, RouteEntry, Withdrawal
from repro.bgp.message import BgpUpdate, encode_update, decode_update
from repro.bgp.rib import AdjRibIn, LocRib, RibSnapshot

__all__ = [
    "Community",
    "LargeCommunity",
    "CommunitySet",
    "WellKnownCommunity",
    "BLACKHOLE",
    "NO_EXPORT",
    "NO_ADVERTISE",
    "NO_EXPORT_SUBCONFED",
    "NO_PEER",
    "is_private_asn",
    "ASPath",
    "ASPathSegment",
    "SegmentType",
    "Prefix",
    "AddressFamily",
    "Origin",
    "PathAttributes",
    "Announcement",
    "RouteEntry",
    "Withdrawal",
    "BgpUpdate",
    "encode_update",
    "decode_update",
    "AdjRibIn",
    "LocRib",
    "RibSnapshot",
]
