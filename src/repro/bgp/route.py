"""Announcements, withdrawals, and RIB entries.

An :class:`Announcement` is the unit the routing simulator propagates
and the unit the collectors record; a :class:`RouteEntry` is an
announcement as stored in a RIB together with book-keeping about the
neighbor it was learned from.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, fields, replace as dataclass_replace

from repro.bgp.attributes import PathAttributes
from repro.bgp.community import CommunitySet
from repro.bgp.prefix import Prefix

_announcement_counter = itertools.count(1)


@dataclass(frozen=True)
class Announcement:
    """A BGP route announcement for one prefix.

    ``sender_asn`` is the AS the announcement is arriving from (the
    neighbor), ``origin_asn`` is the AS that originated the prefix.
    ``timestamp`` is simulation time in seconds (not wall-clock).
    """

    prefix: Prefix
    attributes: PathAttributes
    sender_asn: int
    origin_asn: int
    timestamp: float = 0.0
    announcement_id: int = field(default_factory=lambda: next(_announcement_counter))

    @property
    def as_path(self):
        """Shortcut to the AS_PATH attribute."""
        return self.attributes.as_path

    @property
    def communities(self) -> CommunitySet:
        """Shortcut to the communities attribute."""
        return self.attributes.communities

    def replace(self, **changes) -> "Announcement":
        """Return a copy with fields replaced (a fresh announcement id is kept)."""
        return dataclass_replace(self, **changes)

    def with_attributes(self, attributes: PathAttributes) -> "Announcement":
        """Return a copy carrying different path attributes."""
        return self.replace(attributes=attributes)

    def is_more_specific_of(self, other: "Announcement") -> bool:
        """True if this announcement's prefix is strictly more specific than ``other``'s."""
        return (
            other.prefix.contains_prefix(self.prefix)
            and self.prefix.length > other.prefix.length
        )

    def __str__(self) -> str:
        return (
            f"{self.prefix} via AS{self.sender_asn} path [{self.attributes.as_path}] "
            f"communities {self.attributes.communities}"
        )


@dataclass(frozen=True)
class Withdrawal:
    """A BGP route withdrawal for one prefix."""

    prefix: Prefix
    sender_asn: int
    timestamp: float = 0.0


@dataclass(frozen=True)
class RouteEntry:
    """A route stored in a RIB.

    ``learned_from`` is the neighbor ASN (or the local ASN for
    originated routes); ``blackholed`` marks routes whose next hop has
    been rewritten to a discard (null) interface as the result of a
    blackhole community.
    """

    prefix: Prefix
    attributes: PathAttributes
    learned_from: int
    best: bool = False
    blackholed: bool = False
    rejected: bool = False
    rejection_reason: str | None = None
    #: Extra times the local ASN is prepended when this route is exported
    #: (the effect of a path-prepending community acting at this AS).
    export_prepend: int = 0
    #: Neighbors this route must NOT be exported to (suppression communities).
    suppress_to: frozenset[int] = frozenset()
    #: If not None, the route may ONLY be exported to these neighbors.
    announce_only_to: frozenset[int] | None = None

    @property
    def as_path(self):
        """Shortcut to the AS_PATH attribute."""
        return self.attributes.as_path

    @property
    def communities(self) -> CommunitySet:
        """Shortcut to the communities attribute."""
        return self.attributes.communities

    def replace(self, **changes) -> "RouteEntry":
        """Return a copy with fields replaced.

        Hand-rolled rather than :func:`dataclasses.replace`: route
        copies happen once per import/export on the propagation hot
        path, and the generic helper's field introspection dominates
        the cost of the copy itself.
        """
        for name in changes:
            if name not in _ROUTE_ENTRY_FIELDS:
                raise TypeError(f"RouteEntry.replace() got an unexpected field {name!r}")
        get = changes.get
        return RouteEntry(
            prefix=get("prefix", self.prefix),
            attributes=get("attributes", self.attributes),
            learned_from=get("learned_from", self.learned_from),
            best=get("best", self.best),
            blackholed=get("blackholed", self.blackholed),
            rejected=get("rejected", self.rejected),
            rejection_reason=get("rejection_reason", self.rejection_reason),
            export_prepend=get("export_prepend", self.export_prepend),
            suppress_to=get("suppress_to", self.suppress_to),
            announce_only_to=get("announce_only_to", self.announce_only_to),
        )

    def same_route(self, other: "RouteEntry") -> bool:
        """Field equality ignoring the ``best`` flag, without allocating copies.

        This is the comparison best-path refresh runs after every import:
        export-side fields (``suppress_to``, ``announce_only_to``,
        ``export_prepend``) count, because a re-announcement that only
        alters them still changes what neighbors receive.
        """
        return (
            self.learned_from == other.learned_from
            and self.blackholed == other.blackholed
            and self.rejected == other.rejected
            and self.export_prepend == other.export_prepend
            and self.rejection_reason == other.rejection_reason
            and self.suppress_to == other.suppress_to
            and self.announce_only_to == other.announce_only_to
            and self.prefix == other.prefix
            and self.attributes == other.attributes
        )

    def __str__(self) -> str:
        flags = []
        if self.best:
            flags.append("best")
        if self.blackholed:
            flags.append("blackholed")
        if self.rejected:
            flags.append("rejected")
        flag_text = f" [{', '.join(flags)}]" if flags else ""
        return (
            f"{self.prefix} from AS{self.learned_from} path [{self.attributes.as_path}]"
            f"{flag_text}"
        )


#: Field names :meth:`RouteEntry.replace` accepts, derived from the
#: dataclass so the hand-rolled copy keeps dataclasses.replace's
#: unknown-field TypeError contract.
_ROUTE_ENTRY_FIELDS = frozenset(f.name for f in fields(RouteEntry))
