"""AS_PATH attribute model.

The measurement pipeline needs exactly the AS-path operations the paper
describes: prepend removal ("We remove AS path prepending to not bias
the AS path"), hop distance between an AS and the path origin, and
membership tests for on-path/off-path community classification.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Iterable, Iterator, Sequence

from repro.exceptions import ASPathError

AS_TRANS = 23456
MAX_ASN = 0xFFFFFFFF


class SegmentType(IntEnum):
    """AS_PATH segment types (RFC 4271)."""

    AS_SET = 1
    AS_SEQUENCE = 2


@dataclass(frozen=True)
class ASPathSegment:
    """One AS_PATH segment: an ordered sequence or an unordered set."""

    segment_type: SegmentType
    asns: tuple[int, ...]

    def __post_init__(self) -> None:
        for asn in self.asns:
            if not 0 <= asn <= MAX_ASN:
                raise ASPathError(f"ASN {asn} out of 32-bit range")

    def __len__(self) -> int:
        return len(self.asns)


class ASPath:
    """An AS path, ordered from the most recent AS to the origin AS.

    ``ASPath.of(5, 4, 3, 2, 1)`` models a route observed at (or just
    after) AS5 that originated at AS1 — the same left-to-right
    convention the paper uses ("AS path AS5 AS4 AS3 AS2 AS1").
    """

    __slots__ = ("_segments", "_hash")

    def __init__(self, segments: Iterable[ASPathSegment] = ()):
        self._segments = tuple(segments)
        self._hash: int | None = None
        for segment in self._segments:
            if not isinstance(segment, ASPathSegment):
                raise ASPathError(f"expected ASPathSegment, got {type(segment).__name__}")

    @classmethod
    def of(cls, *asns: int) -> "ASPath":
        """Build a pure AS_SEQUENCE path from ASNs (most recent first)."""
        if not asns:
            return cls()
        return cls([ASPathSegment(SegmentType.AS_SEQUENCE, tuple(int(a) for a in asns))])

    @classmethod
    def from_string(cls, text: str) -> "ASPath":
        """Parse a space-separated AS path such as ``"3356 1299 13335"``.

        A brace-enclosed group (``{64500,64501}``) is parsed as an AS_SET.
        """
        segments: list[ASPathSegment] = []
        sequence: list[int] = []
        for token in text.split():
            if token.startswith("{") and token.endswith("}"):
                if sequence:
                    segments.append(ASPathSegment(SegmentType.AS_SEQUENCE, tuple(sequence)))
                    sequence = []
                members = tuple(int(t) for t in token[1:-1].split(",") if t)
                segments.append(ASPathSegment(SegmentType.AS_SET, members))
            else:
                try:
                    sequence.append(int(token))
                except ValueError as exc:
                    raise ASPathError(f"invalid AS path token {token!r}") from exc
        if sequence:
            segments.append(ASPathSegment(SegmentType.AS_SEQUENCE, tuple(sequence)))
        return cls(segments)

    @property
    def segments(self) -> tuple[ASPathSegment, ...]:
        """The underlying segments."""
        return self._segments

    def asns(self) -> list[int]:
        """Return every ASN on the path in order (sets flattened in place)."""
        result: list[int] = []
        for segment in self._segments:
            result.extend(segment.asns)
        return result

    def unique_asns(self) -> list[int]:
        """Return the ASNs with consecutive duplicates (prepending) collapsed."""
        result: list[int] = []
        for asn in self.asns():
            if not result or result[-1] != asn:
                result.append(asn)
        return result

    def without_prepending(self) -> "ASPath":
        """Return a copy with AS-path prepending removed (the paper's normalisation)."""
        return ASPath.of(*self.unique_asns())

    @property
    def origin_asn(self) -> int | None:
        """The origin AS (right-most ASN), or None for an empty path."""
        flat = self.asns()
        return flat[-1] if flat else None

    @property
    def first_asn(self) -> int | None:
        """The most recent AS (left-most ASN), or None for an empty path."""
        flat = self.asns()
        return flat[0] if flat else None

    def contains(self, asn: int) -> bool:
        """Return True if ``asn`` appears anywhere on the path."""
        return asn in set(self.asns())

    def hops_from_origin(self, asn: int) -> int | None:
        """Return the number of AS-level hops between ``asn`` and the origin.

        Prepending is collapsed first.  Returns 0 for the origin itself
        and None if ``asn`` is not on the path.  This is the "hop count"
        used for Figure 5(a).
        """
        unique = self.unique_asns()
        if asn not in unique:
            return None
        index = unique.index(asn)
        return len(unique) - 1 - index

    def hops_to_observer(self, asn: int) -> int | None:
        """Return the number of AS-level hops from ``asn`` to the observation point."""
        unique = self.unique_asns()
        if asn not in unique:
            return None
        return unique.index(asn)

    def prepend(self, asn: int, count: int = 1) -> "ASPath":
        """Return a new path with ``asn`` prepended ``count`` times."""
        if count < 0:
            raise ASPathError(f"cannot prepend a negative count ({count})")
        return ASPath.of(*([asn] * count + self.asns()))

    def length(self) -> int:
        """Return the AS_PATH length used in best-path selection.

        AS_SET segments count as one hop regardless of size (RFC 4271).
        """
        total = 0
        for segment in self._segments:
            if segment.segment_type == SegmentType.AS_SEQUENCE:
                total += len(segment.asns)
            else:
                total += 1
        return total

    def has_loop(self, asn: int) -> bool:
        """Return True if ``asn`` already appears on the path (loop prevention)."""
        return self.contains(asn)

    def __len__(self) -> int:
        return self.length()

    def __iter__(self) -> Iterator[int]:
        return iter(self.asns())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ASPath):
            return NotImplemented
        return self._segments == other._segments

    def __hash__(self) -> int:
        # Paths key the export memoisation of the batch engine; the
        # (immutable) hash is computed once.
        if self._hash is None:
            self._hash = hash(self._segments)
        return self._hash

    def __str__(self) -> str:
        parts: list[str] = []
        for segment in self._segments:
            if segment.segment_type == SegmentType.AS_SEQUENCE:
                parts.extend(str(a) for a in segment.asns)
            else:
                parts.append("{" + ",".join(str(a) for a in segment.asns) + "}")
        return " ".join(parts)

    def __repr__(self) -> str:
        return f"ASPath({str(self)!r})"


def edges_of_path(asns: Sequence[int]) -> list[tuple[int, int]]:
    """Return the directed AS edges of a (prepend-free) path, most recent first.

    For the path ``[AS5, AS4, AS3]`` the edges are ``[(AS4, AS5), (AS3, AS4)]``,
    i.e. in the direction the announcement travelled (from origin outward).
    """
    edges = []
    for left, right in zip(asns, asns[1:]):
        if left != right:
            edges.append((right, left))
    return edges
