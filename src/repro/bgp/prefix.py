"""IP prefix (NLRI) model supporting IPv4 and IPv6.

Prefixes are value objects: hashable, comparable, and normalised (host
bits are cleared on construction).  The data-plane FIB and the hijack
machinery rely on containment/overlap tests and on enumerating
more-specific sub-prefixes.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

from repro.exceptions import PrefixError
from repro.utils import ip as ip_utils
from repro.utils.frozen import set_frozen_field


class AddressFamily(IntEnum):
    """Address family identifiers (subset of IANA AFI values)."""

    IPV4 = 1
    IPV6 = 2

    @property
    def bits(self) -> int:
        """Address width in bits."""
        return 32 if self == AddressFamily.IPV4 else 128


@dataclass(frozen=True, order=True)
class Prefix:
    """An IP prefix, e.g. ``Prefix.from_string("192.0.2.0/24")``."""

    family: AddressFamily
    network: int
    length: int

    def __post_init__(self) -> None:
        bits = self.family.bits
        if not 0 <= self.length <= bits:
            raise PrefixError(f"prefix length {self.length} out of range for {self.family.name}")
        if not 0 <= self.network < (1 << bits):
            raise PrefixError(f"network {self.network} out of range for {self.family.name}")
        normalised = ip_utils.network_address(self.network, self.length, bits)
        if normalised != self.network:
            set_frozen_field(self, "network", normalised)
        # Prefixes key every RIB, FIB and propagation-worklist container,
        # so the (immutable) hash is computed once instead of per lookup.
        set_frozen_field(self, "_hash", hash((self.family, self.network, self.length)))

    def __hash__(self) -> int:
        return self._hash

    @classmethod
    def from_string(cls, text: str) -> "Prefix":
        """Parse ``a.b.c.d/len`` or ``h:h::/len`` text."""
        text = text.strip()
        if "/" not in text:
            raise PrefixError(f"invalid prefix {text!r}: missing '/length'")
        address_text, _, length_text = text.partition("/")
        try:
            length = int(length_text)
        except ValueError as exc:
            raise PrefixError(f"invalid prefix {text!r}: bad length") from exc
        if ":" in address_text:
            family = AddressFamily.IPV6
            address = ip_utils.parse_ipv6(address_text)
        else:
            family = AddressFamily.IPV4
            address = ip_utils.parse_ipv4(address_text)
        return cls(family, ip_utils.network_address(address, length, family.bits), length)

    @classmethod
    def ipv4(cls, network: int, length: int) -> "Prefix":
        """Build an IPv4 prefix from an integer network and length."""
        return cls(AddressFamily.IPV4, network, length)

    @classmethod
    def ipv6(cls, network: int, length: int) -> "Prefix":
        """Build an IPv6 prefix from an integer network and length."""
        return cls(AddressFamily.IPV6, network, length)

    @property
    def is_ipv4(self) -> bool:
        """True for IPv4 prefixes."""
        return self.family == AddressFamily.IPV4

    @property
    def is_ipv6(self) -> bool:
        """True for IPv6 prefixes."""
        return self.family == AddressFamily.IPV6

    @property
    def address_text(self) -> str:
        """The network address in presentation format (without the length)."""
        if self.is_ipv4:
            return ip_utils.format_ipv4(self.network)
        return ip_utils.format_ipv6(self.network)

    def contains_prefix(self, other: "Prefix") -> bool:
        """Return True if this prefix covers ``other`` (is equal or less specific)."""
        if self.family != other.family:
            return False
        return ip_utils.prefix_contains(
            self.network, self.length, other.network, other.length, self.family.bits
        )

    def contains_address(self, address: int) -> bool:
        """Return True if ``address`` (an integer) falls inside this prefix."""
        bits = self.family.bits
        if not 0 <= address < (1 << bits):
            return False
        return ip_utils.network_address(address, self.length, bits) == self.network

    def overlaps(self, other: "Prefix") -> bool:
        """Return True if this prefix shares any address with ``other``."""
        if self.family != other.family:
            return False
        return ip_utils.prefixes_overlap(
            self.network, self.length, other.network, other.length, self.family.bits
        )

    def subprefix(self, new_length: int, index: int = 0) -> "Prefix":
        """Return the ``index``-th more-specific prefix of ``new_length`` bits.

        ``Prefix.from_string("10.0.0.0/8").subprefix(24, 1)`` is
        ``10.0.1.0/24``; used to model sub-prefix hijacks and /24
        blackhole announcements.
        """
        bits = self.family.bits
        if new_length < self.length:
            raise PrefixError(
                f"sub-prefix length {new_length} is shorter than parent length {self.length}"
            )
        if new_length > bits:
            raise PrefixError(f"sub-prefix length {new_length} exceeds {bits} bits")
        slots = 1 << (new_length - self.length)
        if not 0 <= index < slots:
            raise PrefixError(f"sub-prefix index {index} out of range (0..{slots - 1})")
        network = self.network | (index << (bits - new_length))
        return Prefix(self.family, network, new_length)

    def first_address(self) -> int:
        """Return the first (network) address as an integer."""
        return self.network

    def host(self, offset: int | None = None) -> int:
        """Return the address ``network + offset`` (a representative host).

        The default offset is 1, clamped to 0 for host routes (/32, /128)
        whose only address is the network address itself — so e.g. pinging
        a /32 RTBH announcement targets the blackholed address instead of
        raising.  An explicit out-of-range offset still raises.
        """
        bits = self.family.bits
        size = 1 << (bits - self.length)
        if offset is None:
            offset = 1 if size > 1 else 0
        if not 0 <= offset < size:
            raise PrefixError(f"host offset {offset} out of range for /{self.length}")
        return self.network + offset

    def host_text(self, offset: int | None = None) -> str:
        """Return a representative host address in presentation format."""
        address = self.host(offset)
        if self.is_ipv4:
            return ip_utils.format_ipv4(address)
        return ip_utils.format_ipv6(address)

    def __str__(self) -> str:
        return f"{self.address_text}/{self.length}"

    def __repr__(self) -> str:
        return f"Prefix({str(self)})"
