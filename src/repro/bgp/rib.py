"""Routing information bases: Adj-RIB-In, Loc-RIB, and snapshots.

The per-AS router in :mod:`repro.routing.router` keeps one
:class:`AdjRibIn` per neighbor and one :class:`LocRib` holding the
selected best routes; :class:`RibSnapshot` is the read-only view the
collectors and looking glasses expose.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Callable, Iterable, Iterator, Mapping

from repro.bgp.prefix import AddressFamily, Prefix
from repro.bgp.route import RouteEntry
from repro.net.lpm import LpmTable


class AdjRibIn:
    """Routes received from a single neighbor, keyed by prefix."""

    def __init__(self, neighbor_asn: int):
        self.neighbor_asn = neighbor_asn
        self._routes: dict[Prefix, RouteEntry] = {}

    def update(self, entry: RouteEntry) -> None:
        """Insert or replace the route for the entry's prefix."""
        self._routes[entry.prefix] = entry

    def withdraw(self, prefix: Prefix) -> RouteEntry | None:
        """Remove and return the route for ``prefix`` (None if absent)."""
        return self._routes.pop(prefix, None)

    def get(self, prefix: Prefix) -> RouteEntry | None:
        """Return the route for ``prefix`` (None if absent)."""
        return self._routes.get(prefix)

    def prefixes(self) -> list[Prefix]:
        """Return all prefixes present."""
        return list(self._routes)

    def routes(self) -> list[RouteEntry]:
        """Return all routes present."""
        return list(self._routes.values())

    def __len__(self) -> int:
        return len(self._routes)

    def __contains__(self, prefix: Prefix) -> bool:
        return prefix in self._routes


class LocRib:
    """The selected (best) routes of one AS, keyed by prefix.

    Multiple candidate routes per prefix are retained so looking glasses
    can show alternatives; exactly one is flagged best.
    """

    def __init__(self):
        self._candidates: dict[Prefix, list[RouteEntry]] = {}
        self._best: dict[Prefix, RouteEntry] = {}
        #: Per-family radix trie over the best routes, kept in sync with
        #: ``_best`` so LPM lookups never scan the table (or cross families).
        self._lpm = LpmTable()

    def set_candidates(self, prefix: Prefix, entries: Iterable[RouteEntry]) -> None:
        """Replace the candidate list for ``prefix``."""
        entries = list(entries)
        if entries:
            self._candidates[prefix] = entries
        else:
            self._candidates.pop(prefix, None)

    def set_best(self, prefix: Prefix, entry: RouteEntry | None) -> None:
        """Set (or clear, with None) the best route for ``prefix``."""
        if entry is None:
            if self._best.pop(prefix, None) is not None:
                self._lpm.delete(prefix)
        else:
            best = entry.replace(best=True)
            self._best[prefix] = best
            self._lpm.insert(prefix, best)

    def best(self, prefix: Prefix) -> RouteEntry | None:
        """Return the best route for exactly ``prefix`` (no longest-prefix match)."""
        return self._best.get(prefix)

    def candidates(self, prefix: Prefix) -> list[RouteEntry]:
        """Return all candidate routes for ``prefix``."""
        return list(self._candidates.get(prefix, ()))

    def best_routes(self) -> list[RouteEntry]:
        """Return the best route of every prefix."""
        return list(self._best.values())

    def prefixes(self) -> list[Prefix]:
        """Return every prefix that has a best route."""
        return list(self._best)

    def lookup(self, address: int, family: AddressFamily | None = None) -> RouteEntry | None:
        """Longest-prefix-match lookup of an integer address among best routes.

        The match is confined to ``family``'s trie (inferred from the
        address magnitude when not given), so an IPv4 address can never
        match an IPv6 best route.
        """
        hit = self._lpm.longest_match(address, family)
        return hit[1] if hit is not None else None

    def remove(self, prefix: Prefix) -> None:
        """Drop the prefix from both candidates and best."""
        self._candidates.pop(prefix, None)
        if self._best.pop(prefix, None) is not None:
            self._lpm.delete(prefix)

    def __len__(self) -> int:
        return len(self._best)

    def __contains__(self, prefix: Prefix) -> bool:
        return prefix in self._best

    def __iter__(self) -> Iterator[RouteEntry]:
        return iter(self._best.values())


@dataclass
class RibSnapshot:
    """A read-only copy of an AS's best routes, as a looking glass would show them."""

    asn: int
    entries: Mapping[Prefix, RouteEntry] = field(default_factory=dict)
    #: Lazily built trie over ``entries``; built at most once, which is
    #: safe because the entry table is frozen in ``__post_init__``.
    _lpm: LpmTable | None = field(default=None, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        # The snapshot is a read-only view (the class contract, and what
        # the cached LPM trie relies on): detach and freeze the entry
        # table so later mutation cannot desynchronise the trie.
        self.entries = MappingProxyType(dict(self.entries))

    @classmethod
    def from_loc_rib(cls, asn: int, loc_rib: LocRib) -> "RibSnapshot":
        """Capture the current best routes of ``loc_rib``."""
        return cls(asn=asn, entries={e.prefix: e for e in loc_rib.best_routes()})

    def get(self, prefix: Prefix) -> RouteEntry | None:
        """Return the best route for exactly ``prefix``."""
        return self.entries.get(prefix)

    def _trie(self) -> LpmTable:
        if self._lpm is None:
            table = LpmTable()
            for prefix, entry in self.entries.items():
                table.insert(prefix, entry)
            self._lpm = table
        return self._lpm

    def covering(self, prefix: Prefix) -> list[RouteEntry]:
        """Return routes whose prefix covers ``prefix`` (least specific first)."""
        return [entry for _, entry in self._trie().covering(prefix)]

    def lookup(self, address: int, family: AddressFamily | None = None) -> RouteEntry | None:
        """Longest-prefix-match lookup of an integer address in the snapshot."""
        hit = self._trie().longest_match(address, family)
        return hit[1] if hit is not None else None

    def select(self, predicate: Callable[[RouteEntry], bool]) -> list[RouteEntry]:
        """Return routes matching an arbitrary predicate."""
        return [e for e in self.entries.values() if predicate(e)]

    def prefixes(self) -> list[Prefix]:
        """Return all prefixes in the snapshot."""
        return list(self.entries)

    def __len__(self) -> int:
        return len(self.entries)
