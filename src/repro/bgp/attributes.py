"""BGP path attributes carried alongside an announcement.

:class:`PathAttributes` bundles the attributes the simulator and the
measurement pipeline care about: ORIGIN, AS_PATH, NEXT_HOP, MED,
LOCAL_PREF, COMMUNITIES and LARGE_COMMUNITIES.  Instances are
immutable; the policy engine produces modified copies via
:meth:`PathAttributes.replace`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from enum import IntEnum
from typing import Iterable

from repro.bgp.aspath import ASPath
from repro.bgp.community import Community, CommunitySet, LargeCommunity
from repro.exceptions import AttributeError_
from repro.utils.frozen import set_frozen_field

#: Default LOCAL_PREF applied when a neighbor does not set one (common vendor default).
DEFAULT_LOCAL_PREF = 100

#: Upper bound on communities a single Cisco configuration statement may add
#: (Section 6.1 of the paper).
CISCO_MAX_ADDED_COMMUNITIES = 32

#: Maximum number of communities a single UPDATE can carry: the attribute
#: length field is 16 bits and each community is 4 bytes (Section 6.1).
MAX_COMMUNITIES_PER_UPDATE = (1 << 16) // 4


class Origin(IntEnum):
    """ORIGIN attribute values (RFC 4271)."""

    IGP = 0
    EGP = 1
    INCOMPLETE = 2


class AttributeTypeCode(IntEnum):
    """Path-attribute type codes used by the wire codec."""

    ORIGIN = 1
    AS_PATH = 2
    NEXT_HOP = 3
    MULTI_EXIT_DISC = 4
    LOCAL_PREF = 5
    ATOMIC_AGGREGATE = 6
    AGGREGATOR = 7
    COMMUNITIES = 8
    LARGE_COMMUNITIES = 32


@dataclass(frozen=True)
class PathAttributes:
    """The mutable-by-copy attribute bundle attached to an announcement."""

    as_path: ASPath = field(default_factory=ASPath)
    origin: Origin = Origin.IGP
    next_hop: int = 0
    med: int | None = None
    local_pref: int | None = None
    communities: CommunitySet = field(default_factory=CommunitySet)
    large_communities: tuple[LargeCommunity, ...] = ()
    atomic_aggregate: bool = False

    def __post_init__(self) -> None:
        if self.med is not None and not 0 <= self.med <= 0xFFFFFFFF:
            raise AttributeError_(f"MED {self.med} out of 32-bit range")
        if self.local_pref is not None and not 0 <= self.local_pref <= 0xFFFFFFFF:
            raise AttributeError_(f"LOCAL_PREF {self.local_pref} out of 32-bit range")
        if len(self.communities) > MAX_COMMUNITIES_PER_UPDATE:
            raise AttributeError_(
                f"{len(self.communities)} communities exceed the per-update maximum "
                f"of {MAX_COMMUNITIES_PER_UPDATE}"
            )

    def __hash__(self) -> int:
        # Attribute bundles key the batch engine's export memoisation;
        # the hash spans every field and is computed once per bundle.
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash(
                (
                    self.as_path,
                    self.origin,
                    self.next_hop,
                    self.med,
                    self.local_pref,
                    self.communities,
                    self.large_communities,
                    self.atomic_aggregate,
                )
            )
            set_frozen_field(self, "_hash", cached)
        return cached

    def replace(self, **changes) -> "PathAttributes":
        """Return a copy with the given fields replaced.

        Hand-rolled rather than :func:`dataclasses.replace`: every
        import strip and export rewrite copies the bundle, and the
        generic helper's field introspection dominates the copy.
        """
        for name in changes:
            if name not in _ATTRIBUTE_FIELDS:
                raise TypeError(f"PathAttributes.replace() got an unexpected field {name!r}")
        get = changes.get
        return PathAttributes(
            as_path=get("as_path", self.as_path),
            origin=get("origin", self.origin),
            next_hop=get("next_hop", self.next_hop),
            med=get("med", self.med),
            local_pref=get("local_pref", self.local_pref),
            communities=get("communities", self.communities),
            large_communities=get("large_communities", self.large_communities),
            atomic_aggregate=get("atomic_aggregate", self.atomic_aggregate),
        )

    def effective_local_pref(self) -> int:
        """Return LOCAL_PREF, substituting the conventional default of 100."""
        return self.local_pref if self.local_pref is not None else DEFAULT_LOCAL_PREF

    def with_communities_added(self, communities: Iterable[Community | str | int]) -> "PathAttributes":
        """Return a copy with communities added (additive semantics)."""
        return self.replace(communities=self.communities.add(*communities))

    def with_communities_removed(self, communities: Iterable[Community | str | int]) -> "PathAttributes":
        """Return a copy with the given communities removed."""
        return self.replace(communities=self.communities.remove(*communities))

    def with_communities_set(self, communities: Iterable[Community | str | int]) -> "PathAttributes":
        """Return a copy with the community set replaced entirely."""
        return self.replace(communities=CommunitySet.of(*communities))

    def without_communities(self) -> "PathAttributes":
        """Return a copy with all communities stripped."""
        return self.replace(communities=CommunitySet())

    def with_prepend(self, asn: int, count: int) -> "PathAttributes":
        """Return a copy with ``asn`` prepended ``count`` extra times."""
        return self.replace(as_path=self.as_path.prepend(asn, count))

    def path_length(self) -> int:
        """AS_PATH length used by the decision process."""
        return self.as_path.length()


#: Field names :meth:`PathAttributes.replace` accepts, derived from the
#: dataclass so the hand-rolled copy keeps dataclasses.replace's
#: unknown-field TypeError contract.
_ATTRIBUTE_FIELDS = frozenset(f.name for f in fields(PathAttributes))
