"""BGP community attribute values (RFC 1997) and large communities (RFC 8092).

A traditional community is a 32-bit value.  By convention (and as the
paper assumes throughout Section 4) the high-order 16 bits hold the AS
number of the entity that defines the community and the low-order 16
bits hold an operator-chosen label, written ``ASN:value``.

The module also defines the small set of well-known communities the
paper refers to (NO_EXPORT, NO_PEER, the RFC 7999 BLACKHOLE community)
and helpers to classify private ASNs (RFC 6996), which the paper uses
to separate "off-path w/o private" in Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Iterable, Iterator

from repro.exceptions import CommunityError

#: Reserved well-known community ASN part (RFC 1997).
WELL_KNOWN_ASN = 0xFFFF

#: Private-use 16-bit ASN range (RFC 6996).
PRIVATE_ASN_16_START = 64512
PRIVATE_ASN_16_END = 65534

#: Reserved ASN 0 and 65535.
RESERVED_ASNS = frozenset({0, 65535})


class WellKnownCommunity(IntEnum):
    """Well-known community values standardised by the IETF."""

    #: RFC 7999 — request that traffic to the prefix be dropped.
    BLACKHOLE = (WELL_KNOWN_ASN << 16) | 666
    #: RFC 1997 — do not advertise outside the local AS / confederation.
    NO_EXPORT = 0xFFFFFF01
    #: RFC 1997 — do not advertise to any other BGP peer.
    NO_ADVERTISE = 0xFFFFFF02
    #: RFC 1997 — do not advertise outside the local confederation member AS.
    NO_EXPORT_SUBCONFED = 0xFFFFFF03
    #: RFC 3765 — do not propagate over bilateral peering links.
    NO_PEER = 0xFFFFFF04


#: Raw 32-bit values of the well-known communities, hoisted to module
#: level: classification runs on every export decision and every
#: observation, so the set must not be rebuilt per call.
WELL_KNOWN_RAW_VALUES = frozenset(int(c) for c in WellKnownCommunity)
_BLACKHOLE_RAW = int(WellKnownCommunity.BLACKHOLE)


def is_private_asn(asn: int) -> bool:
    """Return True if ``asn`` falls in the 16-bit private-use range (RFC 6996)."""
    return PRIVATE_ASN_16_START <= asn <= PRIVATE_ASN_16_END


@dataclass(frozen=True, order=True)
class Community:
    """A traditional 32-bit BGP community, interpreted as ``asn:value``."""

    asn: int
    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.asn <= 0xFFFF:
            raise CommunityError(f"community ASN part {self.asn} out of 16-bit range")
        if not 0 <= self.value <= 0xFFFF:
            raise CommunityError(f"community value part {self.value} out of 16-bit range")

    @classmethod
    def from_string(cls, text: str) -> "Community":
        """Parse the ``ASN:value`` presentation format."""
        parts = text.strip().split(":")
        if len(parts) != 2:
            raise CommunityError(f"invalid community {text!r}: expected 'asn:value'")
        try:
            asn, value = int(parts[0]), int(parts[1])
        except ValueError as exc:
            raise CommunityError(f"invalid community {text!r}: non-numeric parts") from exc
        return cls(asn, value)

    @classmethod
    def from_int(cls, raw: int) -> "Community":
        """Build a community from its raw 32-bit wire value."""
        if not 0 <= raw <= 0xFFFFFFFF:
            raise CommunityError(f"community raw value {raw} out of 32-bit range")
        return cls(raw >> 16, raw & 0xFFFF)

    def to_int(self) -> int:
        """Return the raw 32-bit wire value."""
        return (self.asn << 16) | self.value

    @property
    def is_well_known(self) -> bool:
        """True if the community is one of the IETF well-known values."""
        return self.to_int() in WELL_KNOWN_RAW_VALUES

    @property
    def is_blackhole(self) -> bool:
        """True for the standardized RFC 7999 blackhole community (65535:666)."""
        return self.to_int() == _BLACKHOLE_RAW

    @property
    def has_blackhole_value(self) -> bool:
        """True if the value part is 666 (the conventional blackhole label)."""
        return self.value == 666

    @property
    def is_private_asn(self) -> bool:
        """True if the ASN part is in the RFC 6996 private range."""
        return is_private_asn(self.asn)

    @property
    def is_reserved_asn(self) -> bool:
        """True if the ASN part is 0 or 65535."""
        return self.asn in RESERVED_ASNS

    def __str__(self) -> str:
        return f"{self.asn}:{self.value}"

    def __repr__(self) -> str:
        return f"Community({self.asn}:{self.value})"


#: Singletons for the well-known communities, in ``Community`` form.
BLACKHOLE = Community.from_int(int(WellKnownCommunity.BLACKHOLE))
NO_EXPORT = Community.from_int(int(WellKnownCommunity.NO_EXPORT))
NO_ADVERTISE = Community.from_int(int(WellKnownCommunity.NO_ADVERTISE))
NO_EXPORT_SUBCONFED = Community.from_int(int(WellKnownCommunity.NO_EXPORT_SUBCONFED))
NO_PEER = Community.from_int(int(WellKnownCommunity.NO_PEER))


@dataclass(frozen=True, order=True)
class LargeCommunity:
    """A 96-bit large community (RFC 8092): ``global:local1:local2``.

    The paper focuses on traditional communities; large communities are
    modelled so the wire codec and dataset generator can carry them, but
    the measurement pipeline analyses traditional communities only (as
    the paper does).
    """

    global_admin: int
    local_data1: int
    local_data2: int

    def __post_init__(self) -> None:
        for name, part in (
            ("global administrator", self.global_admin),
            ("local data 1", self.local_data1),
            ("local data 2", self.local_data2),
        ):
            if not 0 <= part <= 0xFFFFFFFF:
                raise CommunityError(f"large community {name} {part} out of 32-bit range")

    @classmethod
    def from_string(cls, text: str) -> "LargeCommunity":
        """Parse the ``global:local1:local2`` presentation format."""
        parts = text.strip().split(":")
        if len(parts) != 3:
            raise CommunityError(f"invalid large community {text!r}")
        try:
            a, b, c = (int(p) for p in parts)
        except ValueError as exc:
            raise CommunityError(f"invalid large community {text!r}") from exc
        return cls(a, b, c)

    def __str__(self) -> str:
        return f"{self.global_admin}:{self.local_data1}:{self.local_data2}"


class CommunitySet:
    """An ordered-on-output, duplicate-free set of traditional communities.

    Routers normalise communities by numerically sorting them when
    displaying and sending (Section 6.3 of the paper); this container
    mirrors that: iteration and wire encoding are always in sorted
    order regardless of insertion order.
    """

    __slots__ = ("_communities",)

    def __init__(self, communities: Iterable[Community] = ()):
        self._communities: frozenset[Community] = frozenset(self._coerce(c) for c in communities)

    @staticmethod
    def _coerce(value: Community | str | int) -> Community:
        if isinstance(value, Community):
            return value
        if isinstance(value, str):
            return Community.from_string(value)
        if isinstance(value, int):
            return Community.from_int(value)
        raise CommunityError(f"cannot interpret {value!r} as a community")

    @classmethod
    def of(cls, *communities: Community | str | int) -> "CommunitySet":
        """Build a set from community objects, strings, or raw integers."""
        return cls(cls._coerce(c) for c in communities)

    def add(self, *communities: Community | str | int) -> "CommunitySet":
        """Return a new set with the given communities added."""
        return CommunitySet(list(self._communities) + [self._coerce(c) for c in communities])

    def remove(self, *communities: Community | str | int) -> "CommunitySet":
        """Return a new set with the given communities removed (missing ones ignored)."""
        drop = {self._coerce(c) for c in communities}
        return CommunitySet(c for c in self._communities if c not in drop)

    def remove_asn(self, asn: int) -> "CommunitySet":
        """Return a new set without any community whose ASN part is ``asn``."""
        return CommunitySet(c for c in self._communities if c.asn != asn)

    def keep_asn(self, asn: int) -> "CommunitySet":
        """Return a new set with only communities whose ASN part is ``asn``."""
        return CommunitySet(c for c in self._communities if c.asn == asn)

    def filter(self, predicate) -> "CommunitySet":
        """Return a new set with only communities matching ``predicate``."""
        return CommunitySet(c for c in self._communities if predicate(c))

    def union(self, other: "CommunitySet") -> "CommunitySet":
        """Return the union of two community sets."""
        return CommunitySet(list(self._communities) + list(other._communities))

    def asns(self) -> set[int]:
        """Return the distinct ASN parts present in the set."""
        return {c.asn for c in self._communities}

    def with_asn(self, asn: int) -> list[Community]:
        """Return the communities whose ASN part is ``asn``, sorted."""
        return sorted(c for c in self._communities if c.asn == asn)

    def blackhole_communities(self) -> list[Community]:
        """Return communities that look like blackhole requests (value 666 or RFC 7999)."""
        return sorted(c for c in self._communities if c.is_blackhole or c.has_blackhole_value)

    def __contains__(self, value: Community | str | int) -> bool:
        return self._coerce(value) in self._communities

    def __iter__(self) -> Iterator[Community]:
        return iter(sorted(self._communities))

    def __len__(self) -> int:
        return len(self._communities)

    def __bool__(self) -> bool:
        return bool(self._communities)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CommunitySet):
            return NotImplemented
        return self._communities == other._communities

    def __hash__(self) -> int:
        return hash(self._communities)

    def __str__(self) -> str:
        return "{" + ", ".join(str(c) for c in self) + "}"

    def __repr__(self) -> str:
        return f"CommunitySet({str(self)})"
