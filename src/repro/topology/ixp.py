"""Internet exchange points and their route servers.

IXPs matter to the paper for two reasons: (a) PCH's collectors peer with
IXP route servers, giving visibility into member routes; and (b) route
servers offer community-based redistribution control whose evaluation
order enables the Section 5.3 / 7.5 route-manipulation attack.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bgp.community import Community
from repro.exceptions import TopologyError


@dataclass
class RouteServerConfig:
    """Community semantics of an IXP route server.

    Redistribution control uses the conventional encodings:

    * ``ixp_asn:peer_asn`` — announce this route to ``peer_asn`` only;
    * ``0:peer_asn`` — do NOT announce this route to ``peer_asn``;
    * ``ixp_asn:ixp_asn`` — announce to all members (default behaviour);
    * ``0:ixp_asn`` — do not announce to any member.

    ``suppress_before_redistribute`` captures the evaluation order the
    paper verified at a large IXP: the "do not announce" rule is applied
    before the "announce" rule, so conflicting communities suppress the
    route (Section 7.5).
    """

    ixp_asn: int
    suppress_before_redistribute: bool = True
    #: If True the route server strips its own control communities before
    #: redistributing routes to members (common practice).
    strip_control_communities: bool = True

    def announce_to(self, peer_asn: int) -> Community:
        """Community requesting redistribution to ``peer_asn``."""
        return Community(self.ixp_asn, peer_asn)

    def suppress_to(self, peer_asn: int) -> Community:
        """Community requesting suppression towards ``peer_asn``."""
        return Community(0, peer_asn)

    def announce_to_all(self) -> Community:
        """Community requesting redistribution to every member."""
        return Community(self.ixp_asn, self.ixp_asn)

    def suppress_to_all(self) -> Community:
        """Community requesting suppression towards every member."""
        return Community(0, self.ixp_asn)

    def is_control_community(self, community: Community) -> bool:
        """True if the community addresses this route server."""
        return community.asn in (self.ixp_asn, 0)


@dataclass
class Ixp:
    """An Internet exchange point with a route server and a member list."""

    name: str
    route_server_asn: int
    members: set[int] = field(default_factory=set)
    route_server_config: RouteServerConfig | None = None

    def __post_init__(self) -> None:
        if self.route_server_config is None:
            self.route_server_config = RouteServerConfig(ixp_asn=self.route_server_asn)
        if self.route_server_config.ixp_asn != self.route_server_asn:
            raise TopologyError(
                f"route server config ASN {self.route_server_config.ixp_asn} does not match "
                f"IXP route server ASN {self.route_server_asn}"
            )

    def add_member(self, asn: int) -> None:
        """Connect an AS to the exchange."""
        if asn == self.route_server_asn:
            raise TopologyError("the route server AS cannot be its own member")
        self.members.add(asn)

    def is_member(self, asn: int) -> bool:
        """True if the AS peers at this exchange."""
        return asn in self.members

    def member_count(self) -> int:
        """Number of member ASes."""
        return len(self.members)

    def __str__(self) -> str:
        return f"{self.name} (RS AS{self.route_server_asn}, {len(self.members)} members)"
