"""Graph queries over a :class:`~repro.topology.topology.Topology`.

Provides role classification (origin/transit/stub, mirroring the paper's
Table 1 columns), valley-free path enumeration used by the dataset
generator to produce realistic AS paths, and transit-degree helpers.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator

from repro.exceptions import TopologyError
from repro.topology.asys import AsRole
from repro.topology.relationships import Relationship
from repro.topology.topology import Topology


def classify_roles(topology: Topology) -> dict[int, AsRole]:
    """Classify each AS as TIER1, TRANSIT, or STUB from the relationship graph.

    * An AS with no providers and at least one customer is a tier-1.
    * An AS with at least one customer is a transit AS.
    * Everything else is a stub.

    IXP route-server and collector roles are preserved if already set on
    the AS objects (they are organisational facts, not derivable from
    the graph).
    """
    roles: dict[int, AsRole] = {}
    for asys in topology:
        if asys.role in (AsRole.IXP, AsRole.COLLECTOR):
            roles[asys.asn] = asys.role
            continue
        customers = topology.customers(asys.asn)
        providers = topology.providers(asys.asn)
        if customers and not providers:
            roles[asys.asn] = AsRole.TIER1
        elif customers:
            roles[asys.asn] = AsRole.TRANSIT
        else:
            roles[asys.asn] = AsRole.STUB
    return roles


def transit_degree(topology: Topology, asn: int) -> int:
    """Return the number of customers of ``asn`` (its transit degree)."""
    return len(topology.customers(asn))


def _export_allowed(relationship_in: Relationship | None, relationship_out: Relationship) -> bool:
    """Gao-Rexford export rule.

    ``relationship_in`` is how the route was learned (None for
    originated routes); ``relationship_out`` is the neighbor class the
    route would be exported to, both from the exporting AS's point of
    view.  Routes learned from providers or peers are exported only to
    customers.
    """
    if relationship_in is None or relationship_in == Relationship.CUSTOMER:
        return True
    return relationship_out == Relationship.CUSTOMER


def valley_free_paths(
    topology: Topology, origin_asn: int, max_length: int = 10
) -> dict[int, list[int]]:
    """Return one valley-free path from every reachable AS back to ``origin_asn``.

    The result maps each AS to the AS path *as observed at that AS*
    (most recent AS first, origin last), matching the convention of
    :class:`repro.bgp.aspath.ASPath`.  Path selection follows the usual
    preference order — customer routes over peer routes over provider
    routes, then shortest path — which is the same order the full
    routing simulator uses, so generator paths and simulator paths
    agree.
    """
    if origin_asn not in topology:
        raise TopologyError(f"origin AS{origin_asn} not in topology")

    # preference: learned-from relationship from the *receiving* AS's view.
    # Customer routes (relationship CUSTOMER) are most preferred.
    preference_rank = {
        Relationship.CUSTOMER: 0,
        Relationship.PEER: 1,
        Relationship.PROVIDER: 2,
    }

    # state per AS: (preference rank, path length, path list, learned-from relationship)
    best: dict[int, tuple[int, int, list[int]]] = {origin_asn: (0, 0, [origin_asn])}
    learned_via: dict[int, Relationship | None] = {origin_asn: None}
    queue: deque[int] = deque([origin_asn])

    while queue:
        current = queue.popleft()
        current_rank, current_length, current_path = best[current]
        incoming = learned_via[current]
        for neighbor in topology.neighbors(current):
            if neighbor in current_path:
                continue
            # Relationship of the neighbor from current's point of view decides export.
            rel_out = topology.relationship(current, neighbor)
            if rel_out is None:
                continue
            if not _export_allowed(incoming, rel_out):
                continue
            # From the neighbor's point of view, how is the route learned?
            rel_in_at_neighbor = topology.relationship(neighbor, current)
            if rel_in_at_neighbor is None:
                continue
            candidate_rank = preference_rank[rel_in_at_neighbor]
            candidate_length = current_length + 1
            if candidate_length > max_length:
                continue
            candidate_path = [neighbor] + current_path
            candidate = (candidate_rank, candidate_length, candidate_path)
            existing = best.get(neighbor)
            if existing is None or (candidate_rank, candidate_length) < (existing[0], existing[1]):
                best[neighbor] = candidate
                learned_via[neighbor] = rel_in_at_neighbor
                queue.append(neighbor)
    return {asn: path for asn, (_rank, _length, path) in best.items()}


def shortest_valley_free_path(
    topology: Topology, from_asn: int, to_origin_asn: int, max_length: int = 10
) -> list[int] | None:
    """Return the valley-free path from ``from_asn`` towards ``to_origin_asn``.

    Returns None if no valley-free path exists within ``max_length`` hops.
    """
    paths = valley_free_paths(topology, to_origin_asn, max_length)
    return paths.get(from_asn)


def reachable_ases(topology: Topology, origin_asn: int, max_length: int = 10) -> set[int]:
    """Return the set of ASes that receive a route originated at ``origin_asn``."""
    return set(valley_free_paths(topology, origin_asn, max_length))


def iter_provider_chains(topology: Topology, asn: int, max_depth: int = 6) -> Iterator[list[int]]:
    """Yield provider chains (asn, provider, provider-of-provider, ...) upwards."""
    stack: list[list[int]] = [[asn]]
    while stack:
        chain = stack.pop()
        yield chain
        if len(chain) > max_depth:
            continue
        for provider in topology.providers(chain[-1]):
            if provider not in chain:
                stack.append(chain + [provider])
