"""AS business relationships and the CAIDA serialisation format.

The paper uses the CAIDA AS-relationship dataset to classify AS edges
into customer-provider and peer-peer links (Section 4.4).  This module
models the relationship types, a dataset container, and the standard
``<provider>|<customer>|-1`` / ``<peer>|<peer>|0`` text format so real
CAIDA files can be loaded alongside generated topologies.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from pathlib import Path
from typing import Iterable, Iterator

from repro.exceptions import TopologyError


class Relationship(IntEnum):
    """Business relationship of an AS edge, from the first AS's point of view."""

    #: The other AS is my customer (I provide transit to them).
    CUSTOMER = -1
    #: The other AS is a settlement-free peer.
    PEER = 0
    #: The other AS is my provider (they provide transit to me).
    PROVIDER = 1

    def inverse(self) -> "Relationship":
        """Return the relationship from the other AS's point of view."""
        if self == Relationship.CUSTOMER:
            return Relationship.PROVIDER
        if self == Relationship.PROVIDER:
            return Relationship.CUSTOMER
        return Relationship.PEER


@dataclass(frozen=True)
class RelationshipEdge:
    """A directed relationship record: ``asn_a`` sees ``asn_b`` as ``relationship``."""

    asn_a: int
    asn_b: int
    relationship: Relationship


def parse_caida_line(line: str) -> RelationshipEdge | None:
    """Parse one line of a CAIDA as-rel file; return None for comments/blank lines.

    Format: ``provider|customer|-1`` or ``peer|peer|0`` (optionally with a
    trailing source field).
    """
    line = line.strip()
    if not line or line.startswith("#"):
        return None
    parts = line.split("|")
    if len(parts) < 3:
        raise TopologyError(f"malformed CAIDA relationship line {line!r}")
    try:
        asn_a, asn_b, code = int(parts[0]), int(parts[1]), int(parts[2])
    except ValueError as exc:
        raise TopologyError(f"malformed CAIDA relationship line {line!r}") from exc
    if code == -1:
        # asn_a is the provider of asn_b: from asn_a's view, asn_b is a customer.
        return RelationshipEdge(asn_a, asn_b, Relationship.CUSTOMER)
    if code == 0:
        return RelationshipEdge(asn_a, asn_b, Relationship.PEER)
    raise TopologyError(f"unknown relationship code {code} in line {line!r}")


def format_caida_line(edge: RelationshipEdge) -> str:
    """Serialise one relationship edge into CAIDA as-rel format."""
    if edge.relationship == Relationship.CUSTOMER:
        return f"{edge.asn_a}|{edge.asn_b}|-1"
    if edge.relationship == Relationship.PEER:
        return f"{edge.asn_a}|{edge.asn_b}|0"
    # A PROVIDER edge is written from the provider's side.
    return f"{edge.asn_b}|{edge.asn_a}|-1"


class RelationshipDataset:
    """A symmetric store of AS relationships, queried from either endpoint."""

    def __init__(self):
        self._relationships: dict[tuple[int, int], Relationship] = {}

    def add(self, asn_a: int, asn_b: int, relationship: Relationship) -> None:
        """Record that, from ``asn_a``'s view, ``asn_b`` is ``relationship``."""
        if asn_a == asn_b:
            raise TopologyError(f"AS{asn_a} cannot have a relationship with itself")
        existing = self._relationships.get((asn_a, asn_b))
        if existing is not None and existing != relationship:
            raise TopologyError(
                f"conflicting relationship for AS{asn_a}-AS{asn_b}: "
                f"{existing.name} vs {relationship.name}"
            )
        self._relationships[(asn_a, asn_b)] = relationship
        self._relationships[(asn_b, asn_a)] = relationship.inverse()

    def get(self, asn_a: int, asn_b: int) -> Relationship | None:
        """Return the relationship from ``asn_a``'s view of ``asn_b`` (None if no edge)."""
        return self._relationships.get((asn_a, asn_b))

    def has_edge(self, asn_a: int, asn_b: int) -> bool:
        """Return True if the two ASes are adjacent."""
        return (asn_a, asn_b) in self._relationships

    def neighbors(self, asn: int) -> list[int]:
        """Return every AS adjacent to ``asn``."""
        return sorted({b for (a, b) in self._relationships if a == asn})

    def customers(self, asn: int) -> list[int]:
        """Return the customers of ``asn``."""
        return sorted(
            b
            for (a, b), rel in self._relationships.items()
            if a == asn and rel == Relationship.CUSTOMER
        )

    def providers(self, asn: int) -> list[int]:
        """Return the providers of ``asn``."""
        return sorted(
            b
            for (a, b), rel in self._relationships.items()
            if a == asn and rel == Relationship.PROVIDER
        )

    def peers(self, asn: int) -> list[int]:
        """Return the settlement-free peers of ``asn``."""
        return sorted(
            b
            for (a, b), rel in self._relationships.items()
            if a == asn and rel == Relationship.PEER
        )

    def edges(self) -> Iterator[RelationshipEdge]:
        """Yield each undirected edge exactly once (customer/peer orientation)."""
        seen: set[frozenset[int]] = set()
        for (asn_a, asn_b), relationship in sorted(self._relationships.items()):
            key = frozenset((asn_a, asn_b))
            if key in seen:
                continue
            seen.add(key)
            if relationship == Relationship.PROVIDER:
                # Emit from the provider's side for a canonical orientation.
                yield RelationshipEdge(asn_b, asn_a, Relationship.CUSTOMER)
            else:
                yield RelationshipEdge(asn_a, asn_b, relationship)

    def edge_count(self) -> int:
        """Return the number of undirected AS edges."""
        return len(self._relationships) // 2

    def asns(self) -> set[int]:
        """Return every AS that appears in at least one edge."""
        return {a for (a, _b) in self._relationships}

    @classmethod
    def from_lines(cls, lines: Iterable[str]) -> "RelationshipDataset":
        """Build a dataset from CAIDA as-rel text lines."""
        dataset = cls()
        for line in lines:
            edge = parse_caida_line(line)
            if edge is not None:
                dataset.add(edge.asn_a, edge.asn_b, edge.relationship)
        return dataset

    @classmethod
    def from_file(cls, path: str | Path) -> "RelationshipDataset":
        """Load a CAIDA as-rel file."""
        return cls.from_lines(Path(path).read_text().splitlines())

    def to_lines(self) -> list[str]:
        """Serialise the dataset into CAIDA as-rel lines."""
        return [format_caida_line(edge) for edge in self.edges()]

    def to_file(self, path: str | Path) -> None:
        """Write the dataset to a CAIDA as-rel file."""
        Path(path).write_text("\n".join(self.to_lines()) + "\n")
