"""AS-level Internet topology: relationships, AS nodes, IXPs, generation, queries."""

from repro.topology.relationships import (
    Relationship,
    RelationshipDataset,
    parse_caida_line,
    format_caida_line,
)
from repro.topology.asys import AutonomousSystem, AsRole
from repro.topology.ixp import Ixp, RouteServerConfig
from repro.topology.topology import Topology
from repro.topology.generator import TopologyGenerator, TopologyParameters
from repro.topology.graph import (
    classify_roles,
    valley_free_paths,
    shortest_valley_free_path,
    transit_degree,
)

__all__ = [
    "Relationship",
    "RelationshipDataset",
    "parse_caida_line",
    "format_caida_line",
    "AutonomousSystem",
    "AsRole",
    "Ixp",
    "RouteServerConfig",
    "Topology",
    "TopologyGenerator",
    "TopologyParameters",
    "classify_roles",
    "valley_free_paths",
    "shortest_valley_free_path",
    "transit_degree",
]
