"""The :class:`Topology` container: ASes, relationships, IXPs, prefix ownership."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.bgp.prefix import Prefix
from repro.exceptions import TopologyError
from repro.net.lpm import LpmTable, cached_table
from repro.topology.asys import AsRole, AutonomousSystem
from repro.topology.ixp import Ixp
from repro.topology.relationships import Relationship, RelationshipDataset


@dataclass
class Topology:
    """A full AS-level topology: nodes, business relationships, and IXPs."""

    ases: dict[int, AutonomousSystem] = field(default_factory=dict)
    relationships: RelationshipDataset = field(default_factory=RelationshipDataset)
    ixps: dict[str, Ixp] = field(default_factory=dict)
    #: Cached origin trie over every originated prefix, keyed by a content
    #: fingerprint (AS count, prefix count, order-independent hash mix of
    #: every (asn, prefix) pair) so both the append-only mutation API and
    #: in-place prefix-list edits invalidate it (see
    #: :func:`repro.net.lpm.cached_table`).  Not part of the value
    #: semantics.
    _origin_cache: tuple[tuple[int, int, int], LpmTable] | None = field(
        default=None, init=False, repr=False, compare=False
    )

    # ------------------------------------------------------------------ nodes
    def add_as(self, asys: AutonomousSystem) -> AutonomousSystem:
        """Add an AS (replacing any existing AS with the same number)."""
        self.ases[asys.asn] = asys
        return asys

    def get_as(self, asn: int) -> AutonomousSystem:
        """Return the AS object for ``asn`` or raise :class:`TopologyError`."""
        try:
            return self.ases[asn]
        except KeyError as exc:
            raise TopologyError(f"unknown AS{asn}") from exc

    def has_as(self, asn: int) -> bool:
        """True if the AS exists in the topology."""
        return asn in self.ases

    def asns(self) -> list[int]:
        """Return all AS numbers, sorted."""
        return sorted(self.ases)

    def __len__(self) -> int:
        return len(self.ases)

    def __contains__(self, asn: int) -> bool:
        return asn in self.ases

    def __iter__(self) -> Iterator[AutonomousSystem]:
        return iter(self.ases.values())

    # ------------------------------------------------------------------ edges
    def add_link(self, asn_a: int, asn_b: int, relationship: Relationship) -> None:
        """Add a business relationship edge; both ASes must already exist."""
        if asn_a not in self.ases or asn_b not in self.ases:
            raise TopologyError(f"both AS{asn_a} and AS{asn_b} must exist before linking them")
        self.relationships.add(asn_a, asn_b, relationship)

    def add_customer_link(self, provider: int, customer: int) -> None:
        """Add a provider→customer link."""
        self.add_link(provider, customer, Relationship.CUSTOMER)

    def add_peer_link(self, asn_a: int, asn_b: int) -> None:
        """Add a settlement-free peering link."""
        self.add_link(asn_a, asn_b, Relationship.PEER)

    def neighbors(self, asn: int) -> list[int]:
        """Return every AS adjacent to ``asn``."""
        return self.relationships.neighbors(asn)

    def customers(self, asn: int) -> list[int]:
        """Return the customers of ``asn``."""
        return self.relationships.customers(asn)

    def providers(self, asn: int) -> list[int]:
        """Return the providers of ``asn``."""
        return self.relationships.providers(asn)

    def peers(self, asn: int) -> list[int]:
        """Return the peers of ``asn``."""
        return self.relationships.peers(asn)

    def relationship(self, asn_a: int, asn_b: int) -> Relationship | None:
        """Return the relationship from ``asn_a``'s view of ``asn_b``."""
        return self.relationships.get(asn_a, asn_b)

    def edge_count(self) -> int:
        """Return the number of undirected AS edges."""
        return self.relationships.edge_count()

    # ------------------------------------------------------------------- IXPs
    def add_ixp(self, ixp: Ixp) -> Ixp:
        """Register an IXP (its route server AS must exist in the topology)."""
        if ixp.route_server_asn not in self.ases:
            raise TopologyError(
                f"route server AS{ixp.route_server_asn} of {ixp.name} is not in the topology"
            )
        self.ixps[ixp.name] = ixp
        return ixp

    def ixps_of(self, asn: int) -> list[Ixp]:
        """Return the IXPs where ``asn`` is a member."""
        return [ixp for ixp in self.ixps.values() if ixp.is_member(asn)]

    # --------------------------------------------------------------- prefixes
    def originated_prefixes(self) -> dict[Prefix, int]:
        """Return a map of prefix → origin ASN over all ASes."""
        mapping: dict[Prefix, int] = {}
        for asys in self.ases.values():
            for prefix in asys.prefixes:
                mapping[prefix] = asys.asn
        return mapping

    def origin_table(self) -> LpmTable:
        """The per-family LPM trie of every originated prefix → origin ASN.

        Built once and cached; repeated ownership/overlap queries
        (:meth:`origin_of`, the hijack-overlap checks in
        :mod:`repro.attacks`) walk the trie instead of scanning every
        AS's prefix list.  The fingerprint mixes every (asn, prefix)
        pair through an explicit 64-bit integer mix — O(total prefixes)
        per call, but re-validating is far cheaper than rebuilding the
        trie — so even an in-place prefix swap invalidates the cache.
        The mix deliberately avoids builtin ``hash()`` so the
        fingerprint is identical across interpreter runs.
        """
        count = 0
        mix = 0
        for asys in self.ases.values():
            count += len(asys.prefixes)
            asn = asys.asn
            for prefix in asys.prefixes:
                # Order-independent accumulation: additions, removals and
                # re-homed prefixes all perturb the sum.
                word = (
                    asn * 0x9E3779B97F4A7C15
                    + prefix.network * 0xBF58476D1CE4E5B9
                    + prefix.length * 0x94D049BB133111EB
                    + int(prefix.family)
                ) & 0xFFFFFFFFFFFFFFFF
                word ^= word >> 29
                mix = (mix + word) & 0xFFFFFFFFFFFFFFFF
        self._origin_cache, table = cached_table(
            self._origin_cache,
            (len(self.ases), count, mix),
            (
                (prefix, asys.asn)
                for asys in self.ases.values()
                for prefix in asys.prefixes
            ),
        )
        return table

    def origin_of(self, prefix: Prefix) -> int | None:
        """Return the legitimate origin of ``prefix`` (longest covering match)."""
        covering = self.origin_table().covering(prefix)
        # ``covering`` is ordered least specific first.
        return covering[-1][1] if covering else None

    # ------------------------------------------------------------------ roles
    def by_role(self, role: AsRole) -> list[AutonomousSystem]:
        """Return all ASes with the given role."""
        return [asys for asys in self.ases.values() if asys.role == role]

    def transit_ases(self) -> list[AutonomousSystem]:
        """Return transit ASes (including tier-1s)."""
        return [asys for asys in self.ases.values() if asys.is_transit]

    def stub_ases(self) -> list[AutonomousSystem]:
        """Return stub ASes."""
        return [asys for asys in self.ases.values() if asys.is_stub]

    def summary(self) -> dict[str, int]:
        """Return headline counts (ASes, edges, IXPs, prefixes)."""
        return {
            "ases": len(self.ases),
            "edges": self.edge_count(),
            "ixps": len(self.ixps),
            "prefixes": sum(len(a.prefixes) for a in self.ases.values()),
            "transit": len(self.transit_ases()),
            "stub": len(self.stub_ases()),
        }

    def validate(self) -> list[str]:
        """Return a list of consistency problems (empty when the topology is sound)."""
        problems: list[str] = []
        for asn in self.relationships.asns():
            if asn not in self.ases:
                problems.append(f"relationship references unknown AS{asn}")
        for ixp in self.ixps.values():
            for member in ixp.members:
                if member not in self.ases:
                    problems.append(f"IXP {ixp.name} has unknown member AS{member}")
        seen_prefixes: dict[Prefix, int] = {}
        for asys in self.ases.values():
            for prefix in asys.prefixes:
                if prefix in seen_prefixes and seen_prefixes[prefix] != asys.asn:
                    problems.append(
                        f"prefix {prefix} originated by both AS{seen_prefixes[prefix]} "
                        f"and AS{asys.asn}"
                    )
                seen_prefixes[prefix] = asys.asn
        return problems

    def subgraph_asns(self, asns: Iterable[int]) -> "Topology":
        """Return a copy restricted to the given ASes (links between them kept)."""
        wanted = set(asns)
        sub = Topology()
        for asn in wanted:
            if asn in self.ases:
                sub.add_as(self.ases[asn])
        for edge in self.relationships.edges():
            if edge.asn_a in wanted and edge.asn_b in wanted:
                sub.relationships.add(edge.asn_a, edge.asn_b, edge.relationship)
        return sub
