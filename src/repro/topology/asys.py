"""The per-AS node model.

An :class:`AutonomousSystem` holds the organisational facts the
simulator and the dataset generator need: originated prefixes, the
community services it offers, its community propagation policy, the
vendor profile of its routers, and whether it validates origins against
the IRR.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING

from repro.bgp.prefix import Prefix

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance for type checkers only
    from repro.policy.community_policy import CommunityPropagationPolicy
    from repro.policy.services import CommunityServiceCatalog
    from repro.policy.vendor import VendorProfile


class AsRole(str, Enum):
    """Topological role of an AS, mirroring the paper's Table 1 columns."""

    #: Originates at least one prefix (almost every AS).
    ORIGIN = "origin"
    #: Appears on at least one path as neither origin nor collector peer.
    TRANSIT = "transit"
    #: Never provides transit: only originates its own prefixes.
    STUB = "stub"
    #: A tier-1 transit-free provider.
    TIER1 = "tier1"
    #: An IXP route-server AS (off-path by convention).
    IXP = "ixp"
    #: A route collector AS.
    COLLECTOR = "collector"


@dataclass
class AutonomousSystem:
    """One AS in the simulated Internet."""

    asn: int
    name: str = ""
    role: AsRole = AsRole.STUB
    prefixes: list[Prefix] = field(default_factory=list)
    #: The community propagation policy applied when exporting routes.
    propagation_policy: "CommunityPropagationPolicy | None" = None
    #: The community-triggered services this AS offers to neighbors.
    services: "CommunityServiceCatalog | None" = None
    #: The router vendor profile (Cisco-like, Juniper-like, ...).
    vendor: "VendorProfile | None" = None
    #: Whether this AS validates announcement origins against the IRR.
    validates_origin: bool = False
    #: Whether the RTBH route-map is evaluated before origin validation
    #: (the misconfiguration highlighted in Section 6.3 of the paper).
    blackhole_before_validation: bool = False
    #: Whether this AS accepts traffic-steering communities from peers and
    #: providers too, or (the common case per Section 7.4) only from customers.
    act_on_communities_from_any_neighbor: bool = False
    #: Maximum accepted prefix length for regular announcements (Section 7.3).
    max_prefix_length: int = 24
    #: Maximum accepted prefix length for blackhole announcements.
    max_blackhole_prefix_length: int = 32
    #: Cached ownership trie over ``prefixes``, keyed by a content
    #: fingerprint so in-place list edits invalidate it too.  Not part
    #: of the value semantics.
    _prefix_cache: "tuple[tuple, object] | None" = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.asn <= 0:
            raise ValueError(f"ASN must be positive, got {self.asn}")
        if not self.name:
            self.name = f"AS{self.asn}"

    @property
    def is_transit(self) -> bool:
        """True if the AS provides transit (tier-1s are transit ASes too)."""
        return self.role in (AsRole.TRANSIT, AsRole.TIER1)

    @property
    def is_stub(self) -> bool:
        """True for stub (non-transit) ASes."""
        return self.role == AsRole.STUB

    def originates(self, prefix: Prefix) -> bool:
        """True if this AS legitimately originates ``prefix`` (or a covering prefix).

        Trie-backed: the ownership check walks this AS's per-family LPM
        table instead of scanning the prefix list, so hijack-overlap
        checks stay O(prefix length) however many prefixes an AS owns.
        """
        return bool(self._prefix_table().covering(prefix))

    def _prefix_table(self):
        """The cached LPM trie over this AS's originated prefixes.

        The fingerprint is the full prefix tuple (the lists are tiny),
        so any mutation — append or in-place edit — rebuilds the trie.
        """
        from repro.net.lpm import cached_table

        self._prefix_cache, table = cached_table(
            self._prefix_cache,
            tuple(self.prefixes),
            ((prefix, self.asn) for prefix in self.prefixes),
        )
        return table

    def add_prefix(self, prefix: Prefix) -> None:
        """Register an originated prefix."""
        if prefix not in self.prefixes:
            self.prefixes.append(prefix)

    def __str__(self) -> str:
        return f"AS{self.asn} ({self.role.value})"

    def __repr__(self) -> str:
        return f"AutonomousSystem(asn={self.asn}, role={self.role.value})"
