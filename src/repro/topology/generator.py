"""Internet-like AS topology generation.

The generator produces the substrate the paper's measurement rests on: a
hierarchical, Gao-Rexford-compatible AS graph (tier-1 clique, transit
providers, stubs), IXPs with route servers, prefix allocations, and —
crucially — per-AS community behaviour: which ASes offer community
services, which propagate foreign communities, which strip them, which
vendor profile their routers run, and which validate origins.

Every random decision is drawn from a :class:`DeterministicRng` child
stream so a given parameter set always yields the same Internet.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bgp.prefix import AddressFamily, Prefix
from repro.exceptions import TopologyError
from repro.policy.community_policy import (
    CommunityPropagationPolicy,
    ForwardAllPolicy,
    SelectivePolicy,
    StripAllPolicy,
    StripOwnPolicy,
)
from repro.policy.services import CommunityServiceCatalog
from repro.policy.vendor import CISCO_PROFILE, JUNIPER_PROFILE
from repro.topology.asys import AsRole, AutonomousSystem
from repro.topology.ixp import Ixp, RouteServerConfig
from repro.topology.topology import Topology
from repro.utils.rand import DeterministicRng


@dataclass
class PolicyMix:
    """Fractions of ASes using each community propagation behaviour.

    The paper's Section 4.4 finds a mixed picture; the defaults below
    reproduce its headline numbers (≈14 % of transit ASes forward
    foreign communities, many strip everything, and a large middle
    ground behaves selectively).
    """

    forward_all: float = 0.30
    strip_own: float = 0.25
    selective: float = 0.25
    strip_all: float = 0.20

    def __post_init__(self) -> None:
        total = self.forward_all + self.strip_own + self.selective + self.strip_all
        if abs(total - 1.0) > 1e-6:
            raise TopologyError(f"policy mix fractions must sum to 1.0, got {total}")


@dataclass
class TopologyParameters:
    """Knobs of the topology generator."""

    tier1_count: int = 5
    transit_count: int = 60
    stub_count: int = 300
    ixp_count: int = 3
    ixp_member_fraction: float = 0.15
    #: Probability that a transit AS peers with another transit AS.
    transit_peering_probability: float = 0.08
    #: Providers per transit AS (1..max).
    max_transit_providers: int = 2
    #: Providers per stub AS (1..max).
    max_stub_providers: int = 2
    #: Fraction of transit ASes offering community services (prepend/local-pref/RTBH).
    service_fraction: float = 0.6
    #: Fraction of ASes running Juniper-like (propagate-by-default) routers.
    juniper_fraction: float = 0.5
    #: Fraction of ASes validating origins against the IRR.
    origin_validation_fraction: float = 0.3
    #: Fraction of validating ASes with the blackhole-before-validation misconfig.
    misconfiguration_fraction: float = 0.2
    #: Prefixes per AS (1..max, Pareto distributed).
    max_prefixes_per_as: int = 4
    #: Fraction of ASes that also originate an IPv6 prefix (Table 1: ~8 % of prefixes).
    ipv6_fraction: float = 0.2
    policy_mix: PolicyMix = field(default_factory=PolicyMix)
    seed: int = 42

    @property
    def total_ases(self) -> int:
        """Total number of ASes the generator will create (excluding IXP route servers)."""
        return self.tier1_count + self.transit_count + self.stub_count


class TopologyGenerator:
    """Generates a :class:`Topology` from :class:`TopologyParameters`."""

    #: First ASN handed out; IXP route servers get ASNs in a separate range.
    FIRST_ASN = 100
    IXP_ASN_BASE = 60000

    def __init__(self, parameters: TopologyParameters | None = None):
        self.parameters = parameters or TopologyParameters()
        self._rng = DeterministicRng(self.parameters.seed)

    # ------------------------------------------------------------------ build
    def generate(self) -> Topology:
        """Generate the full topology."""
        params = self.parameters
        topology = Topology()
        tier1_asns = self._create_ases(topology, params.tier1_count, AsRole.TIER1, self.FIRST_ASN)
        transit_asns = self._create_ases(
            topology, params.transit_count, AsRole.TRANSIT, self.FIRST_ASN + 1000
        )
        stub_asns = self._create_ases(
            topology, params.stub_count, AsRole.STUB, self.FIRST_ASN + 10000
        )

        self._link_tier1_clique(topology, tier1_asns)
        self._link_transit(topology, tier1_asns, transit_asns)
        self._link_stubs(topology, transit_asns + tier1_asns, stub_asns)
        self._create_ixps(topology, transit_asns + stub_asns)
        self._allocate_prefixes(topology)
        self._assign_policies(topology)
        self._assign_services(topology)
        return topology

    # ------------------------------------------------------------------ nodes
    def _create_ases(
        self, topology: Topology, count: int, role: AsRole, base_asn: int
    ) -> list[int]:
        asns = []
        for i in range(count):
            asn = base_asn + i
            topology.add_as(AutonomousSystem(asn=asn, role=role))
            asns.append(asn)
        return asns

    # ------------------------------------------------------------------ links
    def _link_tier1_clique(self, topology: Topology, tier1_asns: list[int]) -> None:
        for i, asn_a in enumerate(tier1_asns):
            for asn_b in tier1_asns[i + 1:]:
                topology.add_peer_link(asn_a, asn_b)

    def _link_transit(
        self, topology: Topology, tier1_asns: list[int], transit_asns: list[int]
    ) -> None:
        rng = self._rng.child("transit-links")
        params = self.parameters
        for index, asn in enumerate(transit_asns):
            # Candidate providers: tier-1s plus transit ASes created earlier
            # (earlier ASes sit higher in the hierarchy).
            candidates = tier1_asns + transit_asns[:index]
            provider_count = rng.randint(1, params.max_transit_providers)
            for provider in rng.sample(candidates, provider_count):
                if not topology.relationships.has_edge(provider, asn):
                    topology.add_customer_link(provider, asn)
            # Lateral peering among transit ASes.
            for other in transit_asns[:index]:
                if other != asn and not topology.relationships.has_edge(other, asn):
                    if rng.chance(params.transit_peering_probability):
                        topology.add_peer_link(other, asn)

    def _link_stubs(
        self, topology: Topology, provider_pool: list[int], stub_asns: list[int]
    ) -> None:
        rng = self._rng.child("stub-links")
        params = self.parameters
        for asn in stub_asns:
            provider_count = rng.randint(1, params.max_stub_providers)
            for provider in rng.sample(provider_pool, provider_count):
                if not topology.relationships.has_edge(provider, asn):
                    topology.add_customer_link(provider, asn)

    # ------------------------------------------------------------------- IXPs
    def _create_ixps(self, topology: Topology, member_pool: list[int]) -> None:
        rng = self._rng.child("ixps")
        params = self.parameters
        for i in range(params.ixp_count):
            rs_asn = self.IXP_ASN_BASE + i
            topology.add_as(AutonomousSystem(asn=rs_asn, role=AsRole.IXP, name=f"IXP-{i}-RS"))
            member_count = max(2, int(len(member_pool) * params.ixp_member_fraction))
            members = rng.sample(member_pool, member_count)
            ixp = Ixp(
                name=f"IXP-{i}",
                route_server_asn=rs_asn,
                members=set(members),
                route_server_config=RouteServerConfig(ixp_asn=rs_asn),
            )
            topology.add_ixp(ixp)

    # --------------------------------------------------------------- prefixes
    def _allocate_prefixes(self, topology: Topology) -> None:
        rng = self._rng.child("prefixes")
        params = self.parameters
        next_slash16 = 1 << 24  # start at 1.0.0.0
        next_v6_block = 0x2001 << 112  # start at 2001::/16 space
        for asn in topology.asns():
            asys = topology.get_as(asn)
            if asys.role == AsRole.IXP:
                continue
            prefix_count = rng.pareto_int(1.8, 1, params.max_prefixes_per_as)
            for _ in range(prefix_count):
                prefix = Prefix(AddressFamily.IPV4, next_slash16, 16)
                asys.add_prefix(prefix)
                next_slash16 += 1 << 16
            if rng.chance(params.ipv6_fraction):
                prefix = Prefix(AddressFamily.IPV6, next_v6_block, 32)
                asys.add_prefix(prefix)
                next_v6_block += 1 << 96

    # --------------------------------------------------------------- policies
    def _propagation_policy_for(
        self, rng: DeterministicRng, asys: AutonomousSystem, topology: Topology
    ) -> CommunityPropagationPolicy:
        mix = self.parameters.policy_mix
        roll = rng.random()
        if roll < mix.forward_all:
            return ForwardAllPolicy()
        roll -= mix.forward_all
        if roll < mix.strip_own:
            return StripOwnPolicy()
        roll -= mix.strip_own
        if roll < mix.selective:
            neighbors = topology.neighbors(asys.asn)
            customers = set(topology.customers(asys.asn))
            # Forward to customers (and a random subset of other neighbors).
            forward_to = set(customers)
            for neighbor in neighbors:
                if neighbor not in customers and rng.chance(0.3):
                    forward_to.add(neighbor)
            return SelectivePolicy(forward_to_neighbors=frozenset(forward_to))
        return StripAllPolicy()

    def _assign_policies(self, topology: Topology) -> None:
        rng = self._rng.child("policies")
        params = self.parameters
        for asn in topology.asns():
            asys = topology.get_as(asn)
            if asys.role == AsRole.IXP:
                asys.propagation_policy = ForwardAllPolicy()
                asys.vendor = JUNIPER_PROFILE
                continue
            asys.propagation_policy = self._propagation_policy_for(rng, asys, topology)
            asys.vendor = (
                JUNIPER_PROFILE if rng.chance(params.juniper_fraction) else CISCO_PROFILE
            )
            asys.validates_origin = rng.chance(params.origin_validation_fraction)
            if asys.validates_origin:
                asys.blackhole_before_validation = rng.chance(params.misconfiguration_fraction)

    def _assign_services(self, topology: Topology) -> None:
        rng = self._rng.child("services")
        params = self.parameters
        for asys in topology.transit_ases():
            if rng.chance(params.service_fraction):
                asys.services = CommunityServiceCatalog.standard_transit_catalog(asys.asn)
        for ixp in topology.ixps.values():
            rs = topology.get_as(ixp.route_server_asn)
            rs.services = CommunityServiceCatalog.ixp_route_server_catalog(
                ixp.route_server_asn, ixp.members
            )
