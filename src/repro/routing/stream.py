"""Streaming event front end: feed/drain with per-prefix coalescing.

The paper's measurement pipeline is a continuous feed of BGP
announce/withdraw churn observed at collectors.  This module is the
incremental entry point over the batch engine for that shape of input:

* :class:`SimulatorService` wraps a :class:`BgpSimulator` and accepts
  events one at a time or in chunks (:meth:`SimulatorService.feed`),
  **coalescing** per-origin bursts before anything converges: within
  the buffered window only the *last* event per ``(origin, prefix)``
  key survives — the way a real BGP session's rapid re-announcements
  collapse into the latest state, since an UPDATE for a prefix
  implicitly replaces its predecessor.  When the buffer reaches the
  window size it drains automatically; :meth:`SimulatorService.drain`
  flushes the remainder.
* A drain hands the coalesced batch to :meth:`BgpSimulator.apply`, so
  it inherits the full scheduler — sequential core, resident sharded
  service, ``"auto"`` policy — unchanged.
* :func:`parse_event` / :func:`read_event_stream` decode the JSON-lines
  wire format the ``repro-bgp stream`` CLI reads (one object per line:
  ``{"origin": 65001, "prefix": "10.0.0.0/24", "withdraw": false,
  "communities": ["65001:666"], "spoofed_origin": 0}`` — only
  ``origin`` and ``prefix`` are required).

Equivalence contract: coalescing never changes the *converged* state.
The engine's batch semantics make a batch a net state change, and the
final Loc-RIBs/FIBs depend only on the final origination state — so a
coalesced stream converges to exactly the Loc-RIBs and FIBs of the
uncoalesced event-by-event run (the per-run reports differ, of course:
fewer events are processed).  ``tests/test_stream.py`` holds a
property-style test of exactly that.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.bgp.community import CommunitySet
from repro.bgp.prefix import Prefix
from repro.exceptions import CommunityError, PrefixError, RoutingError
from repro.routing.engine import RoutingEvent, SimulationReport

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance
    from repro.routing.engine import BgpSimulator

#: Default number of buffered (origin, prefix) keys that triggers an
#: automatic drain.  Matches the engine's auto-shard threshold so a
#: full window is exactly a batch worth sharding.
DEFAULT_WINDOW = 256


@dataclass
class StreamStats:
    """Counters over a service's lifetime."""

    #: Events handed to :meth:`SimulatorService.feed`.
    events_seen: int = 0
    #: Events dropped by last-writer-wins coalescing (superseded by a
    #: later event for the same (origin, prefix) within their window).
    events_coalesced: int = 0
    #: Batches handed to the engine (automatic and explicit drains).
    batches: int = 0

    @property
    def events_applied(self) -> int:
        """Events that actually reached the engine."""
        return self.events_seen - self.events_coalesced


def coalesce_events(events: Iterable[RoutingEvent]) -> list[RoutingEvent]:
    """Collapse a burst to its net updates: last writer wins per (origin, prefix).

    Keys keep their first-seen position (the surviving event replaces
    its predecessor in place), so the coalesced batch seeds prefixes in
    the same relative order the uncoalesced stream would have.
    """
    pending: dict[tuple[int, Prefix], RoutingEvent] = {}
    for event in events:
        pending[(event.origin_asn, event.prefix)] = event
    return list(pending.values())


class SimulatorService:
    """A feed/drain streaming client over one simulator.

    The service buffers incoming events and coalesces them per
    ``(origin, prefix)`` key; a batch goes to the engine when the
    buffer holds ``window`` distinct keys (or on an explicit
    :meth:`drain`).  Used as a context manager it drains on clean exit,
    so no buffered event is silently dropped.
    """

    def __init__(
        self,
        simulator: "BgpSimulator",
        window: int = DEFAULT_WINDOW,
        shards: int | str | None = None,
        residency: str | None = None,
    ):
        if window < 1:
            raise RoutingError(f"stream window must be >= 1, got {window}")
        self.simulator = simulator
        self.window = window
        #: Per-drain shard policy override (None: the simulator's own).
        self.shards = shards
        #: Residency policy scoped over the service's context-manager
        #: lifetime (None: whatever provider is already active).  A
        #: long-running stream daemon under ``"auto"``/``"pinned"`` keeps
        #: its workers warm across simulator close/re-acquire cycles.
        self.residency = residency
        self.stats = StreamStats()
        self._pending: dict[tuple[int, Prefix], RoutingEvent] = {}
        self._residency_scope = None

    def pending_events(self) -> list[RoutingEvent]:
        """The currently buffered (already coalesced) events, in order."""
        return list(self._pending.values())

    def feed(self, events: Iterable[RoutingEvent] | RoutingEvent) -> list[SimulationReport]:
        """Buffer events, draining every time the window fills.

        Returns the reports of the drains this call triggered (often
        none — the common case is pure buffering).
        """
        if isinstance(events, RoutingEvent):
            events = (events,)
        reports: list[SimulationReport] = []
        for event in events:
            self.stats.events_seen += 1
            key = (event.origin_asn, event.prefix)
            if key in self._pending:
                self.stats.events_coalesced += 1
            self._pending[key] = event
            if len(self._pending) >= self.window:
                reports.append(self.drain())
        return reports

    def drain(self) -> SimulationReport:
        """Converge everything buffered; returns the batch's report.

        Draining an empty buffer is a no-op that returns an empty
        report (so periodic timers can call it unconditionally).
        """
        batch, self._pending = list(self._pending.values()), {}
        if not batch:
            return SimulationReport()
        self.stats.batches += 1
        report = self.simulator.apply(batch, shards=self.shards)
        if os.environ.get("REPRO_SANITIZE", "") not in ("", "0"):
            from repro.analysis.sanitizer import check_drain

            check_drain(self.simulator)
        return report

    def __enter__(self) -> "SimulatorService":
        if self.residency is not None:
            from repro.routing.residency import residency_scope

            self._residency_scope = residency_scope(self.residency)
            self._residency_scope.__enter__()
        return self

    def __exit__(self, exc_type, _exc, _tb) -> None:
        try:
            if exc_type is None:
                self.drain()
        finally:
            scope, self._residency_scope = self._residency_scope, None
            if scope is not None:
                scope.__exit__(exc_type, _exc, _tb)


# ------------------------------------------------------------------ wire format
_EVENT_KEYS = frozenset(
    {"origin", "origin_asn", "prefix", "withdraw", "communities", "spoofed_origin", "spoofed_origin_asn"}
)


def parse_event(record: dict) -> RoutingEvent:
    """Decode one JSON-lines record into a :class:`RoutingEvent`."""
    if not isinstance(record, dict):
        raise RoutingError(f"stream event must be a JSON object, got {type(record).__name__}")
    unknown = set(record) - _EVENT_KEYS
    if unknown:
        raise RoutingError(
            f"unknown stream event field(s) {sorted(unknown)}; expected a subset of "
            f"{sorted(_EVENT_KEYS)}"
        )
    origin = record.get("origin", record.get("origin_asn"))
    prefix = record.get("prefix")
    if origin is None or prefix is None:
        raise RoutingError("stream event needs at least 'origin' and 'prefix'")
    try:
        origin = int(origin)
    except (TypeError, ValueError):
        raise RoutingError(f"stream event origin must be an AS number, got {origin!r}") from None
    try:
        prefix = Prefix.from_string(str(prefix))
    except PrefixError as exc:
        raise RoutingError(f"bad stream event prefix {prefix!r}: {exc}") from None
    communities = record.get("communities")
    spoofed = record.get("spoofed_origin", record.get("spoofed_origin_asn"))
    try:
        # Expected failures: a malformed community string/value
        # (CommunityError), a non-iterable communities field or
        # non-numeric spoofed origin (TypeError/ValueError from the
        # star-unpack and int() coercions).
        return RoutingEvent(
            origin_asn=origin,
            prefix=prefix,
            withdraw=bool(record.get("withdraw", False)),
            communities=CommunitySet.of(*communities) if communities else None,
            spoofed_origin_asn=None if spoofed is None else int(spoofed),
        )
    except (CommunityError, TypeError, ValueError) as exc:
        raise RoutingError(f"bad stream event {record!r}: {exc}") from None


def read_event_stream(lines: Iterable[str]) -> Iterator[RoutingEvent]:
    """Decode a JSON-lines event stream, skipping blanks and ``#`` comments.

    Errors carry the 1-based line number so a bad line in a long feed
    is findable.
    """
    for number, line in enumerate(lines, start=1):
        text = line.strip()
        if not text or text.startswith("#"):
            continue
        try:
            record = json.loads(text)
        except json.JSONDecodeError as exc:
            raise RoutingError(f"stream line {number}: invalid JSON ({exc})") from None
        try:
            yield parse_event(record)
        except RoutingError as exc:
            raise RoutingError(f"stream line {number}: {exc}") from None
