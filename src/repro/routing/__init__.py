"""BGP routing simulation: decision process, per-AS routers, propagation engine."""

from repro.routing.decision import best_path, compare_routes
from repro.routing.router import Router, ImportResult
from repro.routing.engine import (
    BgpSimulator,
    RoutingEvent,
    SimulationReport,
    origination_events,
)
from repro.routing.route_server import RouteServer, RouteServerDecision

__all__ = [
    "best_path",
    "compare_routes",
    "Router",
    "ImportResult",
    "BgpSimulator",
    "RoutingEvent",
    "SimulationReport",
    "origination_events",
    "RouteServer",
    "RouteServerDecision",
]
