"""BGP routing simulation: decision process, per-AS routers, propagation engine."""

from repro.routing.decision import best_path, compare_routes
from repro.routing.router import Router, ImportResult
from repro.routing.engine import BgpSimulator, SimulationReport
from repro.routing.route_server import RouteServer, RouteServerDecision

__all__ = [
    "best_path",
    "compare_routes",
    "Router",
    "ImportResult",
    "BgpSimulator",
    "SimulationReport",
    "RouteServer",
    "RouteServerDecision",
]
