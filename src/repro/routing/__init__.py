"""BGP routing simulation: decision process, per-AS routers, propagation engine."""

from repro.routing.decision import best_path, compare_routes
from repro.routing.router import Router, ImportResult
from repro.routing.engine import (
    BgpSimulator,
    RoutingEvent,
    SimulationReport,
    default_shards,
    origination_events,
    propagation_shards,
    set_default_shards,
)
from repro.routing.route_server import RouteServer, RouteServerDecision
from repro.routing.shard import ShardPool, partition_events, shard_worker_budget, stable_shard
from repro.routing.wire import AttributeInterner, WIRE_ENV, wire_format
from repro.routing.stream import (
    SimulatorService,
    StreamStats,
    coalesce_events,
    parse_event,
    read_event_stream,
)

__all__ = [
    "best_path",
    "compare_routes",
    "Router",
    "ImportResult",
    "BgpSimulator",
    "RoutingEvent",
    "SimulationReport",
    "ShardPool",
    "default_shards",
    "origination_events",
    "partition_events",
    "propagation_shards",
    "set_default_shards",
    "shard_worker_budget",
    "stable_shard",
    "RouteServer",
    "RouteServerDecision",
    "SimulatorService",
    "StreamStats",
    "coalesce_events",
    "parse_event",
    "read_event_stream",
    "AttributeInterner",
    "WIRE_ENV",
    "wire_format",
]
