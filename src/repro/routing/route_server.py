"""IXP route servers and their community-controlled redistribution.

A route server receives announcements from IXP members and redistributes
them to the other members without inserting its own ASN into the path
(which is why IXP communities show up as "off-path" in the paper's
Section 4.3).  Members steer redistribution with control communities;
the order in which conflicting "announce to X" and "do not announce to
X" rules are evaluated is exactly the property the Section 7.5
experiment probes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bgp.community import Community, CommunitySet
from repro.bgp.prefix import Prefix
from repro.bgp.route import Announcement
from repro.exceptions import RoutingError
from repro.routing.decision import best_path
from repro.bgp.route import RouteEntry
from repro.topology.ixp import Ixp, RouteServerConfig


@dataclass
class RouteServerDecision:
    """Per-member redistribution decision for one received announcement."""

    prefix: Prefix
    from_member: int
    redistributed_to: frozenset[int]
    suppressed_to: frozenset[int]
    reasons: dict[int, str] = field(default_factory=dict)


class RouteServer:
    """The route server of one IXP."""

    def __init__(self, ixp: Ixp):
        self.ixp = ixp
        self.config: RouteServerConfig = ixp.route_server_config  # type: ignore[assignment]
        #: announcements received per (member, prefix).
        self._received: dict[tuple[int, Prefix], Announcement] = {}
        #: per-member view of redistributed routes: member -> prefix -> Announcement.
        self.member_views: dict[int, dict[Prefix, Announcement]] = {
            member: {} for member in ixp.members
        }

    # ----------------------------------------------------------------- intake
    def receive(self, announcement: Announcement) -> RouteServerDecision:
        """Process one member announcement and redistribute it."""
        member = announcement.sender_asn
        if not self.ixp.is_member(member):
            raise RoutingError(
                f"AS{member} is not a member of {self.ixp.name}; cannot announce to its route server"
            )
        self._received[(member, announcement.prefix)] = announcement
        return self._redistribute(announcement)

    def _evaluate_targets(self, communities: CommunitySet, from_member: int) -> tuple[set[int], set[int], dict[int, str]]:
        """Return (allowed members, suppressed members, reasons) for a community set."""
        members = set(self.ixp.members) - {from_member}
        reasons: dict[int, str] = {}

        announce_requests: set[int] = set()
        suppress_requests: set[int] = set()
        suppress_all = False
        announce_all = False
        for community in communities:
            if community == self.config.announce_to_all():
                announce_all = True
            elif community == self.config.suppress_to_all():
                suppress_all = True
            elif community.asn == self.config.ixp_asn and community.value in members:
                announce_requests.add(community.value)
            elif community.asn == 0 and community.value in members:
                suppress_requests.add(community.value)

        # Default behaviour: redistribute to everyone unless selective
        # announcement communities are present.
        if announce_requests and not announce_all:
            allowed = set(announce_requests)
            # Sorted so the reasons mapping fills member-order deterministically
            # (set iteration order must never leak into rendered output).
            for member in sorted(members - allowed):
                reasons[member] = "not in selective-announce set"
        else:
            allowed = set(members)
        if suppress_all:
            for member in sorted(allowed):
                reasons[member] = "suppress-to-all community"
            allowed = set()
        # Conflict resolution: the paper's target IXP evaluates suppression
        # after computing the announce set when suppress_before_redistribute
        # is True, meaning "do not announce" wins over "announce".
        suppressed = set()
        for member in sorted(suppress_requests):
            if member in allowed:
                if self.config.suppress_before_redistribute:
                    allowed.discard(member)
                    suppressed.add(member)
                    reasons[member] = "suppression community evaluated before redistribution"
                else:
                    reasons[member] = "redistribution community evaluated before suppression"
            else:
                suppressed.add(member)
                reasons.setdefault(member, "suppression community")
        return allowed, suppressed | (members - allowed - suppressed), reasons

    def _redistribute(self, announcement: Announcement) -> RouteServerDecision:
        """Update every member's view with the redistribution decision."""
        allowed, suppressed, reasons = self._evaluate_targets(
            announcement.attributes.communities, announcement.sender_asn
        )
        outbound_communities = announcement.attributes.communities
        if self.config.strip_control_communities:
            outbound_communities = outbound_communities.filter(
                lambda c: not self.config.is_control_community(c)
            )
        outbound = announcement.replace(
            attributes=announcement.attributes.replace(communities=outbound_communities)
        )
        for member in self.ixp.members:
            if member == announcement.sender_asn:
                continue
            view = self.member_views.setdefault(member, {})
            if member in allowed:
                view[announcement.prefix] = outbound
            else:
                view.pop(announcement.prefix, None)
        return RouteServerDecision(
            prefix=announcement.prefix,
            from_member=announcement.sender_asn,
            redistributed_to=frozenset(allowed),
            suppressed_to=frozenset(suppressed),
            reasons=reasons,
        )

    # -------------------------------------------------------------- inspection
    def routes_for_member(self, member_asn: int) -> dict[Prefix, Announcement]:
        """Return the routes currently redistributed to ``member_asn``."""
        if member_asn not in self.ixp.members:
            raise RoutingError(f"AS{member_asn} is not a member of {self.ixp.name}")
        return dict(self.member_views.get(member_asn, {}))

    def member_has_route(self, member_asn: int, prefix: Prefix) -> bool:
        """True if ``member_asn`` currently receives a route for ``prefix``."""
        return prefix in self.routes_for_member(member_asn)

    def received_announcements(self) -> list[Announcement]:
        """Return every announcement the route server has accepted (peer view)."""
        return list(self._received.values())

    def best_received(self, prefix: Prefix) -> Announcement | None:
        """Return the route server's preferred announcement for ``prefix``.

        Used by the PCH-style collectors that peer with route servers.
        """
        candidates = [
            RouteEntry(prefix=prefix, attributes=a.attributes, learned_from=a.sender_asn)
            for (member, p), a in self._received.items()
            if p == prefix
        ]
        best = best_path(candidates)
        if best is None:
            return None
        return self._received[(best.learned_from, prefix)]
