"""Compact binary wire codec for the resident shard protocol.

Every payload that crosses the fork boundary — the per-prefix state
deltas, the event batches, the export-community additions, the harvest
work-list and the observation rows coming back — used to ship as a
pickled dataclass graph.  Most of those bytes were redundant: the
entries of one batch share a handful of distinct ``ASPath`` /
``CommunitySet`` / ``PathAttributes`` objects (the export memo proves
it), and pickle re-spells each object's class and field names over and
over.  This module replaces that with a purpose-built format:

Blob layout (one self-contained blob per envelope field)::

    byte 0   format   'W' = compact v1, 'P' = length-framed pickle
    byte 1   kind     'S' states | 'E' events | 'A' additions
                      | 'I' items | 'O' observations
    ...      payload

A compact payload starts with four **intern tables**, decoded in
dependency order — AS paths, community sets, large-community tuples,
attribute bundles — each a varint count followed by self-delimiting
entries.  The body then references table entries by id, so a thousand
route entries sharing one attribute bundle pay for it once.  Scalars are
LEB128 varints; a prefix is ``varint(family) varint(length)
varint(network)``; every set-valued field (communities, suppress_to,
announce_only_to) is sorted before encoding, which makes the encoding
canonical: encode∘decode is byte-stable, the property the
``REPRO_SANITIZE=1`` round-trip audit (:func:`audit_blob`) checks on
every shipped envelope.

Decoding is **interning**: an :class:`AttributeInterner` (one per
simulator, parent and worker side) canonicalises every decoded
``ASPath`` / ``CommunitySet`` / large-community tuple /
``PathAttributes`` so replayed entries share one bundle object per
distinct attribute set — merge replay shrinks resident parent memory
instead of growing it.

``REPRO_WIRE=pickle`` switches the *encoders* to the pickle format (the
decoders dispatch on the format byte, so mixed blobs interoperate).
That mode exists for A/B benchmarking only: it is the exact baseline
the compact format is measured against in
``benchmarks/bench_resident_stream.py``.
"""

from __future__ import annotations

import os
import pickle
from typing import TYPE_CHECKING, Any, Sequence

from repro.bgp.aspath import ASPath, ASPathSegment, SegmentType
from repro.bgp.attributes import Origin, PathAttributes
from repro.bgp.community import Community, CommunitySet, LargeCommunity
from repro.bgp.prefix import AddressFamily, Prefix
from repro.bgp.route import RouteEntry
from repro.exceptions import WireError

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance
    from repro.routing.engine import RoutingEvent

#: Environment variable selecting the wire format for *encoding*:
#: unset/``codec`` is the compact format, ``pickle`` the baseline
#: pickle framing (benchmark A/B only).  Decoders always dispatch on
#: the blob's own format byte.
WIRE_ENV = "REPRO_WIRE"

_FMT_COMPACT = 0x57  # 'W'
_FMT_PICKLE = 0x50  # 'P'

KIND_STATES = 0x53  # 'S'
KIND_EVENTS = 0x45  # 'E'
KIND_ADDITIONS = 0x41  # 'A'
KIND_ITEMS = 0x49  # 'I'
KIND_OBSERVATIONS = 0x4F  # 'O'
KIND_CONFIG = 0x43  # 'C'

_KIND_NAMES = {
    KIND_STATES: "states",
    KIND_EVENTS: "events",
    KIND_ADDITIONS: "additions",
    KIND_ITEMS: "items",
    KIND_OBSERVATIONS: "observations",
    KIND_CONFIG: "config",
}


def wire_format() -> str:
    """The selected *encoding* format: ``"codec"`` (default) or ``"pickle"``."""
    return "pickle" if os.environ.get(WIRE_ENV, "").lower() == "pickle" else "codec"


# ------------------------------------------------------------------ primitives
def _write_uvarint(buf: bytearray, value: int) -> None:
    """LEB128: 7 value bits per byte, high bit = continuation."""
    if value < 0:
        raise WireError(f"cannot encode negative varint {value}")
    while True:
        low = value & 0x7F
        value >>= 7
        if value:
            buf.append(low | 0x80)
        else:
            buf.append(low)
            return


def _write_str(buf: bytearray, text: str) -> None:
    raw = text.encode("utf-8")
    _write_uvarint(buf, len(raw))
    buf += raw


class _Reader:
    """Sequential bounds-checked reader over one blob."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes, pos: int = 0):
        self.data = data
        self.pos = pos

    def byte(self) -> int:
        try:
            value = self.data[self.pos]
        except IndexError:
            raise WireError("truncated wire blob") from None
        self.pos += 1
        return value

    def uvarint(self) -> int:
        value = 0
        shift = 0
        while True:
            byte = self.byte()
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value
            shift += 7

    def str(self) -> str:
        length = self.uvarint()
        end = self.pos + length
        if end > len(self.data):
            raise WireError("truncated wire blob")
        raw = self.data[self.pos : end]
        self.pos = end
        return raw.decode("utf-8")

    def done(self) -> bool:
        return self.pos >= len(self.data)


# ---------------------------------------------------------------- interning
class AttributeInterner:
    """Canonicalise decoded attribute objects across blobs.

    One instance lives on each simulator (parent and worker alike):
    every decode maps equal ``ASPath`` / ``CommunitySet`` /
    large-community tuples / ``PathAttributes`` onto a single shared
    object, so a long-lived resident run holds one bundle per distinct
    attribute set no matter how many deltas replayed it.
    """

    __slots__ = ("_paths", "_csets", "_lsets", "_bundles")

    def __init__(self) -> None:
        self._paths: dict[ASPath, ASPath] = {}
        self._csets: dict[CommunitySet, CommunitySet] = {}
        self._lsets: dict[tuple, tuple] = {}
        self._bundles: dict[PathAttributes, PathAttributes] = {}

    def path(self, path: ASPath) -> ASPath:
        return self._paths.setdefault(path, path)

    def cset(self, communities: CommunitySet) -> CommunitySet:
        return self._csets.setdefault(communities, communities)

    def lset(self, large: "tuple[LargeCommunity, ...]") -> "tuple[LargeCommunity, ...]":
        return self._lsets.setdefault(large, large)

    def bundle(self, attributes: PathAttributes) -> PathAttributes:
        return self._bundles.setdefault(attributes, attributes)


# ------------------------------------------------------------------- encoder
class _Encoder:
    """Per-blob intern tables plus the body buffer.

    Table ids are assigned on first encounter; each table's entries are
    appended to its own buffer in id order, so the decoder can rebuild
    the tables with a single sequential pass before reading the body.
    Bundles reference earlier tables only (paths / csets / lsets), never
    other bundles, so the dependency order is fixed.
    """

    __slots__ = (
        "body",
        "_paths",
        "_path_buf",
        "_csets",
        "_cset_buf",
        "_lsets",
        "_lset_buf",
        "_bundles",
        "_bundle_buf",
    )

    def __init__(self) -> None:
        self.body = bytearray()
        self._paths: dict[ASPath, int] = {}
        self._path_buf = bytearray()
        self._csets: dict[CommunitySet, int] = {}
        self._cset_buf = bytearray()
        self._lsets: dict[tuple, int] = {}
        self._lset_buf = bytearray()
        self._bundles: dict[PathAttributes, int] = {}
        self._bundle_buf = bytearray()

    def path_id(self, path: ASPath) -> int:
        table_id = self._paths.get(path)
        if table_id is None:
            table_id = len(self._paths)
            self._paths[path] = table_id
            buf = self._path_buf
            segments = path.segments
            _write_uvarint(buf, len(segments))
            for segment in segments:
                buf.append(int(segment.segment_type))
                _write_uvarint(buf, len(segment.asns))
                for asn in segment.asns:
                    _write_uvarint(buf, asn)
        return table_id

    def cset_id(self, communities: CommunitySet) -> int:
        if not isinstance(communities, CommunitySet):
            raise WireError(
                f"expected CommunitySet on the wire, got {type(communities).__name__}"
            )
        table_id = self._csets.get(communities)
        if table_id is None:
            table_id = len(self._csets)
            self._csets[communities] = table_id
            buf = self._cset_buf
            raw_values = sorted(community.to_int() for community in communities)
            _write_uvarint(buf, len(raw_values))
            for raw in raw_values:
                buf += raw.to_bytes(4, "big")
        return table_id

    def lset_id(self, large: "tuple[LargeCommunity, ...]") -> int:
        table_id = self._lsets.get(large)
        if table_id is None:
            table_id = len(self._lsets)
            self._lsets[large] = table_id
            buf = self._lset_buf
            _write_uvarint(buf, len(large))
            for community in large:
                _write_uvarint(buf, community.global_admin)
                _write_uvarint(buf, community.local_data1)
                _write_uvarint(buf, community.local_data2)
        return table_id

    def bundle_id(self, attributes: PathAttributes) -> int:
        table_id = self._bundles.get(attributes)
        if table_id is None:
            # Resolve the referenced tables *before* claiming the id so
            # the buffers stay in id order.
            path_id = self.path_id(attributes.as_path)
            cset_id = self.cset_id(attributes.communities)
            lset_id = self.lset_id(attributes.large_communities)
            table_id = len(self._bundles)
            self._bundles[attributes] = table_id
            buf = self._bundle_buf
            _write_uvarint(buf, path_id)
            _write_uvarint(buf, cset_id)
            _write_uvarint(buf, lset_id)
            buf.append(int(attributes.origin))
            flags = 0
            if attributes.med is not None:
                flags |= 0x01
            if attributes.local_pref is not None:
                flags |= 0x02
            if attributes.atomic_aggregate:
                flags |= 0x04
            buf.append(flags)
            _write_uvarint(buf, attributes.next_hop)
            if attributes.med is not None:
                _write_uvarint(buf, attributes.med)
            if attributes.local_pref is not None:
                _write_uvarint(buf, attributes.local_pref)
        return table_id

    def prefix(self, prefix: Prefix) -> None:
        buf = self.body
        _write_uvarint(buf, int(prefix.family))
        _write_uvarint(buf, prefix.length)
        _write_uvarint(buf, prefix.network)

    def finish(self, kind: int) -> bytes:
        out = bytearray((_FMT_COMPACT, kind))
        for table, buf in (
            (self._paths, self._path_buf),
            (self._csets, self._cset_buf),
            (self._lsets, self._lset_buf),
            (self._bundles, self._bundle_buf),
        ):
            _write_uvarint(out, len(table))
            out += buf
        out += self.body
        return bytes(out)


# ------------------------------------------------------------------- decoder
class _Tables:
    """The four intern tables of one compact blob, decoded up front."""

    __slots__ = ("paths", "csets", "lsets", "bundles")

    def __init__(self, reader: _Reader, interner: AttributeInterner):
        self.paths = [
            interner.path(self._read_path(reader)) for _ in range(reader.uvarint())
        ]
        self.csets = [
            interner.cset(self._read_cset(reader)) for _ in range(reader.uvarint())
        ]
        self.lsets = [
            interner.lset(self._read_lset(reader)) for _ in range(reader.uvarint())
        ]
        self.bundles = [
            interner.bundle(self._read_bundle(reader)) for _ in range(reader.uvarint())
        ]

    @staticmethod
    def _read_path(reader: _Reader) -> ASPath:
        segments = []
        for _ in range(reader.uvarint()):
            segment_type = SegmentType(reader.byte())
            asns = tuple(reader.uvarint() for _ in range(reader.uvarint()))
            segments.append(ASPathSegment(segment_type, asns))
        return ASPath(segments)

    @staticmethod
    def _read_cset(reader: _Reader) -> CommunitySet:
        count = reader.uvarint()
        end = reader.pos + 4 * count
        if end > len(reader.data):
            raise WireError("truncated community set")
        communities = [
            Community.from_int(int.from_bytes(reader.data[pos : pos + 4], "big"))
            for pos in range(reader.pos, end, 4)
        ]
        reader.pos = end
        return CommunitySet(communities)

    @staticmethod
    def _read_lset(reader: _Reader) -> "tuple[LargeCommunity, ...]":
        return tuple(
            LargeCommunity(reader.uvarint(), reader.uvarint(), reader.uvarint())
            for _ in range(reader.uvarint())
        )

    def _read_bundle(self, reader: _Reader) -> PathAttributes:
        path = self._table_ref(self.paths, reader.uvarint(), "AS path")
        communities = self._table_ref(self.csets, reader.uvarint(), "community set")
        large = self._table_ref(self.lsets, reader.uvarint(), "large communities")
        origin = Origin(reader.byte())
        flags = reader.byte()
        next_hop = reader.uvarint()
        med = reader.uvarint() if flags & 0x01 else None
        local_pref = reader.uvarint() if flags & 0x02 else None
        return PathAttributes(
            as_path=path,
            origin=origin,
            next_hop=next_hop,
            med=med,
            local_pref=local_pref,
            communities=communities,
            large_communities=large,
            atomic_aggregate=bool(flags & 0x04),
        )

    @staticmethod
    def _table_ref(table: list, table_id: int, label: str) -> Any:
        try:
            return table[table_id]
        except IndexError:
            raise WireError(f"dangling {label} intern id {table_id}") from None


def _read_prefix(reader: _Reader) -> Prefix:
    family = AddressFamily(reader.uvarint())
    length = reader.uvarint()
    return Prefix(family, reader.uvarint(), length)


# --------------------------------------------------------------- blob framing
def _encode(kind: int, payload: Any, write_body, format_name: "str | None" = None) -> bytes:
    if (format_name or wire_format()) == "pickle":
        return bytes((_FMT_PICKLE, kind)) + pickle.dumps(
            payload, protocol=pickle.HIGHEST_PROTOCOL
        )
    encoder = _Encoder()
    write_body(encoder, payload)
    return encoder.finish(kind)


def _open(blob: bytes, kind: int, interner: "AttributeInterner | None"):
    """Validate framing; return ``(reader, tables)`` or ``(None, payload)``.

    The second form is the pickle fast path: the payload is already the
    decoded object.
    """
    if len(blob) < 2:
        raise WireError("wire blob shorter than its 2-byte header")
    if blob[1] != kind:
        raise WireError(
            f"expected a {_KIND_NAMES.get(kind, kind)} blob, got "
            f"{_KIND_NAMES.get(blob[1], blob[1])}"
        )
    if blob[0] == _FMT_PICKLE:
        return None, pickle.loads(blob[2:])
    if blob[0] != _FMT_COMPACT:
        raise WireError(f"unknown wire format byte {blob[0]:#x}")
    reader = _Reader(blob, pos=2)
    return reader, _Tables(reader, interner if interner is not None else AttributeInterner())


# ------------------------------------------------------------ states (kind S)
def _write_entry(encoder: _Encoder, entry: RouteEntry, context_prefix: Prefix) -> None:
    flags = 0
    if entry.best:
        flags |= 0x01
    if entry.blackholed:
        flags |= 0x02
    if entry.rejected:
        flags |= 0x04
    if entry.rejection_reason is not None:
        flags |= 0x08
    if entry.export_prepend:
        flags |= 0x10
    if entry.suppress_to:
        flags |= 0x20
    if entry.announce_only_to is not None:
        flags |= 0x40
    if entry.prefix == context_prefix:
        flags |= 0x80
    body = encoder.body
    body.append(flags)
    if not flags & 0x80:
        encoder.prefix(entry.prefix)
    _write_uvarint(body, entry.learned_from)
    _write_uvarint(body, encoder.bundle_id(entry.attributes))
    if flags & 0x08:
        _write_str(body, entry.rejection_reason)
    if flags & 0x10:
        _write_uvarint(body, entry.export_prepend)
    if flags & 0x20:
        asns = sorted(entry.suppress_to)
        _write_uvarint(body, len(asns))
        for asn in asns:
            _write_uvarint(body, asn)
    if flags & 0x40:
        asns = sorted(entry.announce_only_to)
        _write_uvarint(body, len(asns))
        for asn in asns:
            _write_uvarint(body, asn)


def _read_entry(reader: _Reader, tables: _Tables, context_prefix: Prefix) -> RouteEntry:
    flags = reader.byte()
    prefix = context_prefix if flags & 0x80 else _read_prefix(reader)
    learned_from = reader.uvarint()
    attributes = tables._table_ref(tables.bundles, reader.uvarint(), "attribute bundle")
    rejection_reason = reader.str() if flags & 0x08 else None
    export_prepend = reader.uvarint() if flags & 0x10 else 0
    suppress_to: frozenset[int] = frozenset()
    if flags & 0x20:
        suppress_to = frozenset(reader.uvarint() for _ in range(reader.uvarint()))
    announce_only_to: "frozenset[int] | None" = None
    if flags & 0x40:
        announce_only_to = frozenset(reader.uvarint() for _ in range(reader.uvarint()))
    return RouteEntry(
        prefix=prefix,
        attributes=attributes,
        learned_from=learned_from,
        best=bool(flags & 0x01),
        blackholed=bool(flags & 0x02),
        rejected=bool(flags & 0x04),
        rejection_reason=rejection_reason,
        export_prepend=export_prepend,
        suppress_to=suppress_to,
        announce_only_to=announce_only_to,
    )


def _write_states_body(encoder: _Encoder, states: Sequence[tuple]) -> None:
    body = encoder.body
    _write_uvarint(body, len(states))
    for prefix, asn, originated, adjacent in states:
        encoder.prefix(prefix)
        _write_uvarint(body, asn)
        if originated is None:
            body.append(0)
        else:
            body.append(1)
            _write_uvarint(body, encoder.bundle_id(originated))
        _write_uvarint(body, len(adjacent))
        for neighbor, entry in adjacent:
            _write_uvarint(body, neighbor)
            _write_entry(encoder, entry, prefix)


def encode_states(states: Sequence[tuple], format_name: "str | None" = None) -> bytes:
    """Encode :data:`~repro.routing.shard.PrefixState` records."""
    return _encode(KIND_STATES, list(states), _write_states_body, format_name)


def decode_states(blob: bytes, interner: "AttributeInterner | None" = None) -> list[tuple]:
    reader, tables = _open(blob, KIND_STATES, interner)
    if reader is None:
        return tables
    states = []
    for _ in range(reader.uvarint()):
        prefix = _read_prefix(reader)
        asn = reader.uvarint()
        originated = None
        if reader.byte():
            originated = tables._table_ref(
                tables.bundles, reader.uvarint(), "attribute bundle"
            )
        adjacent = tuple(
            (reader.uvarint(), _read_entry(reader, tables, prefix))
            for _ in range(reader.uvarint())
        )
        states.append((prefix, asn, originated, adjacent))
    return states


# ------------------------------------------------------------ events (kind E)
def _write_events_body(encoder: _Encoder, events: Sequence["RoutingEvent"]) -> None:
    body = encoder.body
    _write_uvarint(body, len(events))
    for event in events:
        flags = 0
        if event.withdraw:
            flags |= 0x01
        if event.communities is not None:
            flags |= 0x02
        if event.spoofed_origin_asn is not None:
            flags |= 0x04
        body.append(flags)
        _write_uvarint(body, event.origin_asn)
        encoder.prefix(event.prefix)
        if flags & 0x02:
            _write_uvarint(body, encoder.cset_id(event.communities))
        if flags & 0x04:
            _write_uvarint(body, event.spoofed_origin_asn)


def encode_events(
    events: Sequence["RoutingEvent"], format_name: "str | None" = None
) -> bytes:
    """Encode a :class:`~repro.routing.engine.RoutingEvent` batch (order kept)."""
    return _encode(KIND_EVENTS, list(events), _write_events_body, format_name)


def decode_events(
    blob: bytes, interner: "AttributeInterner | None" = None
) -> "list[RoutingEvent]":
    from repro.routing.engine import RoutingEvent

    reader, tables = _open(blob, KIND_EVENTS, interner)
    if reader is None:
        return tables
    events = []
    for _ in range(reader.uvarint()):
        flags = reader.byte()
        origin_asn = reader.uvarint()
        prefix = _read_prefix(reader)
        communities = None
        if flags & 0x02:
            communities = tables._table_ref(
                tables.csets, reader.uvarint(), "community set"
            )
        spoofed = reader.uvarint() if flags & 0x04 else None
        events.append(
            RoutingEvent(
                origin_asn=origin_asn,
                prefix=prefix,
                withdraw=bool(flags & 0x01),
                communities=communities,
                spoofed_origin_asn=spoofed,
            )
        )
    return events


# --------------------------------------------------------- additions (kind A)
def _write_additions_body(encoder: _Encoder, additions: dict) -> None:
    body = encoder.body
    _write_uvarint(body, len(additions))
    for asn in sorted(additions):
        mapping = additions[asn]
        _write_uvarint(body, asn)
        _write_uvarint(body, len(mapping))
        for neighbor in sorted(mapping):
            _write_uvarint(body, neighbor)
            _write_uvarint(body, encoder.cset_id(mapping[neighbor]))


def encode_additions(
    additions: "dict[int, dict[int, CommunitySet]]", format_name: "str | None" = None
) -> bytes:
    """Encode per-router export-community additions (canonically sorted)."""
    return _encode(KIND_ADDITIONS, additions, _write_additions_body, format_name)


def decode_additions(
    blob: bytes, interner: "AttributeInterner | None" = None
) -> "dict[int, dict[int, CommunitySet]]":
    reader, tables = _open(blob, KIND_ADDITIONS, interner)
    if reader is None:
        return tables
    additions: "dict[int, dict[int, CommunitySet]]" = {}
    for _ in range(reader.uvarint()):
        asn = reader.uvarint()
        mapping: "dict[int, CommunitySet]" = {}
        for _ in range(reader.uvarint()):
            neighbor = reader.uvarint()
            mapping[neighbor] = tables._table_ref(
                tables.csets, reader.uvarint(), "community set"
            )
        additions[asn] = mapping
    return additions


# ------------------------------------------------------------- items (kind I)
def _item_fields(item) -> tuple:
    """Normalise a harvest work item (dataclass or plain tuple) to a tuple."""
    if isinstance(item, tuple):
        return item
    return (item.index, item.platform, item.collector_id, item.collector_asn, item.peer_asn)


def _write_items_body(encoder: _Encoder, items: Sequence) -> None:
    body = encoder.body
    _write_uvarint(body, len(items))
    for item in items:
        index, platform, collector_id, collector_asn, peer_asn = _item_fields(item)
        _write_uvarint(body, index)
        _write_str(body, platform)
        _write_str(body, collector_id)
        _write_uvarint(body, collector_asn)
        _write_uvarint(body, peer_asn)


def encode_items(items: Sequence, format_name: "str | None" = None) -> bytes:
    """Encode the harvest work-list.

    Decoding returns plain ``(index, platform, collector_id,
    collector_asn, peer_asn)`` tuples — the codec does not depend on
    :mod:`repro.collectors.harvest`; the worker rebuilds its dataclass.
    """
    return _encode(
        KIND_ITEMS, tuple(_item_fields(item) for item in items), _write_items_body, format_name
    )


def decode_items(blob: bytes, interner: "AttributeInterner | None" = None) -> list[tuple]:
    reader, tables = _open(blob, KIND_ITEMS, interner)
    if reader is None:
        return list(tables)
    return [
        (reader.uvarint(), reader.str(), reader.str(), reader.uvarint(), reader.uvarint())
        for _ in range(reader.uvarint())
    ]


# ------------------------------------------------------ observations (kind O)
def _write_observations_body(encoder: _Encoder, groups: Sequence[tuple]) -> None:
    body = encoder.body
    _write_uvarint(body, len(groups))
    for index, rows in groups:
        _write_uvarint(body, index)
        _write_uvarint(body, len(rows))
        for prefix, as_path, communities in rows:
            encoder.prefix(prefix)
            _write_uvarint(body, len(as_path))
            for asn in as_path:
                _write_uvarint(body, asn)
            _write_uvarint(body, encoder.cset_id(communities))


def encode_observations(groups: Sequence[tuple], format_name: "str | None" = None) -> bytes:
    """Encode harvest rows: ``(item_index, [(prefix, as_path, communities)])``.

    Only the per-route payload crosses the wire; the parent re-attaches
    the per-item constants (platform, collector id, peer ASN, timestamp)
    when it rebuilds the :class:`~repro.collectors.observation.RouteObservation`.
    """
    return _encode(
        KIND_OBSERVATIONS,
        [(index, list(rows)) for index, rows in groups],
        _write_observations_body,
        format_name,
    )


def decode_observations(
    blob: bytes, interner: "AttributeInterner | None" = None
) -> list[tuple]:
    reader, tables = _open(blob, KIND_OBSERVATIONS, interner)
    if reader is None:
        return tables
    groups = []
    for _ in range(reader.uvarint()):
        index = reader.uvarint()
        rows = []
        for _ in range(reader.uvarint()):
            prefix = _read_prefix(reader)
            as_path = tuple(reader.uvarint() for _ in range(reader.uvarint()))
            rows.append(
                (
                    prefix,
                    as_path,
                    tables._table_ref(tables.csets, reader.uvarint(), "community set"),
                )
            )
        groups.append((index, rows))
    return groups


# ------------------------------------------------------------ config (kind C)
def _write_config_body(encoder: _Encoder, config: "dict[int, tuple]") -> None:
    body = encoder.body
    tables: "dict[bytes, int]" = {}
    pickles: list[bytes] = []
    entries: list[tuple[int, int]] = []
    for asn in sorted(config):
        raw = pickle.dumps(tuple(config[asn]), protocol=pickle.HIGHEST_PROTOCOL)
        table_id = tables.get(raw)
        if table_id is None:
            table_id = len(pickles)
            tables[raw] = table_id
            pickles.append(raw)
        entries.append((asn, table_id))
    _write_uvarint(body, len(pickles))
    for raw in pickles:
        _write_uvarint(body, len(raw))
        body += raw
    _write_uvarint(body, len(entries))
    for asn, table_id in entries:
        _write_uvarint(body, asn)
        _write_uvarint(body, table_id)


def encode_config(config: "dict[int, tuple]", format_name: "str | None" = None) -> bytes:
    """Encode a :func:`~repro.routing.shard.capture_router_config` capture.

    Policy objects are not codec material, so each *distinct* per-router
    tuple still rides as a pickle — but deduplicated by encoded bytes:
    a topology where thousands of routers share a handful of role-derived
    configurations ships each distinct configuration once, plus a varint
    ``(asn, table_id)`` pair per router.  Decoding shares one unpickled
    tuple per table entry, which is safe because the routing layer treats
    policy objects as immutable once installed (hand-swapping a new
    object is the reconfiguration signal — see ``capture_router_config``).
    """
    return _encode(KIND_CONFIG, dict(config), _write_config_body, format_name)


def decode_config(
    blob: bytes, interner: "AttributeInterner | None" = None
) -> "dict[int, tuple]":
    reader, tables = _open(blob, KIND_CONFIG, interner)
    if reader is None:
        return tables
    shared: list[tuple] = []
    for _ in range(reader.uvarint()):
        length = reader.uvarint()
        end = reader.pos + length
        if end > len(reader.data):
            raise WireError("truncated wire blob")
        shared.append(pickle.loads(reader.data[reader.pos : end]))
        reader.pos = end
    config: "dict[int, tuple]" = {}
    for _ in range(reader.uvarint()):
        asn = reader.uvarint()
        config[asn] = _Tables._table_ref(shared, reader.uvarint(), "config table")
    return config


# ------------------------------------------------------------------- auditing
_CODECS = {
    KIND_STATES: (encode_states, decode_states),
    KIND_EVENTS: (encode_events, decode_events),
    KIND_ADDITIONS: (encode_additions, decode_additions),
    KIND_ITEMS: (encode_items, decode_items),
    KIND_OBSERVATIONS: (encode_observations, decode_observations),
    KIND_CONFIG: (encode_config, decode_config),
}


def audit_blob(blob: bytes) -> "str | None":
    """Round-trip audit one blob: decode → re-encode → decode → compare.

    Returns ``None`` for a clean round trip, otherwise a description of
    the first diverging field.  Used by the ``REPRO_SANITIZE=1`` submit
    hook, so it must never mutate anything — and it does not: both
    decodes use throwaway interners.
    """
    if len(blob) < 2 or blob[1] not in _CODECS:
        return f"unrecognised blob header {blob[:2]!r}"
    kind = blob[1]
    encode, decode = _CODECS[kind]
    format_name = "pickle" if blob[0] == _FMT_PICKLE else "codec"
    try:
        decoded = decode(blob)
    except Exception as exc:
        return f"{_KIND_NAMES[kind]} blob failed to decode: {exc}"
    try:
        redecoded = decode(encode(decoded, format_name))
    except Exception as exc:
        return f"{_KIND_NAMES[kind]} blob failed to re-encode: {exc}"
    return _divergence(kind, decoded, redecoded)


_ENTRY_FIELDS = (
    "prefix",
    "attributes",
    "learned_from",
    "best",
    "blackholed",
    "rejected",
    "rejection_reason",
    "export_prepend",
    "suppress_to",
    "announce_only_to",
)
_EVENT_FIELDS = ("origin_asn", "prefix", "withdraw", "communities", "spoofed_origin_asn")


def _field_divergence(label: str, left, right, fields: tuple) -> str:
    for field in fields:
        if getattr(left, field) != getattr(right, field):
            return f"{label}.{field}: {getattr(left, field)!r} != {getattr(right, field)!r}"
    return f"{label}: {left!r} != {right!r}"


def _config_divergence(left: "dict[int, tuple]", right: "dict[int, tuple]") -> "str | None":
    """Compare two decoded config captures by *pickled value*.

    Policy objects compare by identity, so the generic ``left == right``
    check would flag every round trip (decoding necessarily builds new
    objects).  Two captures agree when every router's tuple re-pickles
    to identical bytes — the same equivalence the dedup table uses.
    """
    if left.keys() != right.keys():
        return f"config: router sets differ ({sorted(left)} != {sorted(right)})"
    for asn in sorted(left):
        a, b = left[asn], right[asn]
        if a is b or a == b:
            continue
        if pickle.dumps(tuple(a), protocol=pickle.HIGHEST_PROTOCOL) != pickle.dumps(
            tuple(b), protocol=pickle.HIGHEST_PROTOCOL
        ):
            return f"config[{asn}]: {a!r} != {b!r}"
    return None


def _divergence(kind: int, left, right) -> "str | None":
    """Name the first field where two decoded payloads differ."""
    if kind == KIND_CONFIG:
        return _config_divergence(left, right)
    if left == right:
        return None
    name = _KIND_NAMES[kind]
    if kind in (KIND_ADDITIONS,):
        if left.keys() != right.keys():
            return f"{name}: router sets differ ({sorted(left)} != {sorted(right)})"
        for asn in sorted(left):
            if left[asn] != right[asn]:
                return f"{name}[{asn}]: {left[asn]!r} != {right[asn]!r}"
        return f"{name}: payloads differ"
    if len(left) != len(right):
        return f"{name}: record count {len(left)} != {len(right)}"
    for position, (a, b) in enumerate(zip(left, right)):
        if a == b:
            continue
        label = f"{name}[{position}]"
        if kind == KIND_STATES:
            prefix_a, asn_a, originated_a, adjacent_a = a
            prefix_b, asn_b, originated_b, adjacent_b = b
            if prefix_a != prefix_b:
                return f"{label}.prefix: {prefix_a} != {prefix_b}"
            if asn_a != asn_b:
                return f"{label}.asn: {asn_a} != {asn_b}"
            if originated_a != originated_b:
                return f"{label}.originated: {originated_a!r} != {originated_b!r}"
            if len(adjacent_a) != len(adjacent_b):
                return f"{label}.adjacent: count {len(adjacent_a)} != {len(adjacent_b)}"
            for slot, ((na, ea), (nb, eb)) in enumerate(zip(adjacent_a, adjacent_b)):
                if na != nb:
                    return f"{label}.adjacent[{slot}].neighbor: {na} != {nb}"
                if ea != eb:
                    return _field_divergence(
                        f"{label}.adjacent[{slot}].entry", ea, eb, _ENTRY_FIELDS
                    )
        if kind == KIND_EVENTS:
            return _field_divergence(label, a, b, _EVENT_FIELDS)
        return f"{label}: {a!r} != {b!r}"
    return f"{name}: payloads differ"
