"""Resident sharded propagation: partitioning, delta shipping, stateful workers.

PR 2 established that the propagation worklist partitions *exactly* by
prefix: a ``(router, prefix)`` pair only ever enqueues pairs of the same
prefix, so the per-prefix partitions are provably independent.  This
module turns that property into a **long-lived service**:

* :func:`stable_shard` — a deterministic hash of ``(family, network,
  length)`` mapping every prefix to one of K shards.  It is the same in
  every process and every run (no ``PYTHONHASHSEED`` dependence), so a
  prefix always lands on the same shard and results never depend on
  worker scheduling.
* :func:`partition_events` — split a :class:`RoutingEvent` batch into
  per-shard event lists (empty shards are dropped — they would only
  spawn idle workers).
* :func:`capture_prefix_state` / :func:`install_prefix_state` /
  :func:`clear_prefix_state` — move the *complete* per-prefix control
  plane state (origination attributes, every Adj-RIB-In entry, and the
  derived best route) of the routers that hold any, between a parent
  simulator and a shard worker.  Install replays a snapshot, re-running
  best-path selection so the Loc-RIB (and its LPM trie) is rebuilt
  through the exact same code path a sequential run uses.
* :class:`ShardPool` — K slot-pinned single-worker executors.  Shard
  ``i`` always runs on slot ``i % workers`` (:meth:`ShardPool.slot_for`),
  so a worker's **resident** RIB state for its shards stays valid across
  batches.  The ``(topology, router configuration)`` snapshot is parked
  in a pre-fork module-level registry and inherited by each worker via
  fork copy-on-write (no per-process ``pickle.loads``; a pickled
  payload is the fallback where ``fork`` is unavailable); afterwards
  tasks carry only events plus the parent-side *deltas* for their
  shard's prefixes, all encoded with the compact
  :mod:`repro.routing.wire` codec.

Residency protocol
------------------

The parent (:class:`BgpSimulator`) and the workers keep each other
consistent through two mechanisms:

* **Pending sync set** (parent side): every (prefix, router) pair the
  parent mutated since it last shipped that prefix to its slot — seeded
  with the full holder map at pool construction, extended by sequential
  applies and merge installs are excluded (the worker that produced a
  delta already holds it).  A sharded ``apply`` pops and ships exactly
  the pending pairs of its batch; a harvest flushes the whole backlog.
* **State epochs**: :attr:`ShardPool.epoch` names the router-config
  generation.  Before dispatch the parent re-captures the configuration
  (:func:`capture_router_config`) and bumps the epoch when it changed;
  each task carries ``(epoch, config-or-None)`` and a worker that sees a
  newer epoch discards **all** resident state and re-applies the config
  before converging (:func:`_sync_worker`).  A failed shard task also
  bumps the epoch, so partially-converged worker state can never leak
  into a later merge.

The per-router ``export_community_additions`` are still shipped with
every task because the attack drivers flip them between passes.
Sessions registered via
:meth:`BgpSimulator.register_collector_peering` do not influence
propagation (collector ASes have no router, so exports to them are
skipped).
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import pickle
import weakref
from concurrent.futures import Future, ProcessPoolExecutor
from typing import TYPE_CHECKING, Any, Callable, Iterable, Sequence

from repro.bgp.prefix import Prefix
from repro.routing import residency, wire
from repro.routing.residency import _LIVE_POOLS  # noqa: F401  (compat re-export)

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance
    from repro.bgp.attributes import PathAttributes
    from repro.bgp.route import RouteEntry
    from repro.routing.engine import BgpSimulator, RoutingEvent, SimulationReport

#: Environment variable capping the number of shard worker processes.
#: The grid runner sets it in its own workers so grid parallelism times
#: propagation parallelism never oversubscribes the machine.
SHARD_BUDGET_ENV = "REPRO_SHARD_BUDGET"

#: Deprecated no-op alias (one release): ship accounting
#: (:attr:`ShardPool.ship_bytes`) is now always on — the wire codec
#: hands over exact encoded sizes for free, so the opt-in re-pickle
#: double-encode this flag used to gate no longer exists.
SHIP_STATS_ENV = "REPRO_SHIP_STATS"

#: The complete state one router holds for one prefix:
#: ``(prefix, asn, originated_attributes | None,
#: ((neighbor_asn, adj_rib_in_entry), ...))``.
PrefixState = tuple[Prefix, int, "PathAttributes | None", tuple]

#: A shard task envelope: ``(epoch, config_blob | None,
#: additions_blob, events_blob, states_blob)`` — all payload fields are
#: :mod:`repro.routing.wire` blobs; the router-config blob (kind ``C``)
#: rides along only on the first task a slot sees after an epoch bump.
ShardTask = tuple[int, "bytes | None", bytes, bytes, bytes]

_MIX_A = 0x9E3779B97F4A7C15
_MIX_B = 0xBF58476D1CE4E5B9
_MASK = (1 << 64) - 1


def shard_worker_budget() -> int:
    """How many shard worker processes this process may use.

    :data:`SHARD_BUDGET_ENV` wins when set (that is how an outer grid
    pool hands each of its workers a slice of the machine); otherwise
    the CPU count.
    """
    raw = os.environ.get(SHARD_BUDGET_ENV)
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            pass
    return os.cpu_count() or 1


def _mix_to_shard(value: int, key: int, shard_count: int) -> int:
    """The shared 64-bit multiply/xor-shift mix behind every shard hash."""
    mixed = (value * _MIX_A + key * _MIX_B) & _MASK
    mixed ^= mixed >> 29
    mixed = (mixed * _MIX_B) & _MASK
    mixed ^= mixed >> 32
    return mixed % shard_count


def stable_shard(prefix: Prefix, shard_count: int) -> int:
    """Deterministically map ``prefix`` to a shard in ``[0, shard_count)``.

    A 64-bit multiply/xor-shift mix of ``(family, network, length)`` —
    not Python's ``hash()``, whose value for the same prefix is stable
    but whose use here would still couple shard placement to interned
    object identity semantics; this keeps placement a pure function of
    the prefix value in every interpreter.
    """
    return _mix_to_shard(prefix.network, (int(prefix.family) << 8) ^ prefix.length, shard_count)


def stable_asn_shard(asn: int, shard_count: int) -> int:
    """Deterministically map an ASN to a shard in ``[0, shard_count)``."""
    return _mix_to_shard(asn, 0x5157, shard_count)


def partition_events(
    events: Iterable["RoutingEvent"], shard_count: int
) -> list[tuple[int, list["RoutingEvent"]]]:
    """Split a batch into ``(shard_index, events)`` groups, empty shards dropped.

    Events keep their relative order inside each shard, so per-prefix
    seeding order (and therefore the converged state) is identical to a
    sequential pass over the same batch.
    """
    buckets: dict[int, list["RoutingEvent"]] = {}
    for event in events:
        buckets.setdefault(stable_shard(event.prefix, shard_count), []).append(event)
    return sorted(buckets.items())


# ---------------------------------------------------------------- state moves
def capture_prefix_state(
    simulator: "BgpSimulator",
    prefixes: Sequence[Prefix],
    holders: "dict[Prefix, set[int]] | None" = None,
) -> list[PrefixState]:
    """Snapshot the per-prefix state of every holder router, deterministically.

    Holders with no remaining state (e.g. fully withdrawn prefixes) are
    captured too: installing their empty snapshot is what *clears* the
    receiving side.  ``holders`` overrides which (prefix, router) pairs
    are captured (default: everything the simulator ever touched); the
    resident protocol passes the pending-sync / last-touched pair sets
    so repeated applies only ship what actually changed.
    """
    states: list[PrefixState] = []
    holders_map = holders if holders is not None else simulator._prefix_holders
    routers = simulator.routers
    for prefix in prefixes:
        for asn in sorted(holders_map.get(prefix, ())):
            router = routers.get(asn)
            if router is None:
                continue
            adjacent = tuple(
                (neighbor, entry)
                for neighbor, rib in sorted(router.adj_rib_in.items())
                if (entry := rib.get(prefix)) is not None
            )
            states.append((prefix, asn, router.originated.get(prefix), adjacent))
    return states


def install_prefix_state(
    simulator: "BgpSimulator",
    states: Iterable[PrefixState],
    stale: "frozenset[Prefix] | set[Prefix] | None" = None,
) -> None:
    """Replay captured per-prefix state onto ``simulator``'s routers.

    Each ``(router, prefix)`` slot is cleared and rebuilt, then best-path
    selection re-runs so the Loc-RIB and its LPM trie are derived through
    the same ``_refresh_best`` path a sequential run uses — the receiving
    simulator is indistinguishable from one that converged in-process.

    ``stale`` lists the prefixes the receiver may already hold *other*
    state for (those slots are wiped before installing); ``None`` treats
    every prefix as stale — the resident worker path, where any shipped
    pair replaces whatever the worker held for it.
    """
    from repro.bgp.route import RouteEntry
    from repro.routing.decision import best_path

    routers = simulator.routers
    holders_map = simulator._prefix_holders
    for prefix, asn, originated, adjacent in states:
        router = routers[asn]
        if originated is None:
            router.originated.pop(prefix, None)
        else:
            router.originated[prefix] = originated
        if stale is None or prefix in stale:
            for rib in router.adj_rib_in.values():
                rib.withdraw(prefix)
        for neighbor, entry in adjacent:
            router._rib_in(neighbor).update(entry)
        # Re-select exactly like Router._refresh_best, but build the
        # candidate list from the delta itself: after the install the
        # snapshot *is* the complete per-prefix RIB state, so scanning
        # every neighbor RIB again (O(degree) per pair) would only
        # rediscover these entries.
        candidates: list[RouteEntry] = []
        if originated is not None:
            candidates.append(
                RouteEntry(prefix=prefix, attributes=originated, learned_from=asn)
            )
        candidates.extend(entry for _neighbor, entry in adjacent)
        loc_rib = router.loc_rib
        previous = loc_rib.best(prefix)
        new_best = best_path(candidates)
        loc_rib.set_candidates(prefix, candidates)
        if not (previous is None and new_best is None) and not (
            previous is not None
            and new_best is not None
            and previous.same_route(new_best)
        ):
            loc_rib.set_best(prefix, new_best)
        holders_map.setdefault(prefix, set()).add(asn)


def clear_prefix_state(simulator: "BgpSimulator", prefixes: Iterable[Prefix]) -> None:
    """Erase all state ``simulator`` holds for ``prefixes`` (epoch reset)."""
    routers = simulator.routers
    for prefix in prefixes:
        for asn in simulator._prefix_holders.pop(prefix, ()):
            router = routers.get(asn)
            if router is None:
                continue
            router.originated.pop(prefix, None)
            for rib in router.adj_rib_in.values():
                rib.withdraw(prefix)
            router.loc_rib.remove(prefix)


# ----------------------------------------------------------- snapshot registry
#: The ``fork`` multiprocessing context when the platform offers one —
#: the start method that makes copy-on-write snapshot inheritance work.
#: ``None`` (spawn-only platforms) falls back to pickled snapshots.
_FORK_CONTEXT = (
    multiprocessing.get_context("fork")
    if "fork" in multiprocessing.get_all_start_methods()
    else None
)

_SNAPSHOT_TOKENS = itertools.count(1)
#: Pre-fork snapshot registry: ``token -> (topology, router_config)``.
#: A :class:`ShardPool` parks its snapshot here at construction — before
#: any worker exists — and every slot executor forks *after*, so workers
#: inherit the objects through copy-on-write page sharing instead of
#: ``pickle.loads``-ing a multi-megabyte payload per process.  Write
#: once per pool, released at pool teardown; workers only ever read.
_SNAPSHOT_REGISTRY: dict[int, tuple] = {}


def _register_snapshot(snapshot: tuple) -> int:
    """Park ``(topology, router_config)`` for fork inheritance; return its token."""
    token = next(_SNAPSHOT_TOKENS)
    _SNAPSHOT_REGISTRY[token] = snapshot  # repro: noqa[RPR011,RPR032]: pre-fork write-once registry — the parent writes before any slot executor forks and the entry is immutable until pool teardown, so every worker's copy-on-write view is exactly the parent's (same sanctioned pattern as the sanitizer's shadow map)
    return token


def _release_snapshot(token: "int | None") -> None:
    """Drop a parked snapshot (idempotent; ``None`` means pickled fallback)."""
    if token is not None:
        _SNAPSHOT_REGISTRY.pop(token, None)  # repro: noqa[RPR011,RPR032]: parent-only teardown of the pre-fork registry entry above (shutdown and adoption re-parks); running workers forked long ago and never look the token up again


# ------------------------------------------------------------------- workers
#: Per-worker-process simulator, built once from the pool's topology
#: snapshot and kept **resident** — its per-shard RIB state survives
#: between tasks and is only discarded on an epoch bump.
_WORKER_SIMULATOR: "BgpSimulator | None" = None
#: The configuration epoch this worker's simulator reflects.
_WORKER_EPOCH: int = 0
#: Routers whose ``export_community_additions`` the previous task set
#: (cleared before the next task installs its own).
_WORKER_ADDITION_ASNS: set[int] = set()


def capture_router_config(simulator: "BgpSimulator") -> dict[int, tuple]:
    """Snapshot every router's effective configuration.

    Routers derive their policy objects from the topology at
    construction, but call sites may swap them afterwards (a custom
    inbound filter chain, a strict IRR, a vendor override).  The pool
    payload carries the capture taken at pool construction; before every
    sharded dispatch the parent re-captures and compares (``!=`` falls
    back to identity for policy objects, which is exactly the hand-swap
    signal) — a difference bumps the pool epoch so workers re-sync.
    """
    return {
        asn: (
            router.propagation_policy,
            router.services,
            router.vendor,
            router.inbound_filters,
            router.send_community_configured,
        )
        for asn, router in simulator.routers.items()
    }


def _apply_router_config(simulator: "BgpSimulator", router_config: dict[int, tuple]) -> None:
    """Overwrite the worker simulator's per-router configuration."""
    for asn, config in router_config.items():
        router = simulator.routers.get(asn)
        if router is None:
            continue
        (
            router.propagation_policy,
            router.services,
            router.vendor,
            router.inbound_filters,
            router.send_community_configured,
        ) = config


def _initialize_worker(snapshot_ref: "int | bytes", max_rounds: int) -> None:
    """Pool initializer: resolve the snapshot, build the mirrored simulator.

    ``snapshot_ref`` is an :data:`_SNAPSHOT_REGISTRY` token on fork
    platforms — the registry entry was written before this process
    forked, so the lookup is a copy-on-write page read, not a
    deserialisation — or the pickled ``(topology, router_config)``
    payload on spawn-only platforms (and for legacy callers that still
    hand :class:`ShardPool` pre-pickled bytes).
    """
    global _WORKER_SIMULATOR, _WORKER_EPOCH, _WORKER_ADDITION_ASNS
    from repro.routing.engine import BgpSimulator

    if isinstance(snapshot_ref, int):
        topology, router_config = _SNAPSHOT_REGISTRY[snapshot_ref]
    else:
        topology, router_config = pickle.loads(snapshot_ref)
    simulator = BgpSimulator(topology, max_rounds=max_rounds, shards=1)
    _apply_router_config(simulator, router_config)
    _WORKER_SIMULATOR = simulator
    _WORKER_EPOCH = 0
    _WORKER_ADDITION_ASNS = set()


def _sync_worker(
    simulator: "BgpSimulator", epoch: int, router_config: "bytes | dict[int, tuple] | None"
) -> None:
    """Bring a resident worker onto ``epoch`` before running a task.

    A stale epoch means the parent's router configuration changed (or a
    previous shard task failed): every resident pair was converged under
    the old rules, so all of it is discarded — the parent re-ships what
    the next batches need through its pending-sync set.  The config
    payload is a :func:`repro.routing.wire.encode_config` blob (a plain
    capture dict is still accepted for direct callers).
    """
    global _WORKER_EPOCH
    if epoch == _WORKER_EPOCH:
        return
    clear_prefix_state(simulator, list(simulator._prefix_holders))
    simulator._last_touched = {}
    if router_config is not None:
        if isinstance(router_config, (bytes, bytearray)):
            router_config = wire.decode_config(bytes(router_config))
        _apply_router_config(simulator, router_config)
    _WORKER_EPOCH = epoch


def _install_additions(
    simulator: "BgpSimulator", additions: dict[int, dict[int, Any]]
) -> None:
    """Mirror the parent's per-router export community additions."""
    global _WORKER_ADDITION_ASNS
    for asn in _WORKER_ADDITION_ASNS - set(additions):
        router = simulator.routers.get(asn)
        if router is not None:
            router.export_community_additions = {}
    for asn, mapping in additions.items():
        router = simulator.routers.get(asn)
        if router is not None:
            router.export_community_additions = dict(mapping)
    _WORKER_ADDITION_ASNS = set(additions)


def _resident_simulator() -> "BgpSimulator":
    """The worker-process simulator (initializer always ran)."""
    simulator = _WORKER_SIMULATOR
    if simulator is None:  # pragma: no cover - initializer always ran
        raise RuntimeError("shard worker used before initialization")
    return simulator


def _run_shard(task: ShardTask) -> tuple["SimulationReport", bytes]:
    """Worker entry point: converge one shard on resident state, return deltas.

    Unlike the stateless protocol this replaces, nothing is cleared up
    front: the worker's RIB state for its shards is authoritative (the
    parent shipped every pair it mutated since the last task via
    ``states``), so the install replaces exactly the shipped pairs and
    convergence continues from where the previous batch left off.  Both
    directions ride the :mod:`repro.routing.wire` codec; decoding
    through the resident simulator's interner keeps one attribute
    bundle per distinct set across the worker's whole lifetime.
    """
    epoch, router_config, additions_blob, events_blob, states_blob = task
    simulator = _resident_simulator()
    interner = simulator._wire_intern
    _sync_worker(simulator, epoch, router_config)
    install_prefix_state(simulator, wire.decode_states(states_blob, interner), stale=None)
    _install_additions(simulator, wire.decode_additions(additions_blob, interner))
    report = simulator._apply_local(wire.decode_events(events_blob, interner))
    # Ship back only the pairs this convergence touched: everything else
    # is either untouched in the parent or resident here for next time.
    deltas = capture_prefix_state(
        simulator, list(simulator._last_touched), holders=simulator._last_touched
    )
    return report, wire.encode_states(deltas)


def _fingerprint_shard(task: tuple) -> "list[PrefixState] | None":
    """Sanitizer audit entry point: capture the resident state of given pairs.

    ``task`` is ``(epoch, pairs)`` with ``pairs`` a list of
    ``(prefix, holder_asns)``.  Returns the worker's
    :func:`capture_prefix_state` snapshot for exactly those pairs, or
    ``None`` when the worker sits on a different epoch (its resident
    state is already condemned, so there is nothing settled to compare).
    Only dispatched by :func:`repro.analysis.sanitizer.check_drain`.
    """
    epoch, pairs = task
    simulator = _resident_simulator()
    if epoch != _WORKER_EPOCH:
        return None
    holders = {prefix: set(holder_asns) for prefix, holder_asns in pairs}
    return capture_prefix_state(
        simulator, [prefix for prefix, _holder_asns in pairs], holders=holders
    )


# ---------------------------------------------------------------------- pool
def _shutdown_executors(
    executors: "list[ProcessPoolExecutor | None]", wait: bool = True
) -> None:
    """Stop every live slot executor in place (idempotent)."""
    for index, executor in enumerate(executors):
        executors[index] = None
        if executor is not None:
            executor.shutdown(wait=wait, cancel_futures=True)


def _teardown_pool(
    executors: "list[ProcessPoolExecutor | None]",
    token_holder: "list[int | None]",
    wait: bool = True,
) -> None:
    """Full pool teardown: stop the workers, release the parked snapshot.

    ``token_holder`` is the pool's mutable one-element token cell rather
    than a token value: :meth:`ShardPool.adopt` re-parks a new snapshot
    mid-life, and a finalizer armed with the construction-time token
    would release the superseded token (already freed) and leak the
    live one.
    """
    _shutdown_executors(executors, wait=wait)
    _release_snapshot(token_holder[0])
    token_holder[0] = None


class ShardPool:
    """Slot-pinned, resident shard worker processes.

    ``shards`` fixes the partition granularity for the pool's lifetime
    and ``workers`` how many processes serve them; shard ``i`` is always
    dispatched to slot ``i % workers``, which is what makes worker RIB
    state reusable across batches.  Each slot is a single-worker
    executor started lazily on first use.

    ``snapshot`` is the ``(topology, router configuration)`` tuple the
    workers mirror.  On fork platforms it is parked in the pre-fork
    :data:`_SNAPSHOT_REGISTRY` and each slot executor forks after the
    write, so workers inherit it via copy-on-write without ever
    deserialising it; spawn-only platforms (and callers that pass
    pre-pickled ``bytes``) fall back to shipping the pickled payload to
    each worker's initializer.

    The pool is a context manager, shuts its workers down from a GC
    finalizer, and any stragglers are stopped by an ``atexit`` hook —
    a long-lived pool can never leak worker processes past interpreter
    exit.
    """

    def __init__(
        self,
        snapshot: "tuple | bytes",
        max_rounds: int = 1000,
        workers: int = 1,
        shards: int | None = None,
    ):
        self.workers = max(1, workers)
        #: Partition granularity — at least ``workers`` so every slot
        #: serves a non-empty shard range.
        self.shards = max(self.workers, shards if shards is not None else self.workers)
        #: Router-configuration generation (see :func:`_sync_worker`).
        self.epoch = 0
        #: Cumulative count of :class:`PrefixState` entries shipped
        #: parent -> worker (cheap, always on).
        self.shipped_state_entries = 0
        #: Cumulative encoded task payload bytes shipped parent ->
        #: worker (wire blobs plus the pickled router config on epoch
        #: bumps).  Always on: the sizes fall out of the codec for free.
        self.ship_bytes = 0
        self.tasks_dispatched = 0
        self._snapshot_token: "int | None" = None
        if isinstance(snapshot, (bytes, bytearray)):
            self._snapshot_ref: "int | bytes" = bytes(snapshot)
        elif _FORK_CONTEXT is not None:
            self._snapshot_token = _register_snapshot(snapshot)
            self._snapshot_ref = self._snapshot_token
        else:  # pragma: no cover - spawn-only platforms
            self._snapshot_ref = pickle.dumps(snapshot, protocol=pickle.HIGHEST_PROTOCOL)
        self._max_rounds = max_rounds
        self._executors: "list[ProcessPoolExecutor | None]" = [None] * self.workers
        self._slot_epochs = [0] * self.workers
        #: Mutable cell holding the *current* parked token, shared with
        #: the GC finalizer so an :meth:`adopt` re-park re-targets it.
        self._token_holder: "list[int | None]" = [self._snapshot_token]
        self._finalizer = weakref.finalize(
            self, _teardown_pool, self._executors, self._token_holder
        )
        residency.track_pool(self)

    def slot_for(self, shard_index: int) -> int:
        """The worker slot that owns ``shard_index`` (pinned for life)."""
        return shard_index % self.workers

    def bump_epoch(self) -> int:
        """Invalidate all resident worker state (config change / failed task)."""
        self.epoch += 1
        return self.epoch

    def adopt(self, snapshot: "tuple | bytes") -> int:
        """Re-home the pool onto a new ``(topology, router_config)`` snapshot.

        The warm-reuse path for a structurally identical topology: park
        the new snapshot (releasing the superseded registry token), keep
        the worker processes, and bump the epoch so every resident
        simulator discards its state and re-syncs on its next task.
        Slots that have not started yet fork from the new snapshot; slots
        already running keep their old (structurally equal) topology and
        receive the new router config through the epoch protocol.
        """
        previous_epoch = self.epoch
        superseded = self._snapshot_token
        self._snapshot_token = None
        if isinstance(snapshot, (bytes, bytearray)):
            self._snapshot_ref = bytes(snapshot)
        elif _FORK_CONTEXT is not None:
            self._snapshot_token = _register_snapshot(snapshot)
            self._snapshot_ref = self._snapshot_token
        else:  # pragma: no cover - spawn-only platforms
            self._snapshot_ref = pickle.dumps(snapshot, protocol=pickle.HIGHEST_PROTOCOL)
        self._token_holder[0] = self._snapshot_token
        _release_snapshot(superseded)
        self.bump_epoch()
        if os.environ.get("REPRO_SANITIZE", "") not in ("", "0"):
            from repro.analysis.sanitizer import check_adopt

            check_adopt(self, previous_epoch)
        return self.epoch

    def sync_header(
        self, slot: int, config_supplier: "Callable[[], bytes]"
    ) -> tuple[int, "bytes | None"]:
        """The ``(epoch, config-blob-or-None)`` header for a task bound to ``slot``.

        The configuration payload — a ``wire.encode_config`` blob —
        rides along only on the first task a slot sees after an epoch
        bump; ``config_supplier`` is called lazily so the common
        already-synced case pays nothing.
        """
        if self._slot_epochs[slot] != self.epoch:
            self._slot_epochs[slot] = self.epoch
            header: "tuple[int, bytes | None]" = (self.epoch, config_supplier())
        else:
            header = (self.epoch, None)
        if os.environ.get("REPRO_SANITIZE", "") not in ("", "0"):
            from repro.analysis.sanitizer import check_sync_header

            check_sync_header(self, slot, header[0], header[1])
        return header

    def submit(self, slot: int, fn, task) -> "Future":
        """Dispatch ``fn(task)`` to ``slot``'s resident worker."""
        if os.environ.get("REPRO_SANITIZE", "") not in ("", "0"):
            from repro.analysis.sanitizer import check_submit

            check_submit(self, slot, task)
        executor = self._executors[slot]
        if executor is None:
            executor = ProcessPoolExecutor(
                max_workers=1,
                mp_context=_FORK_CONTEXT,
                initializer=_initialize_worker,
                initargs=(self._snapshot_ref, self._max_rounds),
            )
            self._executors[slot] = executor
        self.tasks_dispatched += 1
        size = 0
        if isinstance(task, tuple):
            # Every payload field — including the router-config blob on
            # epoch bumps — is wire-encoded bytes now, so the exact ship
            # size is one generic pass.
            for field in task:
                if isinstance(field, (bytes, bytearray)):
                    size += len(field)
        self.ship_bytes += size
        return executor.submit(fn, task)

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *_exc) -> None:
        self.shutdown()

    def shutdown(self, wait: bool = True) -> None:
        """Stop the worker processes, release the snapshot (idempotent)."""
        self._snapshot_token = None
        _teardown_pool(self._executors, self._token_holder, wait=wait)
