"""Sharded multi-process propagation: partitioning, state transfer, worker pool.

PR 2 established that the propagation worklist partitions *exactly* by
prefix: a ``(router, prefix)`` pair only ever enqueues pairs of the same
prefix, so the per-prefix partitions are provably independent.  This
module turns that property into a subsystem:

* :func:`stable_shard` — a deterministic hash of ``(family, network,
  length)`` mapping every prefix to one of K shards.  It is the same in
  every process and every run (no ``PYTHONHASHSEED`` dependence), so a
  prefix always lands on the same shard and results never depend on
  worker scheduling.
* :func:`partition_events` — split a :class:`RoutingEvent` batch into
  per-shard event lists (empty shards are dropped — they would only
  spawn idle workers).
* :func:`capture_prefix_state` / :func:`install_prefix_state` /
  :func:`clear_prefix_state` — move the *complete* per-prefix control
  plane state (origination attributes, every Adj-RIB-In entry, and the
  derived best route) of the routers that hold any, between a parent
  simulator and a shard worker.  Capture in the parent ships a prefix's
  current state to its shard; capture in the worker after convergence
  ships the result back; install replays it, re-running best-path
  selection so the Loc-RIB (and its LPM trie) is rebuilt through the
  exact same code path a sequential run uses.
* :class:`ShardPool` — a fork-once ``ProcessPoolExecutor`` whose
  workers build one :class:`BgpSimulator` each from a shared pickled
  topology snapshot at start-up and reuse it across every ``apply`` of
  the parent simulator's lifetime.  Between tasks a worker only clears
  and re-seeds the prefixes of the incoming shard; residue on *other*
  prefixes is harmless because convergence of a prefix never reads
  another prefix's state.

The contract: worker simulators mirror the parent's router
configuration — topology-derived *and* hand-applied (policies,
services, vendor profiles, inbound filter chains; see
:func:`capture_router_config`) — as of pool creation, which happens
lazily at the first sharded ``apply``; the per-router
``export_community_additions`` are shipped with every task because the
attack drivers flip them between passes.  Sessions registered later via
:meth:`BgpSimulator.register_collector_peering` do not influence
propagation (collector ASes have no router, so exports to them are
skipped).  Router configuration changed *after* the first sharded apply
is the one thing not mirrored — reconfigure first, or call
:meth:`BgpSimulator.close` to force a fresh snapshot.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from repro.bgp.prefix import Prefix

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance
    from repro.bgp.attributes import PathAttributes
    from repro.bgp.route import RouteEntry
    from repro.routing.engine import BgpSimulator, RoutingEvent, SimulationReport

#: Environment variable capping the number of shard worker processes.
#: The grid runner sets it in its own workers so grid parallelism times
#: propagation parallelism never oversubscribes the machine.
SHARD_BUDGET_ENV = "REPRO_SHARD_BUDGET"

#: The complete state one router holds for one prefix:
#: ``(prefix, asn, originated_attributes | None,
#: ((neighbor_asn, adj_rib_in_entry), ...))``.
PrefixState = tuple[Prefix, int, "PathAttributes | None", tuple]

_MIX_A = 0x9E3779B97F4A7C15
_MIX_B = 0xBF58476D1CE4E5B9
_MASK = (1 << 64) - 1


def shard_worker_budget() -> int:
    """How many shard worker processes this process may use.

    :data:`SHARD_BUDGET_ENV` wins when set (that is how an outer grid
    pool hands each of its workers a slice of the machine); otherwise
    the CPU count.
    """
    raw = os.environ.get(SHARD_BUDGET_ENV)
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            pass
    return os.cpu_count() or 1


def _mix_to_shard(value: int, key: int, shard_count: int) -> int:
    """The shared 64-bit multiply/xor-shift mix behind every shard hash."""
    mixed = (value * _MIX_A + key * _MIX_B) & _MASK
    mixed ^= mixed >> 29
    mixed = (mixed * _MIX_B) & _MASK
    mixed ^= mixed >> 32
    return mixed % shard_count


def stable_shard(prefix: Prefix, shard_count: int) -> int:
    """Deterministically map ``prefix`` to a shard in ``[0, shard_count)``.

    A 64-bit multiply/xor-shift mix of ``(family, network, length)`` —
    not Python's ``hash()``, whose value for the same prefix is stable
    but whose use here would still couple shard placement to interned
    object identity semantics; this keeps placement a pure function of
    the prefix value in every interpreter.
    """
    return _mix_to_shard(prefix.network, (int(prefix.family) << 8) ^ prefix.length, shard_count)


def stable_asn_shard(asn: int, shard_count: int) -> int:
    """Deterministically map an ASN to a shard in ``[0, shard_count)``.

    The collector harvest partitions its (collector, peer) work-list by
    *peer*, so every collector session of one peer lands on the same
    shard and the per-peer export memo pays the rewrite chain once.
    """
    return _mix_to_shard(asn, 0x5157, shard_count)


def partition_events(
    events: Iterable["RoutingEvent"], shard_count: int
) -> list[tuple[int, list["RoutingEvent"]]]:
    """Split a batch into ``(shard_index, events)`` groups, empty shards dropped.

    Events keep their relative order inside each shard, so per-prefix
    seeding order (and therefore the converged state) is identical to a
    sequential pass over the same batch.
    """
    buckets: dict[int, list["RoutingEvent"]] = {}
    for event in events:
        buckets.setdefault(stable_shard(event.prefix, shard_count), []).append(event)
    return sorted(buckets.items())


# ---------------------------------------------------------------- state moves
def capture_prefix_state(
    simulator: "BgpSimulator",
    prefixes: Sequence[Prefix],
    holders: "dict[Prefix, set[int]] | None" = None,
) -> list[PrefixState]:
    """Snapshot the per-prefix state of every holder router, deterministically.

    Holders with no remaining state (e.g. fully withdrawn prefixes) are
    captured too: installing their empty snapshot is what *clears* the
    receiving side.  ``holders`` overrides which (prefix, router) pairs
    are captured (default: everything the simulator ever touched); the
    worker return path passes the last call's touched pairs so repeated
    applies only ship what actually changed.
    """
    states: list[PrefixState] = []
    holders_map = holders if holders is not None else simulator._prefix_holders
    routers = simulator.routers
    for prefix in prefixes:
        for asn in sorted(holders_map.get(prefix, ())):
            router = routers.get(asn)
            if router is None:
                continue
            adjacent = tuple(
                (neighbor, entry)
                for neighbor, rib in sorted(router.adj_rib_in.items())
                if (entry := rib.get(prefix)) is not None
            )
            states.append((prefix, asn, router.originated.get(prefix), adjacent))
    return states


def install_prefix_state(
    simulator: "BgpSimulator",
    states: Iterable[PrefixState],
    stale: "frozenset[Prefix] | set[Prefix] | None" = None,
) -> None:
    """Replay captured per-prefix state onto ``simulator``'s routers.

    Each ``(router, prefix)`` slot is cleared and rebuilt, then best-path
    selection re-runs so the Loc-RIB and its LPM trie are derived through
    the same ``_refresh_best`` path a sequential run uses — the receiving
    simulator is indistinguishable from one that converged in-process.

    ``stale`` lists the prefixes the receiver may already hold *other*
    state for (those slots are wiped before installing); ``None`` treats
    every prefix as stale.  The merge path passes the parent's pre-batch
    holder set — for the common fresh-announcement batch that set is
    empty and the per-slot clearing sweep is skipped entirely.
    """
    from repro.bgp.route import RouteEntry
    from repro.routing.decision import best_path

    routers = simulator.routers
    holders_map = simulator._prefix_holders
    for prefix, asn, originated, adjacent in states:
        router = routers[asn]
        if originated is None:
            router.originated.pop(prefix, None)
        else:
            router.originated[prefix] = originated
        if stale is None or prefix in stale:
            for rib in router.adj_rib_in.values():
                rib.withdraw(prefix)
        for neighbor, entry in adjacent:
            router._rib_in(neighbor).update(entry)
        # Re-select exactly like Router._refresh_best, but build the
        # candidate list from the delta itself: after the install the
        # snapshot *is* the complete per-prefix RIB state, so scanning
        # every neighbor RIB again (O(degree) per pair) would only
        # rediscover these entries.
        candidates: list[RouteEntry] = []
        if originated is not None:
            candidates.append(
                RouteEntry(prefix=prefix, attributes=originated, learned_from=asn)
            )
        candidates.extend(entry for _neighbor, entry in adjacent)
        loc_rib = router.loc_rib
        previous = loc_rib.best(prefix)
        new_best = best_path(candidates)
        loc_rib.set_candidates(prefix, candidates)
        if not (previous is None and new_best is None) and not (
            previous is not None
            and new_best is not None
            and previous.same_route(new_best)
        ):
            loc_rib.set_best(prefix, new_best)
        holders_map.setdefault(prefix, set()).add(asn)


def clear_prefix_state(simulator: "BgpSimulator", prefixes: Iterable[Prefix]) -> None:
    """Erase all state ``simulator`` holds for ``prefixes`` (worker task reset)."""
    routers = simulator.routers
    for prefix in prefixes:
        for asn in simulator._prefix_holders.pop(prefix, ()):
            router = routers.get(asn)
            if router is None:
                continue
            router.originated.pop(prefix, None)
            for rib in router.adj_rib_in.values():
                rib.withdraw(prefix)
            router.loc_rib.remove(prefix)


# ------------------------------------------------------------------- workers
#: Per-worker-process simulator, built once from the pool's topology
#: snapshot and reused for every task of the pool's lifetime.
_WORKER_SIMULATOR: "BgpSimulator | None" = None
#: Routers whose ``export_community_additions`` the previous task set
#: (cleared before the next task installs its own).
_WORKER_ADDITION_ASNS: set[int] = set()


def capture_router_config(simulator: "BgpSimulator") -> dict[int, tuple]:
    """Snapshot every router's effective configuration for the pool payload.

    Routers derive their policy objects from the topology at
    construction, but call sites may swap them afterwards (a custom
    inbound filter chain, a strict IRR, a vendor override).  Shipping
    the parent's *actual* per-router configuration with the snapshot
    means shard workers mirror those hand-applied changes too — the
    remaining contract is only that configuration settles before the
    first sharded ``apply`` (the pool snapshot is taken then).
    """
    return {
        asn: (
            router.propagation_policy,
            router.services,
            router.vendor,
            router.inbound_filters,
            router.send_community_configured,
        )
        for asn, router in simulator.routers.items()
    }


def _initialize_worker(snapshot_payload: bytes, max_rounds: int) -> None:
    """Pool initializer: unpickle the snapshot, build the mirrored simulator."""
    global _WORKER_SIMULATOR
    from repro.routing.engine import BgpSimulator

    topology, router_config = pickle.loads(snapshot_payload)
    simulator = BgpSimulator(topology, max_rounds=max_rounds, shards=1)
    for asn, config in router_config.items():
        router = simulator.routers.get(asn)
        if router is None:
            continue
        (
            router.propagation_policy,
            router.services,
            router.vendor,
            router.inbound_filters,
            router.send_community_configured,
        ) = config
    _WORKER_SIMULATOR = simulator


def _install_additions(
    simulator: "BgpSimulator", additions: dict[int, dict[int, Any]]
) -> None:
    """Mirror the parent's per-router export community additions."""
    global _WORKER_ADDITION_ASNS
    for asn in _WORKER_ADDITION_ASNS - set(additions):
        router = simulator.routers.get(asn)
        if router is not None:
            router.export_community_additions = {}
    for asn, mapping in additions.items():
        router = simulator.routers.get(asn)
        if router is not None:
            router.export_community_additions = dict(mapping)
    _WORKER_ADDITION_ASNS = set(additions)


def _run_shard(
    task: tuple[list["RoutingEvent"], list[PrefixState], dict[int, dict[int, Any]]],
) -> tuple["SimulationReport", list[PrefixState]]:
    """Worker entry point: converge one shard, return its report and deltas."""
    from repro.routing.engine import _distinct_prefixes

    events, states, additions = task
    simulator = _WORKER_SIMULATOR
    if simulator is None:  # pragma: no cover - initializer always ran
        raise RuntimeError("shard worker used before initialization")
    prefixes = _distinct_prefixes(events)
    seen = set(prefixes)
    for state in states:
        if state[0] not in seen:
            seen.add(state[0])
            prefixes.append(state[0])
    # Reset exactly this shard's prefixes (residue from earlier batches
    # on the same worker), replay the parent's current state for them,
    # and converge with the same per-shard core the parent would use.
    # The clear just wiped every slot, so the install skips re-clearing.
    clear_prefix_state(simulator, prefixes)
    install_prefix_state(simulator, states, stale=frozenset())
    _install_additions(simulator, additions)
    report = simulator._apply_local(events)
    # Ship back only the pairs this convergence touched: everything the
    # parent sent that stayed untouched is still byte-identical there.
    deltas = capture_prefix_state(simulator, prefixes, holders=simulator._last_touched)
    return report, deltas


class ShardPool:
    """A lazily started, reusable pool of shard worker processes.

    The snapshot — pickled ``(topology, router configuration)`` — is
    produced once by the owning simulator and shipped to each worker
    exactly once (at worker start-up); tasks then only carry events and
    per-prefix state.  ``shutdown`` is idempotent and also runs from
    the owning simulator's GC finalizer.
    """

    def __init__(self, snapshot_payload: bytes, max_rounds: int = 1000, workers: int = 1):
        self.workers = max(1, workers)
        self._payload = snapshot_payload
        self._max_rounds = max_rounds
        self._executor: ProcessPoolExecutor | None = None

    def _ensure(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_initialize_worker,
                initargs=(self._payload, self._max_rounds),
            )
        return self._executor

    def run(self, tasks: Sequence[tuple], fn=None) -> list[tuple]:
        """Run every shard task; results come back in task order.

        ``fn`` selects the worker entry point (default: the propagation
        shard runner).  The collector harvest passes its own runner and
        reuses the same warm workers — one snapshot, one pool, both
        subsystems.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        return list(self._ensure().map(fn or _run_shard, tasks))

    def shutdown(self, wait: bool = True) -> None:
        """Stop the worker processes (idempotent)."""
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=wait, cancel_futures=True)
