"""Process-wide shard-pool residency: providers, leases and warm reuse.

PR 6 made shard workers *resident* — their per-shard RIB state survives
between batches — but every :class:`~repro.routing.engine.BgpSimulator`
still privately owned its :class:`~repro.routing.shard.ShardPool`, so
the win evaporated at every lifecycle boundary: each experiment run and
every grid cell cold-started workers, re-parked a topology snapshot and
re-shipped full shard state.  This module lifts pool ownership out of
the simulator into a process-level :class:`PoolProvider` that builds,
caches and *leases* pools:

* :class:`ResidencyPolicy` — ``"none"`` (today's behaviour and the
  fallback: a released pool shuts down immediately), ``"pinned"`` (every
  released pool is kept warm until the provider closes) and ``"auto"``
  (released pools are kept warm, evicted least-recently-used while the
  warm set's total worker count exceeds
  :func:`~repro.routing.shard.shard_worker_budget`).
* :class:`PoolLease` — what a simulator holds instead of a pool.  The
  router-config epoch state lives *on the lease* (capture, compact
  :func:`~repro.routing.wire.encode_config` blob cached per epoch), so
  two simulators can adopt one pool in turn without epoch aliasing.
* :class:`PoolProvider.acquire` — matches a warm pool by structural
  topology fingerprint and ``max_rounds``.  A pool released by the same
  simulator over the same topology resumes as-is (no epoch bump: the
  workers' resident state is still exactly what the parent last
  shipped); any other structural match is **adopted** via
  :meth:`~repro.routing.shard.ShardPool.adopt` — re-homed onto the new
  simulator's snapshot with an epoch bump, so the workers discard state
  and re-sync instead of paying a fork cold-start.
* :func:`residency_scope` / :func:`install_provider` /
  :func:`current_provider` — lexical scoping for experiment lifecycles
  and grid cells, plus a process-lifetime provider for grid workers.

The pool-of-last-resort bookkeeping that used to live in
:mod:`repro.routing.shard` (the live-pool weak set and its ``atexit``
hook) lives here now: the provider layer owns pool lifecycle.
"""

from __future__ import annotations

import atexit
import contextlib
import hashlib
import weakref
from typing import TYPE_CHECKING, Iterator

from repro.exceptions import RoutingError

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance
    from repro.routing.engine import BgpSimulator
    from repro.routing.shard import ShardPool
    from repro.topology.topology import Topology

#: The accepted residency policy names, in fallback order.
RESIDENCY_POLICIES = ("auto", "pinned", "none")


class ResidencyPolicy(str):
    """A validated residency policy name (``"auto"``/``"pinned"``/``"none"``).

    A plain ``str`` subclass so call sites can compare against the
    literal names; construction rejects anything outside
    :data:`RESIDENCY_POLICIES`.
    """

    def __new__(cls, value: str = "none") -> "ResidencyPolicy":
        if value not in RESIDENCY_POLICIES:
            raise RoutingError(
                f"unknown residency policy {value!r}: expected one of "
                f"{', '.join(RESIDENCY_POLICIES)}"
            )
        return super().__new__(cls, value)


# ------------------------------------------------------------- live pools
#: Every live pool, so the interpreter-exit hook can stop workers that
#: neither GC (lease finalizer) nor an explicit ``shutdown`` reached.
#: Registered by ``ShardPool.__init__`` via :func:`track_pool`.
_LIVE_POOLS: "weakref.WeakSet[ShardPool]" = weakref.WeakSet()


def track_pool(pool: "ShardPool") -> None:
    """Register ``pool`` with the interpreter-exit safety net."""
    _LIVE_POOLS.add(pool)  # repro: noqa[RPR011,RPR032]: parent-process-only pool registry — pools are only ever constructed in the parent (reachability is the bare-name '.withdraw' call-graph over-approximation)


@atexit.register
def _shutdown_live_pools() -> None:  # pragma: no cover - interpreter teardown
    for pool in list(_LIVE_POOLS):
        pool.shutdown(wait=False)


# ------------------------------------------------------------ fingerprint
def topology_fingerprint(topology: "Topology") -> bytes:
    """A deterministic digest of a topology's *structural* identity.

    Covers exactly what a shard worker derives from its parked snapshot
    and does **not** receive through the config epoch protocol: the AS
    set, per-AS roles and scalar switches, and the relationship graph.
    Policy objects are deliberately excluded — they ship per epoch via
    :func:`~repro.routing.shard.capture_router_config` — as are
    originations, which ship as events/state.  Two topologies with equal
    fingerprints are interchangeable as worker snapshots: an adopted
    pool's resident simulators serve the new topology after the epoch
    bump clears their state and the config re-ships.  Computed fresh on
    every acquire/release (lifecycle boundaries, not hot paths) — never
    cached, so a mutated topology can never match through a stale digest.
    """
    digest = hashlib.blake2b(digest_size=16)
    for asys in sorted(topology, key=lambda item: item.asn):
        digest.update(
            (
                f"A{asys.asn}|{asys.role}|{int(asys.validates_origin)}"
                f"{int(asys.blackhole_before_validation)}"
                f"{int(asys.act_on_communities_from_any_neighbor)}"
                f"|{asys.max_prefix_length}|{asys.max_blackhole_prefix_length}"
            ).encode()
        )
        for neighbor in sorted(topology.neighbors(asys.asn)):
            relationship = topology.relationship(asys.asn, neighbor)
            value = "" if relationship is None else str(int(relationship))
            digest.update(f";{neighbor}:{value}".encode())
        digest.update(b"\n")
    return digest.digest()


# ------------------------------------------------------------------ lease
class PoolLease:
    """One simulator's handle on a provider-owned :class:`ShardPool`.

    The lease owns the router-config epoch state that used to live on
    the simulator (``_pool_config``): the capture the pool's current
    epoch reflects, plus its compact wire encoding cached per epoch.
    Keeping it here means a pool handed from one simulator to another
    (via :meth:`PoolProvider.acquire` adoption) can never alias a stale
    capture into the new owner's epoch decisions.
    """

    __slots__ = (
        "pool",
        "resumed",
        "_provider",
        "_config",
        "_config_blob",
        "_topology",
        "_owner_ref",
        "_released",
        "_finalizer",
        "__weakref__",
    )

    def __init__(
        self,
        pool: "ShardPool",
        provider: "PoolProvider",
        config: dict[int, tuple],
        topology: "Topology",
        owner: "BgpSimulator",
        resumed: bool = False,
    ):
        self.pool = pool
        #: Whether this lease resumes the exact worker state the same
        #: simulator released (same owner, same topology object, no
        #: epoch bump) — the engine keeps its pending-sync continuation
        #: instead of re-seeding the full holder map.
        self.resumed = resumed
        self._provider = provider
        self._config = config
        self._config_blob: bytes | None = None
        self._topology = topology
        self._owner_ref = weakref.ref(owner)
        self._released = False
        # GC of the owning simulator must not leak the lease (and with a
        # "none" provider, must not leak worker processes).  The callback
        # references the lease, never the simulator.
        self._finalizer = weakref.finalize(owner, PoolLease.release, self)

    def config_blob(self) -> bytes:
        """The current capture as a wire blob (encoded once per epoch)."""
        if self._config_blob is None:
            from repro.routing import wire

            self._config_blob = wire.encode_config(self._config)
        return self._config_blob

    def refresh(self, simulator: "BgpSimulator") -> bool:
        """Re-capture the router configuration; bump the epoch if it changed.

        Returns ``True`` on a bump — the caller must re-arm its
        pending-sync set, because every worker will discard its resident
        state at the next dispatch.
        """
        from repro.routing.shard import capture_router_config

        current = capture_router_config(simulator)
        if current == self._config:
            return False
        self._config = current
        self._config_blob = None
        self.pool.bump_epoch()
        return True

    def invalidate(self) -> None:
        """Condemn all resident worker state (after a failed dispatch)."""
        self.pool.bump_epoch()

    def release(self) -> bool:
        """Hand the pool back to the provider (idempotent).

        Returns ``True`` when the pool was parked warm — the releasing
        simulator may keep extending its pending-sync continuation and
        resume residency on its next acquire.
        """
        if self._released:
            return False
        self._released = True
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        return self._provider._release(self)


class _WarmRecord:
    """A released pool parked for reuse, with what re-acquisition needs."""

    __slots__ = ("pool", "key", "topology", "config", "owner")

    def __init__(
        self,
        pool: "ShardPool",
        key: tuple,
        topology: "Topology",
        config: dict[int, tuple],
        owner: "weakref.ref",
    ):
        self.pool = pool
        self.key = key
        #: Strong reference on purpose: the parked fork snapshot (or the
        #: adopting re-park) aliases this topology's objects, so it must
        #: outlive the warm pool.
        self.topology = topology
        self.config = config
        self.owner = owner


# --------------------------------------------------------------- provider
class PoolProvider:
    """Builds, caches and leases :class:`ShardPool` instances.

    ``stats`` is a plain counter dict — ``builds`` (pools constructed),
    ``leases`` (acquire calls), ``resumes`` (same-simulator warm hits),
    ``adoptions`` (warm pools re-homed onto a new simulator),
    ``evictions`` (warm pools stopped by the ``auto`` budget),
    ``releases`` — so tests and benchmarks can observe warm reuse
    without reaching into pool internals.
    """

    def __init__(self, policy: str = "none"):
        self.policy = ResidencyPolicy(policy)
        #: Warm pools in release order — index 0 is the LRU eviction
        #: candidate.
        self._warm: list[_WarmRecord] = []
        self._closed = False
        self.stats = {
            "builds": 0,
            "leases": 0,
            "resumes": 0,
            "adoptions": 0,
            "evictions": 0,
            "releases": 0,
        }

    # ------------------------------------------------------------- acquire
    def acquire(self, simulator: "BgpSimulator", wanted_shards: int) -> PoolLease:
        """Lease a pool serving ``wanted_shards`` shards to ``simulator``.

        Preference order: resume the warm pool this simulator itself
        released (workers still hold its state — no epoch bump), adopt
        any warm pool with a matching structural fingerprint (epoch
        bump, workers re-sync), else build a fresh pool.  The shard/
        worker compatibility predicate is the same one
        ``BgpSimulator._ensure_pool`` applies to a held pool, so a
        leased pool never silently under-serves the caller.
        """
        from repro.routing.shard import (
            ShardPool,
            capture_router_config,
            shard_worker_budget,
        )

        self.stats["leases"] += 1
        limit = (
            simulator.max_workers
            if simulator.max_workers is not None
            else shard_worker_budget()
        )
        key = (topology_fingerprint(simulator.topology), simulator.max_rounds)
        record = self._take_warm(simulator, wanted_shards, limit, key)
        if record is not None:
            pool = record.pool
            if record.owner() is simulator and record.topology is simulator.topology:
                self.stats["resumes"] += 1
                return PoolLease(
                    pool, self, record.config, record.topology, simulator, resumed=True
                )
            config = capture_router_config(simulator)
            pool.adopt((simulator.topology, config))
            self.stats["adoptions"] += 1
            return PoolLease(pool, self, config, simulator.topology, simulator)
        config = capture_router_config(simulator)
        pool = ShardPool(
            (simulator.topology, config),
            max_rounds=simulator.max_rounds,
            workers=max(1, min(wanted_shards, limit)),
            shards=wanted_shards,
        )
        self.stats["builds"] += 1
        return PoolLease(pool, self, config, simulator.topology, simulator)

    def _take_warm(
        self, simulator: "BgpSimulator", wanted_shards: int, limit: int, key: tuple
    ) -> "_WarmRecord | None":
        """Pop the best compatible warm record, or ``None``.

        Two passes: an exact same-owner/same-topology record anywhere in
        the warm set beats a structural match (resuming is free, adopting
        costs an epoch bump); within a pass the most recently released
        record wins.
        """

        def compatible(record: _WarmRecord) -> bool:
            pool = record.pool
            return (
                record.key == key
                and wanted_shards <= pool.shards
                and pool.workers <= max(1, min(pool.shards, limit))
            )

        for index in range(len(self._warm) - 1, -1, -1):
            record = self._warm[index]
            if (
                compatible(record)
                and record.owner() is simulator
                and record.topology is simulator.topology
            ):
                return self._warm.pop(index)
        for index in range(len(self._warm) - 1, -1, -1):
            if compatible(self._warm[index]):
                return self._warm.pop(index)
        return None

    # ------------------------------------------------------------- release
    def _release(self, lease: PoolLease) -> bool:
        """Take a pool back from a lease; park it warm or shut it down."""
        self.stats["releases"] += 1
        if self._closed or self.policy == "none":
            lease.pool.shutdown()
            return False
        self._warm.append(
            _WarmRecord(
                pool=lease.pool,
                key=(topology_fingerprint(lease._topology), lease.pool._max_rounds),
                topology=lease._topology,
                config=lease._config,
                owner=lease._owner_ref,
            )
        )
        if self.policy == "auto":
            self._evict_over_budget()
        return True

    def _evict_over_budget(self) -> None:
        """Stop LRU warm pools while the warm set exceeds the worker budget.

        A single warm pool is always kept, even if it alone exceeds a
        since-shrunk budget: evicting the only warm pool would defeat
        the policy (the next acquire re-checks the limit anyway and
        rebuilds if the pool no longer fits).
        """
        from repro.routing.shard import shard_worker_budget

        budget = max(1, shard_worker_budget())
        while (
            len(self._warm) > 1
            and sum(record.pool.workers for record in self._warm) > budget
        ):
            record = self._warm.pop(0)
            record.pool.shutdown()
            self.stats["evictions"] += 1

    # --------------------------------------------------------------- close
    def close(self) -> None:
        """Shut down every warm pool; future releases shut down too.

        Outstanding leases stay valid — simulators that outlive the
        provider's scope keep their pool until they release it, at which
        point the closed provider shuts it down instead of parking it.
        """
        self._closed = True
        while self._warm:
            self._warm.pop().pool.shutdown()

    def __enter__(self) -> "PoolProvider":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


# ---------------------------------------------------------------- scoping
#: The provider scope stack.  ``residency_scope`` pushes/pops at the
#: top; ``install_provider`` (grid workers) inserts at the bottom so a
#: nested scope can still override it.
_SCOPES: list[PoolProvider] = []  # repro: noqa[RPR011,RPR032]: parent-process-only scope stack — providers are never used inside a shard worker (reachability is the bare-name '.withdraw' call-graph over-approximation)
#: The policy-"none" provider of last resort, built on first use.
_FALLBACK: "PoolProvider | None" = None


def current_provider() -> PoolProvider:
    """The innermost active provider, or the ``"none"`` fallback."""
    if _SCOPES:
        return _SCOPES[-1]
    global _FALLBACK
    if _FALLBACK is None:
        _FALLBACK = PoolProvider("none")  # repro: noqa[RPR011,RPR032]: parent-process-only fallback provider (reachability is the bare-name '.withdraw' call-graph over-approximation)
    return _FALLBACK  # repro: noqa[RPR032]: parent-process-only fallback provider (reachability is the bare-name '.withdraw' call-graph over-approximation)


@contextlib.contextmanager
def residency_scope(policy: "str | None") -> Iterator[PoolProvider]:
    """Scoped residency provider (closed — pools stopped — on exit).

    ``None`` is a no-op scope yielding whatever provider is already
    active, so callers threading an optional policy can always write
    ``with residency_scope(maybe_policy) as provider:``.  Re-entering a
    scope whose active provider already runs the same policy reuses it,
    which is what lets an `Experiment.run` inside a residency-scoped
    grid cell share the cell's warm pools instead of fencing them off.
    """
    if policy is None:
        yield current_provider()
        return
    policy = ResidencyPolicy(policy)
    if _SCOPES and _SCOPES[-1].policy == policy:
        yield _SCOPES[-1]
        return
    provider = PoolProvider(policy)
    _SCOPES.append(provider)
    try:
        yield provider
    finally:
        if provider in _SCOPES:
            _SCOPES.remove(provider)
        provider.close()


def install_provider(policy: str) -> PoolProvider:
    """Install a process-lifetime provider at the bottom of the stack.

    Grid workers call this from their initializer so every cell they run
    shares one warm set for the worker's whole lifetime (its pools are
    stopped by the ``atexit`` safety net); lexical ``residency_scope``
    uses still override it.
    """
    provider = PoolProvider(policy)
    _SCOPES.insert(0, provider)
    return provider
