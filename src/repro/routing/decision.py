"""The BGP best-path decision process.

Implements the standard preference order the paper's scenarios depend
on: LOCAL_PREF first (which is how blackhole and "customer backup"
communities override everything else), then AS-path length (which is
what path prepending manipulates), then origin code, MED, and finally a
deterministic neighbor-ASN tie-break so simulations are reproducible.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.bgp.route import RouteEntry


def _comparison_key(entry: RouteEntry) -> tuple:
    """Return a sort key; *smaller* keys are more preferred."""
    return (
        -entry.attributes.effective_local_pref(),
        entry.attributes.path_length(),
        int(entry.attributes.origin),
        entry.attributes.med if entry.attributes.med is not None else 0,
        entry.learned_from,
    )


def compare_routes(a: RouteEntry, b: RouteEntry) -> int:
    """Return -1 if ``a`` is preferred over ``b``, 1 if ``b`` wins, 0 if equal keys."""
    key_a, key_b = _comparison_key(a), _comparison_key(b)
    if key_a < key_b:
        return -1
    if key_a > key_b:
        return 1
    return 0


def best_path(candidates: Iterable[RouteEntry]) -> RouteEntry | None:
    """Return the most preferred route among ``candidates`` (None if empty).

    Rejected routes never win; if every candidate is rejected the result
    is None.
    """
    viable = [c for c in candidates if not c.rejected]
    if not viable:
        return None
    return min(viable, key=_comparison_key)


def rank_routes(candidates: Sequence[RouteEntry]) -> list[RouteEntry]:
    """Return the viable candidates ordered from most to least preferred."""
    viable = [c for c in candidates if not c.rejected]
    return sorted(viable, key=_comparison_key)
