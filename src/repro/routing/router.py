"""The per-AS router: import processing, best-path selection, export processing.

A :class:`Router` models one AS's control plane at the granularity the
paper's scenarios need:

* **import**: loop prevention, inbound prefix/IRR filters (including the
  blackhole-before-validation misconfiguration), and application of the
  AS's own community services (prepend, local-pref, blackhole, selective
  announce, suppress), gated by business relationship when the service
  is documented as customers-only;
* **selection**: the standard decision process over all neighbors'
  Adj-RIB-In entries;
* **export**: Gao-Rexford relationship rules, per-route restrictions set
  by community actions, NO_EXPORT handling, community propagation policy
  and vendor defaults, own-ASN prepending.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bgp.attributes import PathAttributes
from repro.bgp.community import NO_ADVERTISE, NO_EXPORT, NO_PEER, CommunitySet
from repro.bgp.prefix import Prefix
from repro.bgp.rib import AdjRibIn, LocRib, RibSnapshot
from repro.bgp.route import Announcement, RouteEntry
from repro.exceptions import RoutingError
from repro.policy.actions import ActionType
from repro.policy.community_policy import CommunityPropagationPolicy, ForwardAllPolicy
from repro.policy.filters import FilterDecision, InboundFilterChain
from repro.policy.services import CommunityServiceCatalog
from repro.policy.vendor import JUNIPER_PROFILE, VendorProfile
from repro.routing.decision import best_path
from repro.topology.asys import AutonomousSystem
from repro.topology.relationships import Relationship


@dataclass
class ImportResult:
    """Outcome of importing one announcement."""

    accepted: bool
    entry: RouteEntry | None = None
    reason: str = ""
    triggered_services: list[ActionType] = field(default_factory=list)
    #: True if this import changed the best route for the prefix.
    best_changed: bool = False


#: Sentinel stored in the batch import memo for as-path-loop rejections
#: (the only rejection whose reason is prefix-independent).
_LOOP_REJECT = ("as-path loop",)


@dataclass
class ExportDecision:
    """Outcome of deciding whether/how to export a route to one neighbor."""

    export: bool
    announcement: Announcement | None = None
    reason: str = ""


class Router:
    """The BGP speaker of one AS."""

    def __init__(
        self,
        asys: AutonomousSystem,
        neighbor_relationships: dict[int, Relationship],
        propagation_policy: CommunityPropagationPolicy | None = None,
        services: CommunityServiceCatalog | None = None,
        vendor: VendorProfile | None = None,
        inbound_filters: InboundFilterChain | None = None,
        send_community_configured: bool = True,
    ):
        self.asys = asys
        self.asn = asys.asn
        self.neighbor_relationships = dict(neighbor_relationships)
        self.propagation_policy = propagation_policy or asys.propagation_policy or ForwardAllPolicy()
        self.services = services or asys.services
        self.vendor = vendor or asys.vendor or JUNIPER_PROFILE
        self.inbound_filters = inbound_filters or InboundFilterChain(
            validate_origin=asys.validates_origin,
            blackhole_before_validation=asys.blackhole_before_validation,
        )
        #: Whether the operator explicitly configured community sending
        #: (matters only for vendors that do not send by default).
        self.send_community_configured = send_community_configured
        self.adj_rib_in: dict[int, AdjRibIn] = {
            asn: AdjRibIn(asn) for asn in self.neighbor_relationships
        }
        #: Sorted neighbor list, rebuilt lazily when sessions are added.
        self._neighbor_order: list[int] | None = None
        self.loc_rib = LocRib()
        #: Prefixes this router originates, with the attributes it uses.
        self.originated: dict[Prefix, PathAttributes] = {}
        #: Communities added on export towards specific neighbors.  This is how
        #: an on-path attacker tags somebody else's prefix with a remote AS's
        #: service community on selected sessions (Figures 2, 7(a) and 8(b)).
        self.export_community_additions: dict[int, CommunitySet] = {}

    # ---------------------------------------------------------------- helpers
    def relationship_with(self, neighbor_asn: int) -> Relationship | None:
        """Relationship from this AS's point of view (None if not a neighbor)."""
        return self.neighbor_relationships.get(neighbor_asn)

    def neighbors(self) -> list[int]:
        """All neighbor ASNs, sorted.

        The sorted order is cached (the propagation worklist asks on
        every export step); callers must treat the list as read-only
        and add sessions via :meth:`add_neighbor`, which invalidates it.
        """
        if self._neighbor_order is None:
            self._neighbor_order = sorted(self.neighbor_relationships)
        return self._neighbor_order

    def add_neighbor(self, neighbor_asn: int, relationship: Relationship) -> None:
        """Register a neighbor session added after construction.

        Keeps ``adj_rib_in`` in sync so a later announcement from that
        ASN (e.g. a route-collector peering) does not hit a missing RIB.
        An existing relationship is preserved.
        """
        self.neighbor_relationships.setdefault(neighbor_asn, relationship)
        self.adj_rib_in.setdefault(neighbor_asn, AdjRibIn(neighbor_asn))
        self._neighbor_order = None

    def _rib_in(self, neighbor_asn: int) -> AdjRibIn:
        """The Adj-RIB-In for ``neighbor_asn``, created lazily if missing."""
        rib = self.adj_rib_in.get(neighbor_asn)
        if rib is None:
            rib = self.adj_rib_in[neighbor_asn] = AdjRibIn(neighbor_asn)
        return rib

    def snapshot(self) -> RibSnapshot:
        """A looking-glass view of the current best routes."""
        return RibSnapshot.from_loc_rib(self.asn, self.loc_rib)

    # ------------------------------------------------------------- origination
    def originate(
        self,
        prefix: Prefix,
        communities: CommunitySet | None = None,
        local_pref: int | None = None,
        origin_asn: int | None = None,
    ) -> RouteEntry:
        """Originate ``prefix`` locally (optionally spoofing ``origin_asn`` for hijacks).

        The AS path of an originated route is just the origin ASN; the
        router's own ASN is prepended on export like any other route, so
        announcing with a spoofed origin yields path ``self_asn origin_asn``
        downstream unless ``origin_asn`` equals ``self.asn``.
        """
        from repro.bgp.aspath import ASPath

        effective_origin = origin_asn if origin_asn is not None else self.asn
        as_path = ASPath.of(effective_origin) if effective_origin != self.asn else ASPath.of()
        attributes = PathAttributes(
            as_path=as_path,
            communities=communities or CommunitySet(),
            local_pref=local_pref,
        )
        self.originated[prefix] = attributes
        entry = RouteEntry(prefix=prefix, attributes=attributes, learned_from=self.asn)
        self._refresh_best(prefix)
        return entry

    def withdraw_origination(self, prefix: Prefix) -> None:
        """Stop originating ``prefix``."""
        self.originated.pop(prefix, None)
        self._refresh_best(prefix)

    # ----------------------------------------------------------------- import
    def import_announcement(
        self, announcement: Announcement, cache: dict | None = None
    ) -> ImportResult:
        """Run import policy and update the Adj-RIB-In, *without* re-selecting.

        This is the deferred half used by the batch propagation engine:
        it applies loop prevention, inbound filters and community
        services and stores the result, but leaves best-path selection
        to a later :meth:`refresh_best` so a router receiving several
        updates for one prefix in the same wave re-selects once.
        ``best_changed`` of the returned result is therefore always
        False here.

        ``cache`` is an optional batch-scoped memo (the import-side twin
        of the export memo in :meth:`export_to`): the whole import
        pipeline — loop check, inbound filters, community services —
        depends only on the sender, the inbound attributes and the
        prefix's *shape* (family, length, claimed origin), never on the
        network bits, unless the filter chain says otherwise
        (:meth:`InboundFilterChain.prefix_scoped`).  A batch announcing
        K prefixes with identical attributes therefore pays the
        filter/action chain once per (router, sender, attributes)
        instead of K times.  Filter rejections are never memoised: their
        reasons quote the concrete prefix, so replaying them across
        prefixes would store wrong rejection reasons.
        """
        sender = announcement.sender_asn
        if sender not in self.neighbor_relationships:
            raise RoutingError(f"AS{self.asn} received an announcement from non-neighbor AS{sender}")

        attributes = announcement.attributes
        key = None
        if cache is not None and not self.inbound_filters.prefix_scoped():
            key = (
                self.asn,
                sender,
                attributes,
                announcement.prefix.family,
                announcement.prefix.length,
                announcement.origin_asn,
            )
            memo = cache.get(key)
            if memo is not None:
                return self._replay_import(announcement, sender, memo)

        # Loop prevention: reject routes already containing our ASN.  The
        # update still implicitly withdraws whatever this sender announced
        # for the prefix before (RFC 4271 §9.1.4): the rejected entry
        # replaces the stale one so it can never linger as a candidate.
        if attributes.as_path.contains(self.asn):
            entry = RouteEntry(
                prefix=announcement.prefix,
                attributes=attributes,
                learned_from=sender,
                rejected=True,
                rejection_reason="as-path loop",
            )
            self._rib_in(sender).update(entry)
            if key is not None:
                cache[key] = _LOOP_REJECT
            return ImportResult(False, entry=entry, reason="as-path loop")

        is_blackhole_tagged = self._is_blackhole_tagged(attributes.communities)
        decision = self.inbound_filters.evaluate(
            announcement.prefix, announcement.origin_asn, is_blackhole_tagged
        )
        if not decision:
            entry = RouteEntry(
                prefix=announcement.prefix,
                attributes=attributes,
                learned_from=sender,
                rejected=True,
                rejection_reason=decision.reason,
            )
            self._rib_in(sender).update(entry)
            return ImportResult(False, entry=entry, reason=decision.reason)

        # eBGP: LOCAL_PREF is not accepted from neighbors; reset to default so
        # only this AS's own policies (community services) can set it.
        if attributes.local_pref is not None:
            attributes = attributes.replace(local_pref=None)

        entry = RouteEntry(
            prefix=announcement.prefix, attributes=attributes, learned_from=sender
        )
        entry, triggered = self._apply_community_services(entry)
        self._rib_in(sender).update(entry)
        if key is not None:
            cache[key] = (
                entry.attributes,
                entry.blackholed,
                entry.export_prepend,
                entry.suppress_to,
                entry.announce_only_to,
                tuple(triggered),
            )
        return ImportResult(True, entry=entry, triggered_services=triggered)

    def _replay_import(
        self, announcement: Announcement, sender: int, memo: tuple
    ) -> ImportResult:
        """Rebuild a memoised import outcome for a new prefix of the same shape."""
        if memo is _LOOP_REJECT:
            entry = RouteEntry(
                prefix=announcement.prefix,
                attributes=announcement.attributes,
                learned_from=sender,
                rejected=True,
                rejection_reason="as-path loop",
            )
            self._rib_in(sender).update(entry)
            return ImportResult(False, entry=entry, reason="as-path loop")
        attributes, blackholed, export_prepend, suppress_to, announce_only_to, triggered = memo
        entry = RouteEntry(
            prefix=announcement.prefix,
            attributes=attributes,
            learned_from=sender,
            blackholed=blackholed,
            export_prepend=export_prepend,
            suppress_to=suppress_to,
            announce_only_to=announce_only_to,
        )
        self._rib_in(sender).update(entry)
        return ImportResult(True, entry=entry, triggered_services=list(triggered))

    def process_announcement(self, announcement: Announcement) -> ImportResult:
        """Import one announcement from a neighbor; returns what happened.

        The eager single-update entry point: import plus immediate
        best-path refresh, with ``best_changed`` reporting the outcome.
        """
        result = self.import_announcement(announcement)
        result.best_changed = self._refresh_best(announcement.prefix)
        return result

    def remove_announcement(self, prefix: Prefix, sender_asn: int) -> bool:
        """Drop a neighbor's route *without* re-selecting; True if one existed."""
        rib = self.adj_rib_in.get(sender_asn)
        return rib is not None and rib.withdraw(prefix) is not None

    def process_withdrawal(self, prefix: Prefix, sender_asn: int) -> bool:
        """Withdraw a neighbor's route for ``prefix``; return True if best changed."""
        self.remove_announcement(prefix, sender_asn)
        return self._refresh_best(prefix)

    def _is_blackhole_tagged(self, communities: CommunitySet) -> bool:
        """True if the announcement carries a blackhole community relevant here."""
        if communities.blackhole_communities():
            return True
        if self.services is not None:
            return any(c in communities for c in self.services.blackhole_communities())
        return False

    def _apply_community_services(self, entry: RouteEntry) -> tuple[RouteEntry, list[ActionType]]:
        """Apply this AS's own community services to an imported route."""
        triggered: list[ActionType] = []
        if self.services is None:
            return entry, triggered
        relationship = self.relationship_with(entry.learned_from)
        attributes = entry.attributes
        blackholed = entry.blackholed
        export_prepend = entry.export_prepend
        suppress_to = set(entry.suppress_to)
        announce_only_to = entry.announce_only_to

        for service in self.services.matching(attributes.communities):
            if (
                service.customers_only
                and relationship != Relationship.CUSTOMER
                and not self.asys.act_on_communities_from_any_neighbor
            ):
                continue
            outcome = service.action.apply(attributes, self.asn)
            if service.action_type == ActionType.PREPEND:
                # Prepending is applied on export, not on the locally stored path,
                # so the community does not distort this AS's own selection.
                export_prepend += getattr(service.action, "count", 1)
            else:
                attributes = outcome.attributes
            blackholed = blackholed or outcome.blackholed
            suppress_to |= set(outcome.suppress_to)
            if outcome.announce_only_to is not None:
                if announce_only_to is None:
                    announce_only_to = outcome.announce_only_to
                else:
                    announce_only_to = frozenset(announce_only_to & outcome.announce_only_to)
            triggered.append(service.action_type)

        new_entry = entry.replace(
            attributes=attributes,
            blackholed=blackholed,
            export_prepend=export_prepend,
            suppress_to=frozenset(suppress_to),
            announce_only_to=announce_only_to,
        )
        return new_entry, triggered

    # -------------------------------------------------------------- selection
    def _candidates(self, prefix: Prefix) -> list[RouteEntry]:
        """All candidate routes for ``prefix`` (originated + received)."""
        candidates: list[RouteEntry] = []
        originated = self.originated.get(prefix)
        if originated is not None:
            candidates.append(
                RouteEntry(prefix=prefix, attributes=originated, learned_from=self.asn)
            )
        for rib in self.adj_rib_in.values():
            entry = rib.get(prefix)
            if entry is not None:
                candidates.append(entry)
        return candidates

    def refresh_best(self, prefix: Prefix) -> bool:
        """Recompute the best route for ``prefix``; return True if it changed.

        The deferred half of the batch import cycle (see
        :meth:`import_announcement`).
        """
        return self._refresh_best(prefix)

    def _refresh_best(self, prefix: Prefix) -> bool:
        """Recompute the best route for ``prefix``; return True if it changed."""
        candidates = self._candidates(prefix)
        previous = self.loc_rib.best(prefix)
        new_best = best_path(candidates)
        self.loc_rib.set_candidates(prefix, candidates)
        if previous is None and new_best is None:
            return False
        # Compare the full entry (modulo the best flag): export-side fields
        # like suppress_to, announce_only_to and export_prepend change what
        # neighbors receive, so a re-announcement that only alters them must
        # still report a change and re-trigger export processing.  The
        # Loc-RIB (and its LPM trie) is only written when something did
        # change — on the propagation hot path most refreshes are no-ops.
        if previous is not None and new_best is not None and previous.same_route(new_best):
            return False
        self.loc_rib.set_best(prefix, new_best)
        return True

    def refresh_all(self) -> list[Prefix]:
        """Recompute every prefix's best route; return prefixes whose best changed.

        Prefixes are visited (and returned) in sorted order so the
        refresh sequence — and anything derived from the returned list —
        is identical run-to-run regardless of set iteration order.
        """
        prefixes: set[Prefix] = set(self.originated)
        for rib in self.adj_rib_in.values():
            prefixes.update(rib.prefixes())
        return [p for p in sorted(prefixes) if self._refresh_best(p)]

    # ----------------------------------------------------------------- export
    def export_memo_key(self, neighbor_asn: int) -> tuple:
        """The key under which export rewrites to ``neighbor_asn`` may be shared.

        Everything the outbound-attribute rewrite reads beyond the best
        route itself is per-router constant (vendor, send-community
        configuration) except two neighbor-dependent inputs: the
        propagation policy's treatment of the neighbor (see
        :meth:`CommunityPropagationPolicy.neighbor_signature`) and any
        per-session export community additions.  Two sessions with equal
        keys therefore receive byte-identical outbound attributes for
        the same best route — which is how the collector harvest lets N
        collectors sharing one peer pay the rewrite chain once.
        """
        return (
            "shared-export",
            self.asn,
            self.propagation_policy.neighbor_signature(neighbor_asn),
            self.export_community_additions.get(neighbor_asn),
        )

    def export_to(
        self,
        neighbor_asn: int,
        prefix: Prefix,
        cache: dict | None = None,
        shared_key: tuple | None = None,
    ) -> ExportDecision:
        """Decide whether and how the current best route for ``prefix`` is exported.

        ``cache`` is an optional batch-scoped memo (see
        :meth:`BgpSimulator.apply`): the outbound-attribute construction
        depends on everything about the best route *except* its prefix,
        so a batch announcing many prefixes with identical attributes
        pays the policy/prepend/rewrite cost once per (router, neighbor,
        attributes) instead of once per prefix.  The cache must not
        outlive the propagation pass — policies, sessions and export
        additions may change between passes.

        ``shared_key`` (a :meth:`export_memo_key` value) replaces the
        ``(router, neighbor)`` part of the memo key so sessions with
        identical export-relevant configuration share entries; the
        per-route gates (split horizon, scoping communities, suppress /
        selective-announce sets, valley-free rule) still run against the
        concrete ``neighbor_asn`` before the memo is consulted, so only
        the rewrite tail is shared.
        """
        relationship_out = self.relationship_with(neighbor_asn)
        if relationship_out is None:
            return ExportDecision(False, reason=f"AS{neighbor_asn} is not a neighbor")
        best = self.loc_rib.best(prefix)
        if best is None:
            return ExportDecision(False, reason="no best route")
        if best.blackholed:
            # Traffic is dropped here; the blackholed route itself is still a
            # candidate for export in real deployments, but most operators
            # scope blackhole routes with NO_EXPORT.  We keep exporting so
            # multi-hop blackhole propagation (observed in the wild) is possible.
            pass
        # Do not send a route back to the neighbor we learned it from.
        if best.learned_from == neighbor_asn:
            return ExportDecision(False, reason="split horizon")
        attributes = best.attributes
        # Well-known scoping communities.
        if attributes.communities:
            if NO_ADVERTISE in attributes.communities:
                return ExportDecision(False, reason="NO_ADVERTISE")
            if NO_EXPORT in attributes.communities:
                return ExportDecision(False, reason="NO_EXPORT")
            if relationship_out == Relationship.PEER and NO_PEER in attributes.communities:
                return ExportDecision(False, reason="NO_PEER")
        # Restrictions set by community actions at this AS.
        if neighbor_asn in best.suppress_to:
            return ExportDecision(False, reason="suppressed by community action")
        if best.announce_only_to is not None and neighbor_asn not in best.announce_only_to:
            return ExportDecision(False, reason="not in selective-announce set")
        # Gao-Rexford export rule.
        relationship_in = (
            None
            if best.learned_from == self.asn
            else self.relationship_with(best.learned_from)
        )
        if relationship_in in (Relationship.PEER, Relationship.PROVIDER):
            if relationship_out != Relationship.CUSTOMER:
                return ExportDecision(False, reason="valley-free export rule")

        key = None
        if cache is not None:
            if shared_key is not None:
                key = (shared_key, attributes, best.export_prepend)
            else:
                key = (self.asn, neighbor_asn, attributes, best.export_prepend)
            memo = cache.get(key)
            if memo is not None:
                outbound_attributes, origin_asn = memo
                return ExportDecision(
                    True,
                    announcement=Announcement(
                        prefix=prefix,
                        attributes=outbound_attributes,
                        sender_asn=self.asn,
                        origin_asn=origin_asn,
                    ),
                )

        # Build the outbound attributes.
        # Communities: propagation policy decides what is forwarded; vendors
        # that do not send communities by default strip everything unless
        # explicitly configured.
        if not self.vendor.effective_send_communities(self.send_community_configured):
            outbound_communities = CommunitySet()
        else:
            outbound_communities = self.propagation_policy.outbound_communities(
                attributes.communities, self.asn, neighbor_asn
            )
        additions = self.export_community_additions.get(neighbor_asn)
        if additions:
            outbound_communities = outbound_communities.union(additions)
        prepend_count = 1 + best.export_prepend
        outbound_path = attributes.as_path.prepend(self.asn, prepend_count)
        outbound_attributes = attributes.replace(
            as_path=outbound_path,
            communities=outbound_communities,
            local_pref=None,
            med=None,
        )
        # AS0 is falsy but a representable (spoofed) origin, so only an
        # empty path falls back to the exporter's own ASN.
        origin_asn = attributes.as_path.origin_asn
        if origin_asn is None:
            origin_asn = self.asn
        if key is not None:
            cache[key] = (outbound_attributes, origin_asn)
        announcement = Announcement(
            prefix=prefix,
            attributes=outbound_attributes,
            sender_asn=self.asn,
            origin_asn=origin_asn,
        )
        return ExportDecision(True, announcement=announcement)

    def export_all_to(
        self,
        neighbor_asn: int,
        cache: dict | None = None,
        shared_key: tuple | None = None,
    ) -> list[Announcement]:
        """Export every best route to one neighbor (used for collector feeds).

        ``cache``/``shared_key`` are the :meth:`export_to` memo hooks:
        the collector harvest passes a cache scoped to the whole harvest
        plus this router's :meth:`export_memo_key` so every collector
        session of one peer shares the rewrite work.
        """
        announcements = []
        for prefix in self.loc_rib.prefixes():
            decision = self.export_to(neighbor_asn, prefix, cache, shared_key=shared_key)
            if decision.export and decision.announcement is not None:
                announcements.append(decision.announcement)
        return announcements
