"""The propagation engine: drive announcements through the AS graph to convergence.

The simulator is synchronous and deterministic: announcements are
processed in waves (per-(router, prefix) worklist order is implied by
the queue), and a step only re-exports a prefix whose best path
actually changed at that router, so the process terminates once the
network is stable.  Determinism matters because every benchmark
compares concrete numbers run-to-run.

Batch semantics (``apply``)
---------------------------

:meth:`BgpSimulator.apply` is the core entry point.  It takes an
iterable of :class:`RoutingEvent` origination changes (announce or
withdraw, any mix of prefixes and origins), applies **all** of them to
the origin routers first, and then drives a **single shared worklist**
keyed on ``(router_asn, prefix)`` to convergence:

* every seeded or re-enqueued pair is deduplicated, and best-path
  refresh is *deferred* to the pop: a router that received several
  updates for one prefix while queued integrates them all, re-selects
  once, and re-exports once — with its latest best;
* a popped pair only exports onward when the refresh actually changed
  its best route (or it seeds an origination), so stable regions of
  the graph are never re-walked and transient bests that were
  overtaken in the queue are never exported;
* exports share a batch-scoped memo: the outbound-attribute rewrite
  depends on the best route minus its prefix, so announcing K prefixes
  with identical attributes pays the policy/prepend/rewrite cost once
  per (router, neighbor) instead of K times;
* the returned :class:`SimulationReport` merges every event: its
  ``dirty`` map records each (router, prefix) whose best route changed,
  which :meth:`~repro.dataplane.forwarding.DataPlane.rebuild` uses to
  patch only the affected FIB entries in one pass.

``announce``/``withdraw`` are thin single-event wrappers over
``apply``; ``announce_many``/``withdraw_many`` batch homogeneous event
lists; ``announce_originated`` seeds the simulation with every prefix
the topology records as owned — the pattern the RTBH sweeps, steering
experiments and dataset generators use to pre-load thousands of
originations without N independent BFS runs.

Sharded execution
-----------------

The per-(router, prefix) worklist partitions *exactly* by prefix (a
pair only ever enqueues pairs of the same prefix), so ``apply`` is
layered as a scheduler over a pure per-shard core:

* ``_apply_local`` seeds and converges a list of events entirely
  in-process — one export memo and one import memo scoped to the call,
  which is what makes the core safe to run per shard;
* with ``shards`` > 1 the batch is partitioned by a stable hash of
  ``(family, network, length)`` into the pool's pinned shard count, each
  shard driven by ``_apply_local`` in its **resident** worker process
  (see :mod:`repro.routing.shard`): workers keep their shards' RIB
  state between batches, the parent ships only the events plus the
  (prefix, router) pairs it mutated since the last dispatch (the
  pending-sync set), and the per-shard :class:`SimulationReport`\\ s plus
  Loc-RIB/Adj-RIB-In deltas are merged back so the parent ends up
  byte-identical to a sequential run — incremental
  :meth:`DataPlane.rebuild` works unchanged.  Router-config changes are
  detected before every dispatch and bump the pool's state epoch, which
  makes workers discard resident state and re-sync;
* ``shards="auto"`` (the process default, see
  :func:`propagation_shards`) goes parallel only for batches of at
  least :data:`AUTO_SHARD_MIN_PREFIXES` distinct prefixes and only when
  the CPU budget covers :data:`AUTO_SHARD_MIN_BUDGET` workers.

For incremental event streams (feed/drain with per-prefix coalescing)
see :mod:`repro.routing.stream`, a thin front end over ``apply``.
"""

from __future__ import annotations

import contextlib
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.bgp.community import CommunitySet
from repro.bgp.prefix import Prefix
from repro.exceptions import ConvergenceError, RoutingError
from repro.routing.router import Router
from repro.routing.wire import AttributeInterner
from repro.topology.relationships import Relationship
from repro.topology.topology import Topology

#: Below this many distinct prefixes in one batch, ``shards="auto"``
#: stays sequential: worker start-up and state shipping would eat the
#: parallel win on small batches.
AUTO_SHARD_MIN_PREFIXES = 256

#: Upper bound "auto" places on the shard count (explicit integers are
#: honoured as given; the worker *pool* is still capped by the CPU
#: budget, see :func:`repro.routing.shard.shard_worker_budget`).
AUTO_SHARD_MAX = 8

#: Minimum CPU budget before "auto" goes parallel.  The merge has a
#: serial state-shipping tail, so (as the sharded benchmark's own gate
#: records) the win needs real cores — on 2-3 CPU hosts "auto" stays
#: with the in-process core; explicit ``shards=K`` remains honoured.
AUTO_SHARD_MIN_BUDGET = 4

#: The process-wide default scheduling policy applied when a simulator
#: is built without an explicit ``shards`` argument.  See
#: :func:`propagation_shards`.
_DEFAULT_SHARDS: int | str = "auto"


def default_shards() -> int | str:
    """The current process-wide default for ``BgpSimulator(shards=...)``."""
    return _DEFAULT_SHARDS


def set_default_shards(value: int | str) -> int | str:
    """Set the process-wide default shard policy; returns the previous one.

    ``value`` is either a shard count (1 disables sharding) or
    ``"auto"`` (shard large batches across the available CPU budget).
    The experiment runner uses this — via :func:`propagation_shards` —
    to thread a spec's ``shards`` parameter into every simulator an
    experiment builds, without each call site growing a parameter.
    """
    global _DEFAULT_SHARDS
    previous = _DEFAULT_SHARDS
    _DEFAULT_SHARDS = value
    return previous


@contextlib.contextmanager
def propagation_shards(value: int | str | None) -> Iterator[None]:
    """Scoped override of the default shard policy (restores on exit).

    ``None`` is a no-op scope — callers threading an optional policy can
    always write ``with propagation_shards(maybe_shards):``.
    """
    if value is None:
        yield
        return
    previous = set_default_shards(value)
    try:
        yield
    finally:
        set_default_shards(previous)


@dataclass(frozen=True)
class RoutingEvent:
    """One origination change: announce (default) or withdraw a prefix at an AS.

    Events are plain values so call sites can build thousands of them
    up front and hand the whole batch to :meth:`BgpSimulator.apply`.
    """

    origin_asn: int
    prefix: Prefix
    withdraw: bool = False
    communities: CommunitySet | None = None
    #: Lets an attacker claim a different origin (a hijack with a
    #: fabricated origin, including AS0); by default the announcing AS
    #: is the origin.
    spoofed_origin_asn: int | None = None

    @classmethod
    def announcement(
        cls,
        origin_asn: int,
        prefix: Prefix,
        communities: CommunitySet | None = None,
        spoofed_origin_asn: int | None = None,
    ) -> "RoutingEvent":
        """Build an announce event."""
        return cls(
            origin_asn=origin_asn,
            prefix=prefix,
            communities=communities,
            spoofed_origin_asn=spoofed_origin_asn,
        )

    @classmethod
    def withdrawal(cls, origin_asn: int, prefix: Prefix) -> "RoutingEvent":
        """Build a withdraw event."""
        return cls(origin_asn=origin_asn, prefix=prefix, withdraw=True)


def origination_events(topology: Topology) -> list[RoutingEvent]:
    """Announce events for every prefix ``topology`` records as owned.

    Handing the list to :meth:`BgpSimulator.apply` (or
    ``announce_many``) pre-seeds a simulation with all of its
    originations in one batched convergence pass; the order is fixed
    (by owner ASN, then prefix) so runs are reproducible.
    """
    originations = sorted(
        topology.originated_prefixes().items(), key=lambda item: (item[1], item[0])
    )
    return [RoutingEvent(origin_asn=asn, prefix=prefix) for prefix, asn in originations]


def _distinct_prefixes(events: Iterable[RoutingEvent]) -> list[Prefix]:
    """The distinct prefixes of ``events`` in first-seen order."""
    seen: set[Prefix] = set()
    prefixes: list[Prefix] = []
    for event in events:
        if event.prefix not in seen:
            seen.add(event.prefix)
            prefixes.append(event.prefix)
    return prefixes


@dataclass
class SimulationReport:
    """Book-keeping of one simulation run."""

    announcements_processed: int = 0
    rounds: int = 0
    prefixes: set[Prefix] = field(default_factory=set)
    #: Per-router prefixes whose best route changed during this run.  The
    #: data plane uses this to patch only the affected FIB entries instead
    #: of rebuilding every AS's FIB (see :meth:`DataPlane.rebuild`).
    dirty: dict[int, set[Prefix]] = field(default_factory=dict)

    def mark_dirty(self, asn: int, prefix: Prefix) -> None:
        """Record that ``asn``'s best route for ``prefix`` (possibly) changed."""
        self.dirty.setdefault(asn, set()).add(prefix)

    def merge(self, other: "SimulationReport") -> None:
        """Accumulate another report into this one."""
        self.announcements_processed += other.announcements_processed
        self.rounds += other.rounds
        self.prefixes |= other.prefixes
        for asn, prefixes in other.dirty.items():
            self.dirty.setdefault(asn, set()).update(prefixes)


class BgpSimulator:
    """Builds one :class:`Router` per AS and propagates announcements to convergence.

    ``shards`` selects the execution policy for :meth:`apply`: ``1``
    forces the in-process core, an integer K partitions every batch
    into K prefix shards driven by worker processes, and ``"auto"``
    (inherited from :func:`default_shards` when None) shards only
    batches large enough to pay for the pool.  ``max_workers`` caps the
    worker pool (default: the CPU budget, see
    :func:`repro.routing.shard.shard_worker_budget`).
    """

    def __init__(
        self,
        topology: Topology,
        max_rounds: int = 1000,
        shards: int | str | None = None,
        max_workers: int | None = None,
    ):
        self.topology = topology
        self.max_rounds = max_rounds
        self.shards = shards
        self.max_workers = max_workers
        self.routers: dict[int, Router] = {}
        self.report = SimulationReport()
        #: Every router that ever held any state (origination, Adj-RIB-In
        #: entry, best route) for a prefix — the exact set of routers whose
        #: per-prefix state must travel to/from a shard worker.  Maintained
        #: by the engine; grows monotonically (like ``report``).
        self._prefix_holders: dict[Prefix, set[int]] = {}
        #: The (prefix -> routers) pairs touched by the most recent
        #: ``_apply_local`` call only.  A shard worker returns state for
        #: exactly these pairs: anything it did not touch is still
        #: byte-identical in the parent, so shipping it back would be
        #: pure serialization overhead.
        self._last_touched: dict[Prefix, set[int]] = {}
        #: The provider lease through which this simulator reaches its
        #: shard pool (see :mod:`repro.routing.residency`).  The lease —
        #: not the simulator — owns the router-config epoch state.
        self._pool_lease = None
        #: The (prefix -> routers) pairs the parent mutated since it last
        #: shipped that prefix's state to its resident shard worker.
        #: Seeded with the full holder map when a pool is first leased;
        #: grown by sequential applies run while a pool exists (or while
        #: a warm pool is resumable); drained by sharded dispatches and
        #: harvests.  Empty for prefixes whose worker-side state already
        #: equals the parent's.
        self._pending_sync: dict[Prefix, set[int]] = {}
        #: Whether a warm pool released by this simulator may still be
        #: resumed: while ``True``, sequential applies keep extending the
        #: pending-sync continuation so a re-acquired warm pool needs
        #: only the delta, not the full holder map.
        self._residency_resumable = False
        #: Wire-codec attribute interner: every delta decoded on merge
        #: replay shares one ``PathAttributes``/``ASPath``/``CommunitySet``
        #: object per distinct value, for the simulator's whole lifetime.
        self._wire_intern = AttributeInterner()
        for asys in topology:
            relationships = {
                neighbor: topology.relationship(asys.asn, neighbor)
                for neighbor in topology.neighbors(asys.asn)
            }
            self.routers[asys.asn] = Router(asys, relationships)

    @property
    def _shard_pool(self):
        """The leased pool, or ``None`` (read-only view over the lease)."""
        lease = self._pool_lease
        return None if lease is None else lease.pool

    def close(self) -> None:
        """Release the shard-pool lease (idempotent; also runs on GC).

        Under the default ``"none"`` residency provider this shuts the
        workers down, exactly as before; under a warm provider the pool
        is parked for reuse and this simulator keeps its pending-sync
        continuation so a later re-acquire resumes residency instead of
        re-shipping the full holder map.
        """
        lease = self._pool_lease
        self._pool_lease = None
        if lease is None:
            if not self._residency_resumable:
                self._pending_sync = {}
            return
        if lease.release():
            self._residency_resumable = True
        else:
            self._residency_resumable = False
            self._pending_sync = {}

    def router(self, asn: int) -> Router:
        """Return the router of ``asn``."""
        try:
            return self.routers[asn]
        except KeyError as exc:
            raise RoutingError(f"no router for AS{asn}") from exc

    # ---------------------------------------------------------------- peering
    def register_collector_peering(self, peer_asn: int, collector_asn: int) -> None:
        """Register a route-collector session on ``peer_asn``.

        The collector is modelled as a customer-like session so the peer
        exports its full table; the collector AS itself does not need a
        router (it only records what it receives).
        """
        router = self.router(peer_asn)
        router.add_neighbor(collector_asn, Relationship.CUSTOMER)

    # ------------------------------------------------------------ origination
    def announce(
        self,
        origin_asn: int,
        prefix: Prefix,
        communities: CommunitySet | None = None,
        spoofed_origin_asn: int | None = None,
    ) -> SimulationReport:
        """Originate ``prefix`` at ``origin_asn`` and propagate to convergence.

        ``spoofed_origin_asn`` lets an attacker claim a different origin
        (a hijack with a fabricated origin); by default the announcing AS
        is the origin.
        """
        return self.apply(
            [
                RoutingEvent(
                    origin_asn=origin_asn,
                    prefix=prefix,
                    communities=communities,
                    spoofed_origin_asn=spoofed_origin_asn,
                )
            ]
        )

    def withdraw(self, origin_asn: int, prefix: Prefix) -> SimulationReport:
        """Withdraw an origination and re-propagate."""
        return self.apply([RoutingEvent.withdrawal(origin_asn, prefix)])

    def announce_many(self, announcements: Iterable) -> SimulationReport:
        """Originate many prefixes and drive them all to convergence in one pass.

        Each item is a :class:`RoutingEvent`, an ``(origin_asn, prefix)``
        pair, or an ``(origin_asn, prefix, communities)`` triple.
        """
        return self.apply(self._coerce(a) for a in announcements)

    def withdraw_many(self, withdrawals: Iterable[tuple[int, Prefix]]) -> SimulationReport:
        """Withdraw many ``(origin_asn, prefix)`` originations in one pass."""
        return self.apply(
            RoutingEvent.withdrawal(origin_asn, prefix) for origin_asn, prefix in withdrawals
        )

    def announce_originated(self) -> SimulationReport:
        """Batch-announce every prefix the topology records as owned.

        This is how experiment drivers pre-seed a generated Internet with
        its full set of originations (thousands of prefixes) in a single
        shared convergence pass.
        """
        return self.apply(origination_events(self.topology))

    @staticmethod
    def _coerce(item) -> RoutingEvent:
        """Normalise an ``announce_many`` item into a :class:`RoutingEvent`."""
        if isinstance(item, RoutingEvent):
            return item
        if isinstance(item, tuple) and len(item) == 2:
            return RoutingEvent(origin_asn=item[0], prefix=item[1])
        if isinstance(item, tuple) and len(item) == 3:
            return RoutingEvent(origin_asn=item[0], prefix=item[1], communities=item[2])
        raise RoutingError(
            f"cannot interpret {item!r} as a routing event: expected RoutingEvent, "
            "(origin_asn, prefix) or (origin_asn, prefix, communities)"
        )

    # -------------------------------------------------------------- propagation
    def apply(
        self, events: Iterable[RoutingEvent], shards: int | str | None = None
    ) -> SimulationReport:
        """Apply a batch of origination events and converge them in one pass.

        This is the scheduler layer: it validates the batch, decides
        between the in-process core and sharded multi-process execution
        (``shards`` overrides the simulator-level policy for this call),
        runs it, and folds the outcome into the cumulative report.  The
        converged state — Loc-RIBs, FIBs after ``rebuild``, merged
        ``dirty`` maps — is identical whichever path ran.

        The batch is validated up front — a malformed event or unknown
        origin ASN raises before any router state changes, so a failing
        ``apply`` leaves the simulation untouched.
        """
        events = list(events)
        for event in events:
            self.router(event.origin_asn)
        shard_count = self._resolve_shards(shards, len({e.prefix for e in events}))
        if shard_count <= 1:
            report = self._apply_local(events)
            if self._pool_lease is not None or self._residency_resumable:
                # A resident pool exists (or a released warm pool may be
                # resumed) but this batch ran in-process: every pair it
                # touched is now newer in the parent than in the
                # workers, so it must ship with the next dispatch.
                for prefix, touched in self._last_touched.items():
                    self._pending_sync.setdefault(prefix, set()).update(touched)
        else:
            report = self._apply_sharded(events, shard_count)
        self.report.merge(report)
        return report

    def _resolve_shards(self, override: int | str | None, prefix_count: int) -> int:
        """Turn the shards policy into a concrete shard count for one batch."""
        value = override if override is not None else self.shards
        if value is None:
            value = default_shards()
        if value is None or value == 1 or prefix_count <= 1:
            return 1
        if value == "auto":
            from repro.routing.shard import shard_worker_budget

            budget = self.max_workers if self.max_workers is not None else shard_worker_budget()
            if prefix_count < AUTO_SHARD_MIN_PREFIXES or budget < AUTO_SHARD_MIN_BUDGET:
                return 1
            return min(AUTO_SHARD_MAX, budget, prefix_count)
        count = int(value)
        if count <= 1:
            return 1
        # Never cut more shards than there are prefixes: the surplus
        # shards would be empty and would only spawn idle workers.
        return min(count, prefix_count)

    def _apply_local(self, events: list[RoutingEvent]) -> SimulationReport:
        """The pure per-shard core: seed and converge ``events`` in-process.

        Runs unchanged in the parent (sequential execution) and inside
        shard workers; both memos — export-side and import-side — are
        scoped to this call, i.e. per shard.
        """
        report = SimulationReport()
        self._last_touched = {}
        # Seed origins grouped per prefix, in first-seen prefix order.
        # All of a prefix's events are applied to their origin routers
        # *before* it propagates, so a batch is a net state change (an
        # announce followed by a withdraw of the same prefix cancels out).
        seeds: dict[Prefix, list[int]] = {}
        for event in events:
            router = self.router(event.origin_asn)
            if event.withdraw:
                router.withdraw_origination(event.prefix)
            else:
                router.originate(
                    event.prefix,
                    communities=event.communities,
                    origin_asn=event.spoofed_origin_asn,
                )
            report.prefixes.add(event.prefix)
            # The origination (or withdrawal) itself may have changed the
            # origin router's best route; its FIB entry must be re-derived.
            report.mark_dirty(event.origin_asn, event.prefix)
            origins = seeds.setdefault(event.prefix, [])
            if event.origin_asn not in origins:
                origins.append(event.origin_asn)
        # Worklist keys are (router, prefix) pairs and a pair can only
        # ever enqueue pairs of the *same* prefix, so the shared list
        # partitions exactly by prefix.  Draining it prefix-major is
        # observationally identical to one interleaved FIFO (same
        # imports in the same per-prefix order, same report) but keeps
        # each prefix's working set hot instead of cycling through
        # every prefix's RIB entries breadth-first.
        # Batch-scoped memos: outbound attributes depend on the best route
        # minus its prefix and imported attributes on the inbound ones
        # minus the prefix, so prefixes sharing attributes pay the export
        # rewrite and the import filter/action chain once (see
        # :meth:`Router.export_to` / :meth:`Router.import_announcement`).
        export_cache: dict = {}
        import_cache: dict = {}
        for prefix, origins in seeds.items():
            self._drive_prefix(report, prefix, origins, export_cache, import_cache)
        return report

    def _apply_sharded(
        self, events: list[RoutingEvent], shard_count: int
    ) -> SimulationReport:
        """Partition the batch by prefix and converge it on resident workers.

        Each worker already holds the converged state of its shards'
        prefixes from earlier batches; the dispatch ships only the
        events plus the pending-sync pairs the parent mutated since the
        last call, runs the same ``_apply_local`` core, and ships back
        the touched-pair deltas; the merge replays those onto the parent
        routers.  All results are materialised before any merge, so a
        failing shard leaves the parent untouched (the pool epoch is
        bumped so the workers' partial state is discarded too).

        Everything on the wire is a :mod:`repro.routing.wire` blob: the
        additions encode once per batch (every slot ships the same
        bytes), events and states once per shard, and the returned
        delta blobs decode through ``self._wire_intern`` so the merge
        replay shares one attribute bundle per distinct set.
        """
        from repro.routing import shard as shard_module
        from repro.routing import wire

        pool = self._ensure_pool(shard_count)
        self._refresh_pool_epoch(pool)
        groups = shard_module.partition_events(events, pool.shards)
        additions = {
            asn: dict(router.export_community_additions)
            for asn, router in self.routers.items()
            if router.export_community_additions
        }
        futures = []
        stale: set[Prefix] = set()
        try:
            additions_blob = wire.encode_additions(additions)
            for shard_index, shard_events in groups:
                prefixes = _distinct_prefixes(shard_events)
                stale.update(p for p in prefixes if self._prefix_holders.get(p))
                sync: dict[Prefix, set[int]] = {}
                for prefix in prefixes:
                    pending = self._pending_sync.pop(prefix, None)
                    if pending:
                        sync[prefix] = pending
                states = shard_module.capture_prefix_state(self, list(sync), holders=sync)
                slot = pool.slot_for(shard_index)
                epoch, config = pool.sync_header(slot, self._pool_lease.config_blob)
                pool.shipped_state_entries += len(states)
                futures.append(
                    pool.submit(
                        slot,
                        shard_module._run_shard,
                        (
                            epoch,
                            config,
                            additions_blob,
                            wire.encode_events(shard_events),
                            wire.encode_states(states),
                        ),
                    )
                )
            outcomes = [future.result() for future in futures]
        except BaseException:
            # Worker state is now unknowable (popped pending pairs were
            # possibly never applied, some shards may have half-run):
            # discard all residency.  Parent state is untouched — the
            # merge below is all-or-nothing.
            self._invalidate_pool()
            raise
        report = SimulationReport()
        stale = frozenset(stale)
        for worker_report, delta_blob in outcomes:
            shard_module.install_prefix_state(
                self, wire.decode_states(delta_blob, self._wire_intern), stale=stale
            )
            report.merge(worker_report)
        return report

    def _ensure_pool(self, wanted_shards: int):
        """The leased resident worker pool: re-acquired to grow *or* shrink.

        The pool's shard count is pinned at construction (that is what
        keeps shard-to-slot placement — and therefore worker residency —
        stable across batches), so a batch wanting more shards than the
        pool has forces a re-acquire; so does a CPU budget that dropped
        below the pool's worker count (``propagation_shards`` scope
        exit, ``REPRO_SHARD_BUDGET`` change).  Acquisition goes through
        the active :class:`~repro.routing.residency.PoolProvider`: under
        a warm policy a compatible released pool is resumed (keeping the
        pending-sync continuation) or adopted; otherwise a fresh pool is
        built and residency restarts with the pending-sync set seeded
        from the full holder map.
        """
        from repro.routing.residency import current_provider
        from repro.routing.shard import shard_worker_budget

        limit = self.max_workers if self.max_workers is not None else shard_worker_budget()
        lease = self._pool_lease
        if lease is not None:
            pool = lease.pool
            if wanted_shards <= pool.shards and pool.workers <= max(
                1, min(pool.shards, limit)
            ):
                return pool
            wanted_shards = max(wanted_shards, pool.shards)
            self.close()
        lease = current_provider().acquire(self, wanted_shards)
        self._pool_lease = lease
        self._residency_resumable = False
        if not lease.resumed:
            self._pending_sync = {
                prefix: set(holders) for prefix, holders in self._prefix_holders.items()
            }
        return lease.pool

    def _refresh_pool_epoch(self, pool) -> None:
        """Bump the pool epoch when the router configuration changed.

        Policy objects compare by identity (hand-swapping one is the
        reconfiguration signal), so the lease's capture comparison is
        exactly "did anyone replace a router's config since the last
        dispatch".  An epoch bump makes every worker discard its
        resident state, so the parent re-arms the pending-sync set with
        the full holder map.
        """
        lease = self._pool_lease
        if lease is not None and lease.refresh(self):
            self._pending_sync = {
                prefix: set(holders) for prefix, holders in self._prefix_holders.items()
            }

    def _invalidate_pool(self) -> None:
        """Discard all resident worker state (after a failed dispatch)."""
        lease = self._pool_lease
        if lease is not None:
            lease.invalidate()
            self._pending_sync = {
                prefix: set(holders) for prefix, holders in self._prefix_holders.items()
            }

    def _drive_prefix(
        self,
        report: SimulationReport,
        prefix: Prefix,
        origins: list[int],
        export_cache: dict | None = None,
        import_cache: dict | None = None,
    ) -> None:
        """Converge one prefix's worklist partition (seeded at ``origins``).

        Imports are deferred: an export writes the receiver's Adj-RIB-In
        and enqueues the receiver, and the receiver runs best-path
        selection once when popped — integrating every update that
        arrived in the meantime — instead of once per incoming update.
        Only a router whose best actually changed (or a seeded origin)
        exports onward, so transient bests that are overtaken while
        still queued are never exported at all.
        """
        routers = self.routers
        # Holder tracking: every router this pass enqueues is a router
        # whose state for the prefix may now differ from "empty" — the
        # set a shard worker must receive; ``_last_touched`` narrows the
        # send-back to this call's work.
        holders = self._prefix_holders.setdefault(prefix, set())
        touched = self._last_touched.setdefault(prefix, set())
        queue: deque[int] = deque()
        queued: set[int] = set()
        force: set[int] = set(origins)
        for asn in origins:
            if asn not in queued:
                queued.add(asn)
                queue.append(asn)
        holders.update(origins)
        touched.update(origins)
        needs_refresh: set[int] = set()
        steps = 0
        budget = self.max_rounds * max(1, len(routers))
        while queue:
            steps += 1
            if steps > budget:
                raise ConvergenceError(
                    f"prefix {prefix} did not converge after {steps} processing steps"
                )
            current_asn = queue.popleft()
            queued.discard(current_asn)
            current = routers.get(current_asn)
            if current is None:
                continue
            changed = False
            if current_asn in needs_refresh:
                needs_refresh.discard(current_asn)
                changed = current.refresh_best(prefix)
                if changed:
                    report.mark_dirty(current_asn, prefix)
            if current_asn in force:
                force.discard(current_asn)
                changed = True
            if not changed:
                continue
            for neighbor_asn in current.neighbors():
                neighbor = routers.get(neighbor_asn)
                if neighbor is None:
                    continue
                decision = current.export_to(neighbor_asn, prefix, export_cache)
                imported = False
                if decision.export and decision.announcement is not None:
                    neighbor.import_announcement(decision.announcement, import_cache)
                    report.announcements_processed += 1
                    imported = True
                elif neighbor.remove_announcement(prefix, current_asn):
                    report.announcements_processed += 1
                    imported = True
                if imported:
                    needs_refresh.add(neighbor_asn)
                    holders.add(neighbor_asn)
                    touched.add(neighbor_asn)
                    if neighbor_asn not in queued:
                        queued.add(neighbor_asn)
                        queue.append(neighbor_asn)
        report.rounds += steps

    # ------------------------------------------------------------- inspection
    def best_route(self, asn: int, prefix: Prefix):
        """Return the best route of ``asn`` for exactly ``prefix``."""
        return self.router(asn).loc_rib.best(prefix)

    def best_route_for_address(self, asn: int, address: int, family=None):
        """Longest-prefix-match lookup at ``asn`` for an integer address."""
        return self.router(asn).loc_rib.lookup(address, family)

    def ases_with_route(self, prefix: Prefix) -> list[int]:
        """Return every AS holding a best route for exactly ``prefix``."""
        return sorted(
            asn for asn, router in self.routers.items() if router.loc_rib.best(prefix) is not None
        )

    def ases_with_blackholed_route(self, prefix: Prefix) -> list[int]:
        """Return every AS whose best route for ``prefix`` is blackholed."""
        return sorted(
            asn
            for asn, router in self.routers.items()
            if (best := router.loc_rib.best(prefix)) is not None and best.blackholed
        )

    def observed_path(self, asn: int, prefix: Prefix) -> list[int] | None:
        """Return the AS path (observer first, origin last) seen at ``asn``."""
        best = self.router(asn).loc_rib.best(prefix)
        if best is None:
            return None
        return [asn] + best.attributes.as_path.asns()

    def converged_prefixes(self) -> set[Prefix]:
        """Return every prefix that has been announced so far."""
        return set(self.report.prefixes)
