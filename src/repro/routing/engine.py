"""The propagation engine: drive announcements through the AS graph to convergence.

The simulator is synchronous and deterministic: announcements are
processed in waves (per-prefix BFS order is implied by the queue), and a
wave only re-exports routes whose best path actually changed, so the
process terminates once the network is stable.  Determinism matters
because every benchmark compares concrete numbers run-to-run.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.bgp.community import CommunitySet
from repro.bgp.prefix import Prefix
from repro.bgp.route import Announcement
from repro.exceptions import ConvergenceError, RoutingError
from repro.routing.router import Router
from repro.topology.relationships import Relationship
from repro.topology.topology import Topology


@dataclass
class SimulationReport:
    """Book-keeping of one simulation run."""

    announcements_processed: int = 0
    rounds: int = 0
    prefixes: set[Prefix] = field(default_factory=set)
    #: Per-router prefixes whose best route changed during this run.  The
    #: data plane uses this to patch only the affected FIB entries instead
    #: of rebuilding every AS's FIB (see :meth:`DataPlane.rebuild`).
    dirty: dict[int, set[Prefix]] = field(default_factory=dict)

    def mark_dirty(self, asn: int, prefix: Prefix) -> None:
        """Record that ``asn``'s best route for ``prefix`` (possibly) changed."""
        self.dirty.setdefault(asn, set()).add(prefix)

    def merge(self, other: "SimulationReport") -> None:
        """Accumulate another report into this one."""
        self.announcements_processed += other.announcements_processed
        self.rounds += other.rounds
        self.prefixes |= other.prefixes
        for asn, prefixes in other.dirty.items():
            self.dirty.setdefault(asn, set()).update(prefixes)


class BgpSimulator:
    """Builds one :class:`Router` per AS and propagates announcements to convergence."""

    def __init__(self, topology: Topology, max_rounds: int = 1000):
        self.topology = topology
        self.max_rounds = max_rounds
        self.routers: dict[int, Router] = {}
        self.report = SimulationReport()
        for asys in topology:
            relationships = {
                neighbor: topology.relationship(asys.asn, neighbor)
                for neighbor in topology.neighbors(asys.asn)
            }
            self.routers[asys.asn] = Router(asys, relationships)

    def router(self, asn: int) -> Router:
        """Return the router of ``asn``."""
        try:
            return self.routers[asn]
        except KeyError as exc:
            raise RoutingError(f"no router for AS{asn}") from exc

    # ---------------------------------------------------------------- peering
    def register_collector_peering(self, peer_asn: int, collector_asn: int) -> None:
        """Register a route-collector session on ``peer_asn``.

        The collector is modelled as a customer-like session so the peer
        exports its full table; the collector AS itself does not need a
        router (it only records what it receives).
        """
        router = self.router(peer_asn)
        router.add_neighbor(collector_asn, Relationship.CUSTOMER)

    # ------------------------------------------------------------ origination
    def announce(
        self,
        origin_asn: int,
        prefix: Prefix,
        communities: CommunitySet | None = None,
        spoofed_origin_asn: int | None = None,
    ) -> SimulationReport:
        """Originate ``prefix`` at ``origin_asn`` and propagate to convergence.

        ``spoofed_origin_asn`` lets an attacker claim a different origin
        (a hijack with a fabricated origin); by default the announcing AS
        is the origin.
        """
        router = self.router(origin_asn)
        router.originate(prefix, communities=communities, origin_asn=spoofed_origin_asn)
        return self._propagate_from(origin_asn, prefix)

    def withdraw(self, origin_asn: int, prefix: Prefix) -> SimulationReport:
        """Withdraw an origination and re-propagate."""
        router = self.router(origin_asn)
        router.withdraw_origination(prefix)
        return self._propagate_withdrawal(origin_asn, prefix)

    # -------------------------------------------------------------- propagation
    def _propagate_from(self, start_asn: int, prefix: Prefix) -> SimulationReport:
        """Propagate export/import waves for one prefix until no best path changes."""
        report = SimulationReport()
        report.prefixes.add(prefix)
        # The origination (or withdrawal) itself may have changed the
        # starting router's best route; its FIB entry must be re-derived.
        report.mark_dirty(start_asn, prefix)
        queue: deque[int] = deque([start_asn])
        rounds = 0
        while queue:
            rounds += 1
            if rounds > self.max_rounds * max(1, len(self.routers)):
                raise ConvergenceError(
                    f"prefix {prefix} did not converge after {rounds} processing steps"
                )
            current_asn = queue.popleft()
            current = self.routers.get(current_asn)
            if current is None:
                continue
            for neighbor_asn in current.neighbors():
                neighbor = self.routers.get(neighbor_asn)
                if neighbor is None:
                    continue
                decision = current.export_to(neighbor_asn, prefix)
                previous = neighbor.adj_rib_in.get(current_asn)
                had_route = previous is not None and previous.get(prefix) is not None
                if decision.export and decision.announcement is not None:
                    result = neighbor.process_announcement(decision.announcement)
                    report.announcements_processed += 1
                    if result.best_changed:
                        report.mark_dirty(neighbor_asn, prefix)
                        queue.append(neighbor_asn)
                elif had_route:
                    changed = neighbor.process_withdrawal(prefix, current_asn)
                    report.announcements_processed += 1
                    if changed:
                        report.mark_dirty(neighbor_asn, prefix)
                        queue.append(neighbor_asn)
        report.rounds = rounds
        self.report.merge(report)
        return report

    def _propagate_withdrawal(self, start_asn: int, prefix: Prefix) -> SimulationReport:
        """Propagate the removal of a route."""
        return self._propagate_from(start_asn, prefix)

    # ------------------------------------------------------------- inspection
    def best_route(self, asn: int, prefix: Prefix):
        """Return the best route of ``asn`` for exactly ``prefix``."""
        return self.router(asn).loc_rib.best(prefix)

    def best_route_for_address(self, asn: int, address: int, family=None):
        """Longest-prefix-match lookup at ``asn`` for an integer address."""
        return self.router(asn).loc_rib.lookup(address, family)

    def ases_with_route(self, prefix: Prefix) -> list[int]:
        """Return every AS holding a best route for exactly ``prefix``."""
        return sorted(
            asn for asn, router in self.routers.items() if router.loc_rib.best(prefix) is not None
        )

    def ases_with_blackholed_route(self, prefix: Prefix) -> list[int]:
        """Return every AS whose best route for ``prefix`` is blackholed."""
        return sorted(
            asn
            for asn, router in self.routers.items()
            if (best := router.loc_rib.best(prefix)) is not None and best.blackholed
        )

    def observed_path(self, asn: int, prefix: Prefix) -> list[int] | None:
        """Return the AS path (observer first, origin last) seen at ``asn``."""
        best = self.router(asn).loc_rib.best(prefix)
        if best is None:
            return None
        return [asn] + best.attributes.as_path.asns()

    def converged_prefixes(self) -> set[Prefix]:
        """Return every prefix that has been announced so far."""
        return set(self.report.prefixes)
