"""Route manipulation at an IXP route server (Section 5.3, Section 7.5).

The attackee announces its prefix to the route server with the
"announce to AS4" community.  The attacker announces the same prefix
(hijack) — or its own announcement of it — carrying *both* the
"announce to AS4" and the "do NOT announce to AS4" communities.  The
conflict is resolved by the route server's documented evaluation order;
at the IXP the paper tested, suppression wins, so AS4 ends up with no
route to the prefix.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.attacks.scenario import AttackOutcome, ScenarioRoles
from repro.bgp.aspath import ASPath
from repro.bgp.attributes import PathAttributes
from repro.bgp.community import CommunitySet
from repro.bgp.prefix import Prefix
from repro.bgp.route import Announcement
from repro.experiments import Experiment, ExperimentContext, ExperimentResult, register
from repro.routing.route_server import RouteServer
from repro.topology.ixp import Ixp
from repro.topology.topology import Topology


@dataclass
class ManipulationResult(AttackOutcome):
    """Outcome of the route-manipulation attack."""

    attackee_route_before: bool = False
    attackee_route_after: bool = False

    @property
    def route_withdrawn(self) -> bool:
        """True if the victim member lost the route because of the attack."""
        return self.attackee_route_before and not self.attackee_route_after


class RouteManipulationAttack:
    """Suppress the redistribution of a member's prefix at an IXP route server."""

    def __init__(
        self,
        topology: Topology,
        ixp: Ixp,
        roles: ScenarioRoles,
        victim_prefix: Prefix,
        #: The member the attackee wants to reach (attackee-1 in Figure 9).
        victim_member_asn: int,
    ):
        self.topology = topology
        self.ixp = ixp
        self.roles = roles
        self.victim_prefix = victim_prefix
        self.victim_member_asn = victim_member_asn
        self.config = ixp.route_server_config

    def _member_announcement(
        self, member_asn: int, communities: CommunitySet
    ) -> Announcement:
        attributes = PathAttributes(as_path=ASPath.of(member_asn), communities=communities)
        return Announcement(
            prefix=self.victim_prefix,
            attributes=attributes,
            sender_asn=member_asn,
            origin_asn=member_asn,
        )

    def run(self) -> ManipulationResult:
        """Execute the attack against a fresh route-server instance."""
        roles = self.roles
        server = RouteServer(self.ixp)

        # Step 1: the attackee selectively announces to the victim member.
        announce_community = self.config.announce_to(self.victim_member_asn)
        server.receive(
            self._member_announcement(roles.attackee_asn, CommunitySet.of(announce_community))
        )
        route_before = server.member_has_route(self.victim_member_asn, self.victim_prefix)

        # Step 2: the attacker (hijacking the prefix at the IXP) sends the
        # conflicting combination: announce-to + do-not-announce-to.
        suppress_community = self.config.suppress_to(self.victim_member_asn)
        server.receive(
            self._member_announcement(
                roles.attacker_asn, CommunitySet.of(announce_community, suppress_community)
            )
        )
        route_after = server.member_has_route(self.victim_member_asn, self.victim_prefix)

        # The attack succeeds when the conflicting communities remove the
        # victim's visibility of the prefix (suppression evaluated first).
        succeeded = route_before and not route_after
        description = (
            f"route manipulation at {self.ixp.name}: AS{roles.attacker_asn} suppresses "
            f"{self.victim_prefix} towards AS{self.victim_member_asn}"
        )
        return ManipulationResult(
            succeeded=succeeded,
            roles=roles,
            description=description,
            details={
                "announce_community": str(announce_community),
                "suppress_community": str(suppress_community),
                "suppress_before_redistribute": self.config.suppress_before_redistribute,
            },
            attackee_route_before=route_before,
            attackee_route_after=route_after,
        )


@register("route-manipulation")
class RouteManipulationExperiment(Experiment):
    """The Figure 9 route-server suppression attack at an IXP."""

    description = "suppress a member's route at an IXP route server (Figure 9)"
    paper_section = "Section 5.3"
    default_params = {"member_count": 6, "victim_prefix": "203.0.113.0/24"}

    def build(self, ctx: ExperimentContext) -> None:
        from repro.attacks.scenario import build_figure9_ixp

        self.reject_topology_spec(ctx)
        topology, ixp = build_figure9_ixp(member_count=self.int_param("member_count", 0))
        ctx.topology = topology
        ctx.scratch["ixp"] = ixp

    def execute(self, ctx: ExperimentContext) -> dict:
        from repro.attacks.scenario import ScenarioRoles

        ixp = ctx.scratch["ixp"]
        roles = ScenarioRoles(
            attacker_asn=2, attackee_asn=1, community_target_asn=ixp.route_server_asn
        )
        attack = RouteManipulationAttack(
            ctx.require_topology(),
            ixp,
            roles,
            victim_prefix=Prefix.from_string(str(self.param("victim_prefix"))),
            victim_member_asn=4,
        )
        outcome = attack.run()
        ctx.scratch["outcome"] = outcome
        return {
            "succeeded": outcome.succeeded,
            "description": outcome.description,
            "route_before": outcome.attackee_route_before,
            "route_after": outcome.attackee_route_after,
            "route_withdrawn": outcome.route_withdrawn,
            "details": outcome.details,
        }

    def validate(self, ctx: ExperimentContext, metrics: dict) -> bool:
        return bool(metrics["succeeded"])

    def render_text(self, result: ExperimentResult) -> str:
        metrics = result.metrics
        return "\n".join(
            [
                metrics["description"],
                f"  victim saw the route before: {metrics['route_before']}",
                f"  victim sees the route after: {metrics['route_after']}",
                f"  attack succeeded:            {metrics['succeeded']}",
            ]
        )
