"""Scenario roles, outcomes, and the paper's canonical example topologies.

Section 3.3 fixes the terminology used throughout: the **attacker**
manipulates the community attribute (or announces a hijack), the
**community target** is the AS whose community service is being abused,
and the **attackee** is the AS whose prefix or traffic is affected.
The ``build_figure*`` helpers construct the exact topologies of
Figures 2, 7, 8(b) and 9 so the lab experiments, the examples, and the
tests all speak about the same picture as the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bgp.community import Community
from repro.policy.actions import LocalPrefAction, PrependAction
from repro.policy.community_policy import ForwardAllPolicy
from repro.policy.services import CommunityServiceCatalog, ServiceDefinition
from repro.topology.asys import AsRole, AutonomousSystem
from repro.topology.ixp import Ixp, RouteServerConfig
from repro.topology.topology import Topology
from repro.bgp.prefix import Prefix


@dataclass(frozen=True)
class ScenarioRoles:
    """Who is who in an attack scenario (paper Section 3.3)."""

    attacker_asn: int
    attackee_asn: int
    community_target_asn: int


@dataclass
class AttackOutcome:
    """Generic outcome record shared by the attack classes."""

    succeeded: bool
    roles: ScenarioRoles
    description: str = ""
    details: dict = field(default_factory=dict)


def _transit_as(asn: int, services: CommunityServiceCatalog | None = None) -> AutonomousSystem:
    return AutonomousSystem(
        asn=asn,
        role=AsRole.TRANSIT,
        propagation_policy=ForwardAllPolicy(),
        services=services,
    )


def _stub_as(asn: int) -> AutonomousSystem:
    return AutonomousSystem(asn=asn, role=AsRole.STUB, propagation_policy=ForwardAllPolicy())


def build_figure2_topology() -> Topology:
    """The AS-path-prepending scenario of Figure 2.

    AS1 (attackee/origin) — AS2 (attacker) — AS4 — {AS3, AS5} — AS6.
    AS3 is the community target offering prepending via ``AS3:x3``; AS6
    receives two equal-length paths and, absent the attack, may pick the
    one through AS3.
    """
    topology = Topology()
    prepend_services = CommunityServiceCatalog(
        3,
        [
            ServiceDefinition(Community(3, 31), PrependAction(1), "prepend once", customers_only=True),
            ServiceDefinition(Community(3, 32), PrependAction(2), "prepend twice", customers_only=True),
            ServiceDefinition(Community(3, 33), PrependAction(3), "prepend three times", customers_only=True),
        ],
    )
    topology.add_as(_stub_as(1))
    topology.add_as(_transit_as(2))
    topology.add_as(_transit_as(3, prepend_services))
    topology.add_as(_transit_as(4))
    topology.add_as(_transit_as(5))
    topology.add_as(_stub_as(6))
    # AS1 is a customer of AS2; AS2 a customer of AS4; AS4 a customer of both
    # AS3 and AS5; AS6 a customer of both AS3 and AS5.
    topology.add_customer_link(2, 1)
    topology.add_customer_link(4, 2)
    topology.add_customer_link(3, 4)
    topology.add_customer_link(5, 4)
    topology.add_customer_link(3, 6)
    topology.add_customer_link(5, 6)
    # The attackee's prefix.
    topology.get_as(1).add_prefix(Prefix.from_string("198.51.100.0/24"))
    return topology


def build_figure7_topology(with_as4_blackhole: bool = True) -> Topology:
    """The remotely-triggered-blackholing scenario of Figure 7.

    AS1 (attackee) announces p to AS2 (attacker) and AS3 (community
    target, offers RTBH).  AS4 sits behind AS3.  The attacker adds
    AS3:666 on its announcement of p so traffic to p is dropped at AS3.
    """
    topology = Topology()
    rtbh_services_as3 = CommunityServiceCatalog.standard_transit_catalog(3)
    services_as4 = (
        CommunityServiceCatalog.standard_transit_catalog(4) if with_as4_blackhole else None
    )
    topology.add_as(_stub_as(1))
    topology.add_as(_transit_as(2))
    topology.add_as(_transit_as(3, rtbh_services_as3))
    topology.add_as(_transit_as(4, services_as4))
    topology.add_customer_link(2, 1)
    topology.add_customer_link(3, 1)
    topology.add_customer_link(3, 2)
    topology.add_customer_link(4, 3)
    topology.get_as(1).add_prefix(Prefix.from_string("203.0.113.0/24"))
    # Attacker AS2 owns its own space too (for non-hijack variants).
    topology.get_as(2).add_prefix(Prefix.from_string("192.0.2.0/24"))
    return topology


def build_figure8b_topology() -> Topology:
    """The local-pref traffic-steering scenario of Figure 8(b).

    AS5 originates p and is a customer of AS2 (attacker).  AS1 is both
    the attackee and the community target: it offers a "backup"
    local-pref community and connects to AS2 over two paths — directly
    (router R2, modelled as the direct AS1–AS2 link) and via AS4
    (router R1).  By tagging p with AS1's backup community on the
    direct link, AS2 forces AS1 to carry the traffic via AS4.
    """
    topology = Topology()
    backup_services = CommunityServiceCatalog(
        1,
        [
            ServiceDefinition(
                Community(1, 70), LocalPrefAction(70), "customer backup local-pref", customers_only=True
            )
        ],
    )
    topology.add_as(_transit_as(1, backup_services))
    topology.add_as(_transit_as(2))
    topology.add_as(_transit_as(4))
    topology.add_as(_stub_as(5))
    topology.add_customer_link(2, 5)
    topology.add_customer_link(1, 2)
    topology.add_customer_link(1, 4)
    topology.add_customer_link(4, 2)
    topology.get_as(5).add_prefix(Prefix.from_string("198.18.0.0/24"))
    return topology


def build_figure9_ixp(member_count: int = 6) -> tuple[Topology, Ixp]:
    """The route-manipulation-at-an-IXP scenario of Figure 9.

    AS1 (attackee-2 / origin), AS2 (attacker) and AS4 (attackee-1) are
    members of an IXP whose route server honours selective-announce and
    suppress communities, evaluating suppression first.
    """
    topology = Topology()
    rs_asn = 9000
    members = [1, 2, 4] + [10 + i for i in range(max(0, member_count - 3))]
    topology.add_as(AutonomousSystem(asn=rs_asn, role=AsRole.IXP, name="IXP-RS"))
    for member in members:
        topology.add_as(_transit_as(member))
    ixp = Ixp(
        name="IXP",
        route_server_asn=rs_asn,
        members=set(members),
        route_server_config=RouteServerConfig(ixp_asn=rs_asn, suppress_before_redistribute=True),
    )
    topology.add_ixp(ixp)
    topology.get_as(1).add_prefix(Prefix.from_string("203.0.113.0/24"))
    topology.get_as(2).add_prefix(Prefix.from_string("192.0.2.0/24"))
    rs = topology.get_as(rs_asn)
    rs.services = CommunityServiceCatalog.ixp_route_server_catalog(rs_asn, members)
    return topology, ixp
