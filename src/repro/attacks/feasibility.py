"""The Table 3 feasibility matrix: every scenario, with and without hijacking.

Each scenario is actually executed on its canonical topology; the
difficulty grade is then derived from the gates the attacker had to pass
(business-relationship checks, IRR/origin validation, knowledge of the
route-server evaluation order, prefix-length limits), mirroring the
insights column of the paper's Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.attacks.manipulation import RouteManipulationAttack
from repro.attacks.rtbh import RtbhAttack
from repro.attacks.scenario import (
    ScenarioRoles,
    build_figure2_topology,
    build_figure7_topology,
    build_figure8b_topology,
    build_figure9_ixp,
)
from repro.attacks.steering import LocalPrefSteeringAttack, PrependSteeringAttack
from repro.bgp.prefix import Prefix
from repro.experiments import Experiment, ExperimentContext, ExperimentResult, register
from repro.utils.tables import Table


class Difficulty(str, Enum):
    """The paper's three difficulty grades."""

    EASY = "easy"
    MEDIUM = "medium"
    HARD = "hard"


#: Gates an attacker may have to pass; each contributes to the difficulty.
GATE_DESCRIPTIONS = {
    "prefix_length": "allowed prefix length is checked",
    "rtbh_activation": "activation of the RTBH service is typically required",
    "business_relationship": (
        "the business relationship of the attacker with the attackee or transit networks is "
        "checked - providers only act on communities set by their customers"
    ),
    "irr_validation": "IRR records for origin validation are typically checked, but the check can be circumvented",
    "evaluation_order": "requires inference of the community evaluation order when it is not public",
    "low_evaluation_order": "AS path prepending has typically low evaluation order, thus the attack may not succeed",
}


@dataclass
class FeasibilityRow:
    """One row of Table 3."""

    scenario: str
    hijack: bool
    succeeded: bool
    difficulty: Difficulty
    gates: list[str] = field(default_factory=list)

    def insights(self) -> str:
        """The insight text assembled from the gates encountered."""
        return "; ".join(GATE_DESCRIPTIONS[g] for g in self.gates)


def _table3(rows) -> Table:
    """The Table 3 ASCII rendering, shared by the matrix and the experiment.

    ``rows`` yields ``(scenario, hijack, succeeded, difficulty, insights)``
    tuples with plain values, so both :class:`FeasibilityRow` objects and
    serialized metrics dicts render byte-identically.
    """
    table = Table(
        ["Scenario", "Hijack", "Succeeded", "Difficulty", "Insights"],
        title="Table 3: attack feasibility in the wild",
    )
    for scenario, hijack, succeeded, difficulty, insights in rows:
        table.add_row(
            [
                scenario,
                "yes" if hijack else "no",
                "yes" if succeeded else "no",
                difficulty,
                insights,
            ]
        )
    return table


@dataclass
class FeasibilityMatrix:
    """The full Table 3."""

    rows: list[FeasibilityRow] = field(default_factory=list)
    #: The seed the matrix was built with, recorded for reproducibility.
    seed: int = 42

    def to_table(self) -> Table:
        """Render as an ASCII table."""
        return _table3(
            (row.scenario, row.hijack, row.succeeded, row.difficulty.value, row.insights())
            for row in self.rows
        )

    def difficulty_of(self, scenario: str, hijack: bool) -> Difficulty:
        """Look up the difficulty of one scenario variant."""
        for row in self.rows:
            if row.scenario == scenario and row.hijack == hijack:
                return row.difficulty
        raise KeyError(f"no row for {scenario} hijack={hijack}")


def _grade(gates: list[str]) -> Difficulty:
    """Map the gate list to a difficulty grade like the paper's Table 3."""
    if "business_relationship" in gates or "low_evaluation_order" in gates:
        return Difficulty.HARD
    if "evaluation_order" in gates:
        return Difficulty.MEDIUM
    return Difficulty.EASY


def build_feasibility_matrix(
    seed: int = 42, shards: int | str | None = None
) -> FeasibilityMatrix:
    """Run every scenario variant and assemble Table 3.

    The canonical Figure 2/7/8(b)/9 topologies are fully deterministic,
    so the seed does not perturb the outcome — it is threaded through and
    recorded on the matrix so feasibility runs carry the same
    reproducibility contract as every other experiment.  ``shards`` sets
    the propagation shard policy for every simulator the scenarios build
    (None = the process default; the outcome is shard-count independent).
    """
    from repro.routing.engine import propagation_shards

    with propagation_shards(shards):
        return _build_feasibility_matrix(seed)


def _build_feasibility_matrix(seed: int) -> FeasibilityMatrix:
    matrix = FeasibilityMatrix(seed=seed)

    # ----------------------------------------------------------- blackholing
    for hijack in (False, True):
        topology = build_figure7_topology()
        roles = ScenarioRoles(attacker_asn=2, attackee_asn=1, community_target_asn=3)
        attack = RtbhAttack(
            topology,
            roles,
            victim_prefix=Prefix.from_string("203.0.113.0/24"),
            use_hijack=hijack,
        )
        result = attack.run()
        gates = ["prefix_length", "rtbh_activation"]
        if hijack:
            gates.append("irr_validation")
        matrix.rows.append(
            FeasibilityRow(
                scenario="Blackholing",
                hijack=hijack,
                succeeded=result.succeeded,
                difficulty=_grade([g for g in gates if g not in ("irr_validation",)]),
                gates=gates,
            )
        )

    # --------------------------------------------- traffic steering: local pref
    # The attack itself is hijack-agnostic (the community is attached on the
    # attacker's own session either way), so it runs once and only the gate
    # list differs between the two Table 3 rows.
    topology = build_figure8b_topology()
    roles = ScenarioRoles(attacker_asn=2, attackee_asn=5, community_target_asn=1)
    attack = LocalPrefSteeringAttack(
        topology, roles, victim_prefix=Prefix.from_string("198.18.0.0/24")
    )
    result = attack.run()
    for hijack in (False, True):
        gates = ["business_relationship"]
        if hijack:
            gates.append("irr_validation")
        matrix.rows.append(
            FeasibilityRow(
                scenario="Traffic steering (local pref)",
                hijack=hijack,
                succeeded=result.succeeded,
                difficulty=_grade(gates),
                gates=gates,
            )
        )

    # ------------------------------------------ traffic steering: prepending
    for hijack in (False, True):
        topology = build_figure2_topology()
        roles = ScenarioRoles(attacker_asn=2, attackee_asn=1, community_target_asn=3)
        attack = PrependSteeringAttack(
            topology,
            roles,
            victim_prefix=Prefix.from_string("198.51.100.0/24"),
            observer_asn=6,
            use_hijack=hijack,
        )
        result = attack.run()
        gates = ["business_relationship", "low_evaluation_order"]
        if hijack:
            gates.append("irr_validation")
        matrix.rows.append(
            FeasibilityRow(
                scenario="Traffic steering (path prepending)",
                hijack=hijack,
                succeeded=result.succeeded,
                difficulty=_grade(gates),
                gates=gates,
            )
        )

    # -------------------------------------------------------- route manipulation
    # Hijack-agnostic at the route server as well (the attacker injects the
    # conflicting communities in both variants): one run, two rows.
    topology, ixp = build_figure9_ixp()
    roles = ScenarioRoles(attacker_asn=2, attackee_asn=1, community_target_asn=ixp.route_server_asn)
    attack = RouteManipulationAttack(
        topology,
        ixp,
        roles,
        victim_prefix=Prefix.from_string("203.0.113.0/24"),
        victim_member_asn=4,
    )
    result = attack.run()
    for hijack in (False, True):
        gates = ["evaluation_order"]
        if hijack:
            gates.append("irr_validation")
        matrix.rows.append(
            FeasibilityRow(
                scenario="Route manipulation",
                hijack=hijack,
                succeeded=result.succeeded,
                difficulty=_grade(gates),
                gates=gates,
            )
        )
    return matrix


@register("feasibility")
class FeasibilityExperiment(Experiment):
    """Run every Table 3 scenario variant on its canonical topology."""

    description = "Table 3 feasibility matrix: every attack, with and without hijack"
    paper_section = "Section 6"

    def build(self, ctx: ExperimentContext) -> None:
        self.reject_topology_spec(ctx)

    def execute(self, ctx: ExperimentContext) -> dict:
        # The lifecycle driver already scoped the spec's shard policy as
        # the process default, so the matrix builder inherits it.
        matrix = build_feasibility_matrix(seed=ctx.spec.seed)
        ctx.scratch["matrix"] = matrix
        rows = [
            {
                "scenario": row.scenario,
                "hijack": row.hijack,
                "succeeded": row.succeeded,
                "difficulty": row.difficulty.value,
                "insights": row.insights(),
            }
            for row in matrix.rows
        ]
        return {
            "rows": rows,
            "row_count": len(rows),
            "succeeded_count": sum(1 for row in rows if row["succeeded"]),
            "seed": matrix.seed,
        }

    def validate(self, ctx: ExperimentContext, metrics: dict) -> bool:
        return metrics["row_count"] == 8 and metrics["succeeded_count"] == metrics["row_count"]

    def render_text(self, result: ExperimentResult) -> str:
        return _table3(
            (row["scenario"], row["hijack"], row["succeeded"], row["difficulty"], row["insights"])
            for row in result.metrics["rows"]
        ).render()
