"""Attack scenarios: remotely triggered blackholing, traffic steering, route manipulation."""

from repro.attacks.scenario import (
    ScenarioRoles,
    AttackOutcome,
    build_figure2_topology,
    build_figure7_topology,
    build_figure8b_topology,
    build_figure9_ixp,
)
from repro.routing.engine import origination_events
from repro.attacks.conditions import (
    ConditionReport,
    check_necessary_condition,
    check_sufficient_condition,
    community_propagation_path,
)
from repro.attacks.rtbh import RtbhAttack, RtbhResult
from repro.attacks.steering import (
    PrependSteeringAttack,
    LocalPrefSteeringAttack,
    SteeringResult,
)
from repro.attacks.manipulation import RouteManipulationAttack, ManipulationResult
from repro.attacks.feasibility import FeasibilityMatrix, Difficulty, build_feasibility_matrix

__all__ = [
    "ScenarioRoles",
    "AttackOutcome",
    "build_figure2_topology",
    "build_figure7_topology",
    "build_figure8b_topology",
    "build_figure9_ixp",
    "origination_events",
    "ConditionReport",
    "check_necessary_condition",
    "check_sufficient_condition",
    "community_propagation_path",
    "RtbhAttack",
    "RtbhResult",
    "PrependSteeringAttack",
    "LocalPrefSteeringAttack",
    "SteeringResult",
    "RouteManipulationAttack",
    "ManipulationResult",
    "FeasibilityMatrix",
    "Difficulty",
    "build_feasibility_matrix",
]
