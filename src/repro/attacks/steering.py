"""Traffic steering attacks (Section 5.2, Section 7.4).

Two flavours, both triggered remotely through the community target's
documented services:

* **Path prepending** (Figure 2 / Figure 8a): the attacker tags the
  attackee's prefix with the target's prepend community (on its own
  sessions, or by hijacking), so the target prepends its ASN when
  exporting and paths through the target become less attractive.
* **Local preference** (Figure 8b): the attacker tags the prefix with
  the target's "backup" community only on the direct session, forcing
  the target to prefer a different ingress link for all that traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.attacks.scenario import AttackOutcome, ScenarioRoles
from repro.bgp.community import Community, CommunitySet
from repro.bgp.prefix import Prefix
from repro.exceptions import AttackError, ExperimentError
from repro.experiments import Experiment, ExperimentContext, ExperimentResult, register
from repro.policy.actions import ActionType
from repro.routing.engine import BgpSimulator
from repro.topology.topology import Topology


@dataclass
class SteeringResult(AttackOutcome):
    """Outcome of a steering attack: paths and preferences before vs after."""

    path_before: list[int] | None = None
    path_after: list[int] | None = None
    local_pref_before: int | None = None
    local_pref_after: int | None = None

    @property
    def path_changed(self) -> bool:
        """True if the observed best path changed."""
        return self.path_before != self.path_after


class PrependSteeringAttack:
    """Steer an observer's traffic away from the community target via prepending."""

    def __init__(
        self,
        topology: Topology,
        roles: ScenarioRoles,
        victim_prefix: Prefix,
        observer_asn: int,
        prepend_community: Community | None = None,
        use_hijack: bool = False,
    ):
        self.topology = topology
        self.roles = roles
        self.victim_prefix = victim_prefix
        self.observer_asn = observer_asn
        self.use_hijack = use_hijack
        target = topology.get_as(roles.community_target_asn)
        if prepend_community is not None:
            self.prepend_community = prepend_community
        else:
            if target.services is None:
                raise AttackError(f"AS{roles.community_target_asn} offers no community services")
            prepends = target.services.services_of_type(ActionType.PREPEND)
            if not prepends:
                raise AttackError(f"AS{roles.community_target_asn} offers no prepend community")
            self.prepend_community = prepends[-1].community  # largest prepend count

    def run(self) -> SteeringResult:
        """Execute the attack and compare the observer's best path before and after."""
        roles = self.roles
        baseline = BgpSimulator(self.topology)
        baseline.announce(roles.attackee_asn, self.victim_prefix)
        path_before = baseline.observed_path(self.observer_asn, self.victim_prefix)

        attacked = BgpSimulator(self.topology)
        communities = CommunitySet.of(self.prepend_community)
        if self.use_hijack:
            # Victim announcement and tagged hijack converge in one batched pass.
            attacked.announce_many(
                [
                    (roles.attackee_asn, self.victim_prefix),
                    (roles.attacker_asn, self.victim_prefix, communities),
                ]
            )
        else:
            # The on-path attacker adds the community on every session when
            # forwarding the attackee's route.
            attacker_router = attacked.router(roles.attacker_asn)
            for neighbor in attacker_router.neighbors():
                attacker_router.export_community_additions[neighbor] = communities
            attacked.announce(roles.attackee_asn, self.victim_prefix)
        path_after = attacked.observed_path(self.observer_asn, self.victim_prefix)

        target = roles.community_target_asn
        went_through_target_before = path_before is not None and target in path_before
        avoids_target_after = path_after is not None and target not in path_after
        prepended_after = path_after is not None and path_after.count(target) > 1
        succeeded = (went_through_target_before and avoids_target_after) or prepended_after
        description = (
            f"prepend steering by AS{roles.attacker_asn}: observer AS{self.observer_asn} path to "
            f"{self.victim_prefix} manipulated via community {self.prepend_community}"
        )
        return SteeringResult(
            succeeded=succeeded,
            roles=roles,
            description=description,
            details={
                "prepend_community": str(self.prepend_community),
                "hijack": self.use_hijack,
                "went_through_target_before": went_through_target_before,
                "avoids_target_after": avoids_target_after,
                "prepending_visible": prepended_after,
            },
            path_before=path_before,
            path_after=path_after,
        )


class LocalPrefSteeringAttack:
    """Force the community target onto a backup ingress via its local-pref community."""

    def __init__(
        self,
        topology: Topology,
        roles: ScenarioRoles,
        victim_prefix: Prefix,
        backup_community: Community | None = None,
        tag_toward_asn: int | None = None,
    ):
        self.topology = topology
        self.roles = roles
        self.victim_prefix = victim_prefix
        #: The neighbor session on which the attacker attaches the community
        #: (the direct link to the community target by default).
        self.tag_toward_asn = tag_toward_asn or roles.community_target_asn
        target = topology.get_as(roles.community_target_asn)
        if backup_community is not None:
            self.backup_community = backup_community
        else:
            if target.services is None:
                raise AttackError(f"AS{roles.community_target_asn} offers no community services")
            local_prefs = target.services.services_of_type(ActionType.LOCAL_PREF)
            if not local_prefs:
                raise AttackError(f"AS{roles.community_target_asn} offers no local-pref community")
            self.backup_community = local_prefs[0].community

    def run(self) -> SteeringResult:
        """Execute the attack; success means the target's preferred ingress moved."""
        roles = self.roles
        baseline = BgpSimulator(self.topology)
        baseline.announce(roles.attackee_asn, self.victim_prefix)
        best_before = baseline.best_route(roles.community_target_asn, self.victim_prefix)
        path_before = baseline.observed_path(roles.community_target_asn, self.victim_prefix)
        local_pref_before = (
            best_before.attributes.effective_local_pref() if best_before is not None else None
        )

        attacked = BgpSimulator(self.topology)
        attacker_router = attacked.router(roles.attacker_asn)
        attacker_router.export_community_additions[self.tag_toward_asn] = CommunitySet.of(
            self.backup_community
        )
        attacked.announce(roles.attackee_asn, self.victim_prefix)
        best_after = attacked.best_route(roles.community_target_asn, self.victim_prefix)
        path_after = attacked.observed_path(roles.community_target_asn, self.victim_prefix)
        local_pref_after = (
            best_after.attributes.effective_local_pref() if best_after is not None else None
        )

        ingress_changed = (
            best_before is not None
            and best_after is not None
            and best_before.learned_from != best_after.learned_from
        )
        tagged_route_demoted = False
        if best_after is not None and best_after.learned_from != roles.attacker_asn:
            # The direct (tagged) session lost; check the tagged route shows the
            # lowered preference in the target's looking glass.
            candidates = attacked.router(roles.community_target_asn).loc_rib.candidates(
                self.victim_prefix
            )
            for candidate in candidates:
                if candidate.learned_from == roles.attacker_asn:
                    tagged_route_demoted = (
                        candidate.attributes.effective_local_pref()
                        < (local_pref_before or 100)
                    )
        succeeded = ingress_changed or tagged_route_demoted
        description = (
            f"local-pref steering by AS{roles.attacker_asn} against AS{roles.community_target_asn}"
            f" using community {self.backup_community}"
        )
        return SteeringResult(
            succeeded=succeeded,
            roles=roles,
            description=description,
            details={
                "backup_community": str(self.backup_community),
                "ingress_before": best_before.learned_from if best_before else None,
                "ingress_after": best_after.learned_from if best_after else None,
                "tagged_route_demoted": tagged_route_demoted,
            },
            path_before=path_before,
            path_after=path_after,
            local_pref_before=local_pref_before,
            local_pref_after=local_pref_after,
        )


def _steering_metrics(outcome: SteeringResult) -> dict:
    """JSON-safe view of one steering run."""
    return {
        "succeeded": outcome.succeeded,
        "description": outcome.description,
        "path_before": outcome.path_before,
        "path_after": outcome.path_after,
        "path_changed": outcome.path_changed,
        "local_pref_before": outcome.local_pref_before,
        "local_pref_after": outcome.local_pref_after,
        "details": outcome.details,
    }


@register("steering")
class SteeringExperiment(Experiment):
    """Both traffic-steering flavours on their canonical topologies.

    ``variant`` selects ``prepend`` (Figure 2), ``local-pref``
    (Figure 8b), or ``both`` (the default).
    """

    description = "traffic steering via prepend and local-pref communities"
    paper_section = "Section 5.2"
    default_params = {"variant": "both", "hijack": False}

    VARIANTS = ("prepend", "local-pref")

    def build(self, ctx: ExperimentContext) -> None:
        self.reject_topology_spec(ctx)

    def _run_prepend(self) -> SteeringResult:
        from repro.attacks.scenario import build_figure2_topology

        attack = PrependSteeringAttack(
            build_figure2_topology(),
            ScenarioRoles(attacker_asn=2, attackee_asn=1, community_target_asn=3),
            victim_prefix=Prefix.from_string("198.51.100.0/24"),
            observer_asn=6,
            use_hijack=bool(self.param("hijack")),
        )
        return attack.run()

    def _run_local_pref(self) -> SteeringResult:
        from repro.attacks.scenario import build_figure8b_topology

        attack = LocalPrefSteeringAttack(
            build_figure8b_topology(),
            ScenarioRoles(attacker_asn=2, attackee_asn=5, community_target_asn=1),
            victim_prefix=Prefix.from_string("198.18.0.0/24"),
        )
        return attack.run()

    def execute(self, ctx: ExperimentContext) -> dict:
        variant = str(self.param("variant"))
        if variant == "both":
            selected = list(self.VARIANTS)
        elif variant in self.VARIANTS:
            selected = [variant]
        else:
            raise ExperimentError(
                f"unknown steering variant {variant!r}; choose from "
                f"{', '.join(self.VARIANTS)} or 'both'"
            )
        runners = {"prepend": self._run_prepend, "local-pref": self._run_local_pref}
        variants: dict[str, dict] = {}
        for key in selected:
            outcome = runners[key]()
            ctx.scratch[key] = outcome
            variants[key] = _steering_metrics(outcome)
        return {
            "variants": variants,
            "succeeded": all(v["succeeded"] for v in variants.values()),
        }

    def validate(self, ctx: ExperimentContext, metrics: dict) -> bool:
        return bool(metrics["succeeded"])

    def render_text(self, result: ExperimentResult) -> str:
        lines: list[str] = []
        for key, variant in result.metrics["variants"].items():
            lines.append(f"--- {key} ---")
            lines.append(variant["description"])
            lines.append(f"  path before:      {variant['path_before']}")
            lines.append(f"  path after:       {variant['path_after']}")
            lines.append(f"  attack succeeded: {variant['succeeded']}")
        return "\n".join(lines)
