"""Necessary and sufficient conditions for community-based attacks (Section 5.4).

* **Necessary**: communities must propagate beyond a single AS along the
  path from the attacker to the community target, and the target's
  community service must be known (documented).
* **Sufficient**: the attacker must be able to advertise the prefix with
  the appropriate communities (or hijack it), and *every* AS on the path
  from the attacker to the community target must forward the community.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bgp.community import Community, CommunitySet
from repro.policy.community_policy import PropagationBehavior
from repro.topology.graph import shortest_valley_free_path
from repro.topology.topology import Topology


@dataclass
class ConditionReport:
    """The result of checking the conditions for one attacker/target pair."""

    holds: bool
    reasons: list[str] = field(default_factory=list)
    path: list[int] | None = None

    def explain(self) -> str:
        """Human-readable explanation."""
        status = "holds" if self.holds else "does NOT hold"
        return f"condition {status}: " + "; ".join(self.reasons)


def community_propagation_path(
    topology: Topology, attacker_asn: int, target_asn: int, community: Community
) -> ConditionReport:
    """Check whether a community attached by the attacker reaches the target.

    Uses the valley-free path an announcement originated at the attacker
    would take to the target and verifies each intermediate AS forwards
    foreign communities (per its propagation policy).
    """
    path = shortest_valley_free_path(topology, target_asn, attacker_asn)
    if path is None:
        return ConditionReport(False, [f"no valley-free path from AS{attacker_asn} to AS{target_asn}"])
    # path is observed at target: [target, ..., attacker]; the community must
    # survive every export between the attacker and the target, i.e. at every
    # intermediate AS (and the attacker itself must send it).
    intermediates = path[1:-1]
    reasons: list[str] = [f"announcement path AS{' AS'.join(str(a) for a in reversed(path))}"]
    for asn in intermediates:
        asys = topology.get_as(asn)
        policy = asys.propagation_policy
        if policy is None:
            continue
        carried = CommunitySet.of(community)
        exported = policy.outbound_communities(carried, asn, target_asn)
        if community not in exported:
            reasons.append(
                f"AS{asn} ({policy.behavior.value}) strips the community"
            )
            return ConditionReport(False, reasons, path=list(reversed(path)))
    reasons.append("every intermediate AS forwards the community")
    return ConditionReport(True, reasons, path=list(reversed(path)))


def check_necessary_condition(
    topology: Topology, attacker_asn: int, target_asn: int
) -> ConditionReport:
    """Check the paper's necessary condition for attacker/target.

    Communities must be able to propagate beyond one AS towards the
    target, and the target must have a documented community service.
    """
    target = topology.get_as(target_asn)
    reasons: list[str] = []
    if target.services is None or len(target.services) == 0:
        return ConditionReport(False, [f"AS{target_asn} documents no community services"])
    reasons.append(f"AS{target_asn} documents {len(target.services)} community services")
    probe = Community(target_asn if target_asn <= 0xFFFF else 0, 1)
    propagation = community_propagation_path(topology, attacker_asn, target_asn, probe)
    reasons.extend(propagation.reasons)
    if not propagation.holds:
        return ConditionReport(False, reasons, path=propagation.path)
    if propagation.path is not None and len(propagation.path) <= 2:
        reasons.append(
            "attacker and target are direct neighbors (propagation beyond one AS not required)"
        )
    return ConditionReport(True, reasons, path=propagation.path)


def check_sufficient_condition(
    topology: Topology,
    attacker_asn: int,
    target_asn: int,
    community: Community,
    requires_hijack: bool = False,
    attacker_can_hijack: bool = True,
) -> ConditionReport:
    """Check the paper's sufficient condition.

    The attacker must be able to advertise BGP prefixes with the
    appropriate communities (always true for an AS with BGP sessions)
    or, for hijack variants, be able to announce a prefix it does not
    own; the community must survive every hop to the target.
    """
    reasons: list[str] = []
    if requires_hijack and not attacker_can_hijack:
        return ConditionReport(False, ["attacker cannot inject hijacked prefixes"])
    if requires_hijack:
        reasons.append("attacker can inject hijacked prefixes")
    propagation = community_propagation_path(topology, attacker_asn, target_asn, community)
    reasons.extend(propagation.reasons)
    return ConditionReport(propagation.holds, reasons, path=propagation.path)
