"""Remotely triggered blackholing attacks (Section 5.1, Section 7.3).

Two variants, mirroring Figure 7:

* **Without hijack** (Figure 7a): the attacker is on the announcement
  path of the victim prefix and adds the community target's blackhole
  community when passing the route on.  Because RTBH implementations
  typically prefer blackhole-tagged routes before normal best-path
  selection, the tagged (longer) path wins at the target and traffic to
  the victim is discarded there.
* **With hijack** (Figure 7b): the attacker originates the victim's
  prefix (or a more specific /32 of it) tagged with the blackhole
  community, so the target — and everyone whose traffic crosses it —
  drops traffic to the victim.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.attacks.scenario import AttackOutcome, ScenarioRoles
from repro.bgp.community import BLACKHOLE, Community, CommunitySet
from repro.bgp.prefix import Prefix
from repro.dataplane.forwarding import DataPlane
from repro.exceptions import AttackError
from repro.experiments import Experiment, ExperimentContext, ExperimentResult, register
from repro.routing.engine import BgpSimulator
from repro.topology.topology import Topology


@dataclass
class RtbhResult(AttackOutcome):
    """Outcome of an RTBH attack: where traffic is dropped and who lost reachability."""

    blackholed_at: list[int] = field(default_factory=list)
    unreachable_from: list[int] = field(default_factory=list)
    reachable_before: list[int] = field(default_factory=list)
    attack_prefix: Prefix | None = None
    target_next_hop: str = ""


class RtbhAttack:
    """Drives a remotely triggered blackholing attack over a topology."""

    def __init__(
        self,
        topology: Topology,
        roles: ScenarioRoles,
        victim_prefix: Prefix,
        use_hijack: bool = False,
        use_more_specific: bool = True,
        blackhole_community: Community | None = None,
    ):
        self.topology = topology
        self.roles = roles
        self.victim_prefix = victim_prefix
        self.use_hijack = use_hijack
        self.use_more_specific = use_more_specific
        target = topology.get_as(roles.community_target_asn)
        if blackhole_community is not None:
            self.blackhole_community = blackhole_community
        elif target.services is not None and target.services.blackhole_communities():
            self.blackhole_community = target.services.blackhole_communities()[0]
        else:
            raise AttackError(
                f"community target AS{roles.community_target_asn} offers no blackhole community"
            )

    def _attack_prefix(self) -> Prefix:
        """The prefix announced in the hijack variant: a /32 inside the victim prefix."""
        if self.use_more_specific and self.victim_prefix.is_ipv4 and self.victim_prefix.length < 32:
            return self.victim_prefix.subprefix(32, 1)
        return self.victim_prefix

    def _hijack_overlap(self, attack_prefix: Prefix) -> dict:
        """Who the hijack actually collides with, via the topology's origin trie.

        ``covering`` yields the registered allocations the attack prefix
        sits inside (the most specific one is the legitimate origin the
        IRR would name); ``covered`` yields any more-specific
        registrations the announcement would mask.  Both walk the
        cached :meth:`Topology.origin_table` instead of scanning every
        AS's prefix list.
        """
        table = self.topology.origin_table()
        covering = table.covering(attack_prefix)
        covered = table.covered(attack_prefix)
        overlapping = sorted({asn for _, asn in covering} | {asn for _, asn in covered})
        legitimate = covering[-1][1] if covering else None
        return {
            "legitimate_origin": legitimate,
            "overlapping_origins": overlapping,
            "is_hijack_of_registered_space": bool(
                self.use_hijack
                and overlapping
                and overlapping != [self.roles.attacker_asn]
            ),
        }

    def _vantage_points(self, explicit: list[int] | None) -> list[int]:
        if explicit is not None:
            return explicit
        return [
            asys.asn
            for asys in self.topology.stub_ases()
            if asys.asn not in (self.roles.attacker_asn, self.roles.attackee_asn)
        ]

    def run(self, vantage_points: list[int] | None = None) -> RtbhResult:
        """Execute the attack and return the measured outcome."""
        roles = self.roles
        vantage_points = self._vantage_points(vantage_points)
        victim_address = self.victim_prefix.host()

        # Baseline: the attackee announces its prefix, nobody attacks.
        baseline = BgpSimulator(self.topology)
        baseline.announce(roles.attackee_asn, self.victim_prefix)
        baseline_plane = DataPlane(baseline)
        family = self.victim_prefix.family
        reachable_before = [
            asn
            for asn in vantage_points
            if baseline_plane.ping(asn, victim_address, family).reachable
        ]

        # The attack run.
        attacked = BgpSimulator(self.topology)
        communities = CommunitySet.of(self.blackhole_community, BLACKHOLE)
        if self.use_hijack:
            # Victim announcement and hijack converge in one batched pass.
            attack_prefix = self._attack_prefix()
            attacked.announce_many(
                [
                    (roles.attackee_asn, self.victim_prefix),
                    (roles.attacker_asn, attack_prefix, communities),
                ]
            )
        else:
            # The attacker is on the path and adds the community when passing
            # the victim's route on to every neighbor.
            attack_prefix = self.victim_prefix
            attacker_router = attacked.router(roles.attacker_asn)
            for neighbor in attacker_router.neighbors():
                attacker_router.export_community_additions[neighbor] = communities
            attacked.announce(roles.attackee_asn, self.victim_prefix)
        attacked_plane = DataPlane(attacked)

        blackholed_at = attacked.ases_with_blackholed_route(attack_prefix)
        if attack_prefix.contains_address(victim_address):
            probe_address = victim_address
        else:
            probe_address = attack_prefix.host(0)
        unreachable_from = [
            asn
            for asn in reachable_before
            if not attacked_plane.ping(asn, probe_address, family).reachable
        ]
        target_drops = roles.community_target_asn in blackholed_at
        succeeded = target_drops or bool(unreachable_from)
        target_next_hop = self._looking_glass_next_hop(attacked, attack_prefix)
        description = (
            f"RTBH attack by AS{roles.attacker_asn} against {self.victim_prefix} "
            f"using AS{roles.community_target_asn}'s community {self.blackhole_community}"
            f" ({'hijack' if self.use_hijack else 'no hijack'})"
        )
        return RtbhResult(
            succeeded=succeeded,
            roles=roles,
            description=description,
            details={
                "blackhole_community": str(self.blackhole_community),
                "attack_prefix": str(attack_prefix),
                "hijack": self.use_hijack,
                "target_drops_traffic": target_drops,
                "vantage_points": len(vantage_points),
                **self._hijack_overlap(attack_prefix),
            },
            blackholed_at=blackholed_at,
            unreachable_from=unreachable_from,
            reachable_before=reachable_before,
            attack_prefix=attack_prefix,
            target_next_hop=target_next_hop,
        )

    def _looking_glass_next_hop(self, simulator: BgpSimulator, prefix: Prefix) -> str:
        """What the target's looking glass reports for the attack prefix."""
        best = simulator.best_route(self.roles.community_target_asn, prefix)
        if best is None:
            return "no route"
        if best.blackholed:
            return "null0 (discard)"
        return f"via AS{best.learned_from}"


@register("rtbh")
class RtbhLabExperiment(Experiment):
    """The Figure 7 remotely-triggered-blackholing scenario (both variants)."""

    description = "RTBH on the Figure 7 topology, with or without hijack"
    paper_section = "Section 5.1"
    default_params = {"hijack": False, "victim_prefix": "203.0.113.0/24"}

    def build(self, ctx: ExperimentContext) -> None:
        from repro.attacks.scenario import build_figure7_topology

        self.reject_topology_spec(ctx)
        ctx.topology = build_figure7_topology()

    def execute(self, ctx: ExperimentContext) -> dict:
        from repro.attacks.scenario import ScenarioRoles

        roles = ScenarioRoles(attacker_asn=2, attackee_asn=1, community_target_asn=3)
        attack = RtbhAttack(
            ctx.require_topology(),
            roles,
            victim_prefix=Prefix.from_string(str(self.param("victim_prefix"))),
            use_hijack=bool(self.param("hijack")),
        )
        outcome = attack.run()
        ctx.scratch["outcome"] = outcome
        return {
            "succeeded": outcome.succeeded,
            "description": outcome.description,
            "attack_prefix": str(outcome.attack_prefix),
            "target_next_hop": outcome.target_next_hop,
            "blackholed_at": sorted(outcome.blackholed_at),
            "unreachable_from": sorted(outcome.unreachable_from),
            "reachable_before": sorted(outcome.reachable_before),
            "details": outcome.details,
        }

    def validate(self, ctx: ExperimentContext, metrics: dict) -> bool:
        return bool(metrics["succeeded"])

    def render_text(self, result: ExperimentResult) -> str:
        metrics = result.metrics
        return "\n".join(
            [
                metrics["description"],
                f"  attack prefix:          {metrics['attack_prefix']}",
                f"  target's looking glass: {metrics['target_next_hop']}",
                f"  ASes dropping traffic:  {metrics['blackholed_at']}",
                f"  vantage points cut off: {metrics['unreachable_from']}",
                f"  attack succeeded:       {metrics['succeeded']}",
            ]
        )
