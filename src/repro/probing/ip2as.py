"""Naive IP-to-AS mapping from a routing table.

Section 7.6 maps traceroute hops to AS numbers "using a current
routeview routing table" to lower-bound how many AS hops a blackhole
community traversed; :class:`Ip2AsMapper` reproduces that step over the
simulated origins.
"""

from __future__ import annotations

from repro.bgp.prefix import Prefix
from repro.collectors.observation import ObservationArchive
from repro.topology.topology import Topology


class Ip2AsMapper:
    """Longest-prefix-match mapping of addresses to origin ASes."""

    def __init__(self, table: dict[Prefix, int] | None = None):
        self._table: dict[Prefix, int] = dict(table or {})

    @classmethod
    def from_topology(cls, topology: Topology) -> "Ip2AsMapper":
        """Build the mapping from the topology's legitimate prefix ownership."""
        return cls(topology.originated_prefixes())

    @classmethod
    def from_archive(cls, archive: ObservationArchive) -> "Ip2AsMapper":
        """Build the mapping from observed routes (origin = last AS on the path)."""
        table: dict[Prefix, int] = {}
        for observation in archive:
            origin = observation.origin_asn
            if origin is not None:
                table[observation.prefix] = origin
        return cls(table)

    def add(self, prefix: Prefix, asn: int) -> None:
        """Add one mapping entry."""
        self._table[prefix] = asn

    def lookup(self, address: int) -> int | None:
        """Return the origin AS of the longest matching prefix (None if unmapped)."""
        best_asn: int | None = None
        best_length = -1
        for prefix, asn in self._table.items():
            if prefix.contains_address(address) and prefix.length > best_length:
                best_asn, best_length = asn, prefix.length
        return best_asn

    def lookup_prefix(self, prefix: Prefix) -> int | None:
        """Return the origin AS of the longest prefix covering ``prefix``."""
        best_asn: int | None = None
        best_length = -1
        for candidate, asn in self._table.items():
            if candidate.contains_prefix(prefix) and candidate.length > best_length:
                best_asn, best_length = asn, candidate.length
        return best_asn

    def __len__(self) -> int:
        return len(self._table)
