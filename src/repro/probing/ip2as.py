"""Naive IP-to-AS mapping from a routing table.

Section 7.6 maps traceroute hops to AS numbers "using a current
routeview routing table" to lower-bound how many AS hops a blackhole
community traversed; :class:`Ip2AsMapper` reproduces that step over the
simulated origins.
"""

from __future__ import annotations

from repro.bgp.prefix import AddressFamily, Prefix
from repro.collectors.observation import ObservationArchive
from repro.net.lpm import LpmTable
from repro.topology.topology import Topology


class Ip2AsMapper:
    """Longest-prefix-match mapping of addresses to origin ASes."""

    def __init__(self, table: dict[Prefix, int] | None = None):
        self._table: dict[Prefix, int] = {}
        self._lpm = LpmTable()
        for prefix, asn in (table or {}).items():
            self.add(prefix, asn)

    @classmethod
    def from_topology(cls, topology: Topology) -> "Ip2AsMapper":
        """Build the mapping from the topology's legitimate prefix ownership."""
        return cls(topology.originated_prefixes())

    @classmethod
    def from_archive(cls, archive: ObservationArchive) -> "Ip2AsMapper":
        """Build the mapping from observed routes (origin = last AS on the path)."""
        table: dict[Prefix, int] = {}
        for observation in archive:
            origin = observation.origin_asn
            if origin is not None:
                table[observation.prefix] = origin
        return cls(table)

    def add(self, prefix: Prefix, asn: int) -> None:
        """Add one mapping entry."""
        self._table[prefix] = asn
        self._lpm.insert(prefix, asn)

    def remove(self, prefix: Prefix) -> None:
        """Drop one mapping entry if present."""
        if self._table.pop(prefix, None) is not None:
            self._lpm.delete(prefix)

    def lookup(self, address: int, family: AddressFamily | None = None) -> int | None:
        """Return the origin AS of the longest matching prefix (None if unmapped).

        The match stays within one address family: an IPv4 address is
        never resolved against an IPv6 prefix (or vice versa).
        """
        hit = self._lpm.longest_match(address, family)
        return hit[1] if hit is not None else None

    def lookup_prefix(self, prefix: Prefix) -> int | None:
        """Return the origin AS of the longest prefix covering ``prefix``."""
        covering = self._lpm.covering(prefix)
        # ``covering`` is ordered least specific first.
        return covering[-1][1] if covering else None

    def __len__(self) -> int:
        return len(self._table)
