"""Active measurement: Atlas-like vantage points, looking glasses, IP-to-AS mapping."""

from repro.probing.atlas import AtlasPlatform, ProbeMeasurement, VantagePoint
from repro.probing.looking_glass import LookingGlass, LookingGlassEntry
from repro.probing.ip2as import Ip2AsMapper

__all__ = [
    "AtlasPlatform",
    "ProbeMeasurement",
    "VantagePoint",
    "LookingGlass",
    "LookingGlassEntry",
    "Ip2AsMapper",
]
