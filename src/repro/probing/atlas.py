"""A RIPE-Atlas-like active measurement platform over the simulated data plane.

The paper uses ~200 randomly chosen but fixed Atlas vantage points to
probe a prefix before and after each announcement (Section 7.6).  The
:class:`AtlasPlatform` here does the same: it owns a fixed set of
vantage points (ASes), issues ICMP-like pings and traceroutes through a
:class:`~repro.dataplane.forwarding.DataPlane`, and returns per-probe
results that the experiment drivers compare across announcement steps.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bgp.prefix import Prefix
from repro.dataplane.forwarding import DataPlane, PingResult, TracerouteResult
from repro.exceptions import ProbingError
from repro.topology.topology import Topology
from repro.utils.rand import DeterministicRng


@dataclass(frozen=True)
class VantagePoint:
    """One measurement probe: an identifier and the AS hosting it."""

    probe_id: int
    asn: int


@dataclass
class ProbeMeasurement:
    """The results of one measurement round across all vantage points."""

    target: Prefix
    pings: dict[int, PingResult] = field(default_factory=dict)
    traceroutes: dict[int, TracerouteResult] = field(default_factory=dict)

    def responsive_probes(self) -> set[int]:
        """Probe ids whose ping reached the target."""
        return {probe_id for probe_id, ping in self.pings.items() if ping.reachable}

    def unresponsive_probes(self) -> set[int]:
        """Probe ids whose ping did not reach the target."""
        return set(self.pings) - self.responsive_probes()

    def reachability_fraction(self) -> float:
        """Fraction of probes that reached the target."""
        if not self.pings:
            return 0.0
        return len(self.responsive_probes()) / len(self.pings)


class AtlasPlatform:
    """A fixed set of vantage points probing targets over the simulated data plane."""

    def __init__(self, vantage_points: list[VantagePoint]):
        if not vantage_points:
            raise ProbingError("an Atlas platform needs at least one vantage point")
        self.vantage_points = list(vantage_points)

    @classmethod
    def deploy(
        cls,
        topology: Topology,
        probe_count: int = 200,
        seed: int = 11,
        exclude_asns: set[int] | None = None,
    ) -> "AtlasPlatform":
        """Place up to ``probe_count`` probes in distinct, randomly chosen ASes.

        Probes prefer stub ASes (where real Atlas probes overwhelmingly
        sit) and never land in excluded ASes (e.g. the attacker or the
        injection platform).
        """
        exclude_asns = exclude_asns or set()
        rng = DeterministicRng(seed).child("atlas")
        stub_pool = [a.asn for a in topology.stub_ases() if a.asn not in exclude_asns]
        transit_pool = [a.asn for a in topology.transit_ases() if a.asn not in exclude_asns]
        pool = stub_pool + transit_pool
        if not pool:
            raise ProbingError("topology has no candidate ASes for Atlas probes")
        chosen = rng.sample(pool, min(probe_count, len(pool)))
        points = [VantagePoint(probe_id=i + 1, asn=asn) for i, asn in enumerate(chosen)]
        return cls(points)

    def probe_asns(self) -> list[int]:
        """The ASes hosting probes."""
        return [vp.asn for vp in self.vantage_points]

    def measure(
        self, dataplane: DataPlane, target: Prefix, with_traceroute: bool = False
    ) -> ProbeMeasurement:
        """Ping (and optionally traceroute) ``target`` from every vantage point."""
        measurement = ProbeMeasurement(target=target)
        address = target.host()
        # Pass the target's family explicitly: low IPv6 addresses (::/96)
        # would otherwise be inferred as IPv4 and miss their routes.
        family = target.family
        for vantage_point in self.vantage_points:
            if vantage_point.asn not in dataplane.fibs:
                continue
            measurement.pings[vantage_point.probe_id] = dataplane.ping(
                vantage_point.asn, address, family
            )
            if with_traceroute:
                measurement.traceroutes[vantage_point.probe_id] = dataplane.traceroute(
                    vantage_point.asn, address, family
                )
        return measurement

    def compare(
        self, before: ProbeMeasurement, after: ProbeMeasurement
    ) -> tuple[set[int], set[int]]:
        """Return (probes that lost reachability, probes that gained reachability)."""
        lost = before.responsive_probes() & after.unresponsive_probes()
        gained = before.unresponsive_probes() & after.responsive_probes()
        return lost, gained
