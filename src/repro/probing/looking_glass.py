"""Public looking glasses: read-only views into another AS's routing table.

The wild experiments validate every control-plane effect through looking
glasses ("we verified that the path prepending community was present at
the target", "the next-hop address for the prefix changed to a null
interface").  A :class:`LookingGlass` exposes the same queries over a
simulated router.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bgp.community import Community
from repro.bgp.prefix import Prefix
from repro.exceptions import ProbingError
from repro.routing.engine import BgpSimulator


@dataclass(frozen=True)
class LookingGlassEntry:
    """What a looking glass shows for one prefix."""

    prefix: Prefix
    as_path: tuple[int, ...]
    communities: tuple[str, ...]
    local_pref: int
    next_hop: str
    learned_from: int
    blackholed: bool

    def has_community(self, community: Community | str) -> bool:
        """True if the route carries the community."""
        return str(community) in self.communities


class LookingGlass:
    """A read-only view into one AS's best routes."""

    def __init__(self, simulator: BgpSimulator, asn: int):
        if asn not in simulator.routers:
            raise ProbingError(f"AS{asn} does not exist; cannot host a looking glass")
        self.simulator = simulator
        self.asn = asn

    def show_route(self, prefix: Prefix) -> LookingGlassEntry | None:
        """Return the best route for exactly ``prefix`` (None if absent)."""
        best = self.simulator.best_route(self.asn, prefix)
        if best is None:
            return None
        return LookingGlassEntry(
            prefix=prefix,
            as_path=tuple(best.attributes.as_path.asns()),
            communities=tuple(str(c) for c in best.attributes.communities),
            local_pref=best.attributes.effective_local_pref(),
            next_hop="null0" if best.blackholed else f"AS{best.learned_from}",
            learned_from=best.learned_from,
            blackholed=best.blackholed,
        )

    def show_candidates(self, prefix: Prefix) -> list[LookingGlassEntry]:
        """Return every candidate route the AS holds for ``prefix``."""
        router = self.simulator.router(self.asn)
        entries = []
        for candidate in router.loc_rib.candidates(prefix):
            entries.append(
                LookingGlassEntry(
                    prefix=prefix,
                    as_path=tuple(candidate.attributes.as_path.asns()),
                    communities=tuple(str(c) for c in candidate.attributes.communities),
                    local_pref=candidate.attributes.effective_local_pref(),
                    next_hop="null0" if candidate.blackholed else f"AS{candidate.learned_from}",
                    learned_from=candidate.learned_from,
                    blackholed=candidate.blackholed,
                )
            )
        return entries

    def route_exists(self, prefix: Prefix) -> bool:
        """True if the AS has any best route for ``prefix``."""
        return self.show_route(prefix) is not None
