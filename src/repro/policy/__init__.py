"""Routing policy: community actions, propagation policies, filters, vendor profiles."""

from repro.policy.actions import (
    ActionType,
    CommunityAction,
    PrependAction,
    LocalPrefAction,
    BlackholeAction,
    SelectiveAnnounceAction,
    SuppressAction,
    LocationTagAction,
    NoopInformationalAction,
)
from repro.policy.community_policy import (
    CommunityPropagationPolicy,
    ForwardAllPolicy,
    StripAllPolicy,
    StripOwnPolicy,
    SelectivePolicy,
    PropagationBehavior,
)
from repro.policy.services import CommunityServiceCatalog, ServiceDefinition
from repro.policy.filters import PrefixFilter, IrrDatabase, IrrRoute, MaxPrefixLengthFilter
from repro.policy.route_map import RouteMap, RouteMapEntry, MatchCondition, RouteMapResult
from repro.policy.vendor import VendorProfile, CISCO_PROFILE, JUNIPER_PROFILE

__all__ = [
    "ActionType",
    "CommunityAction",
    "PrependAction",
    "LocalPrefAction",
    "BlackholeAction",
    "SelectiveAnnounceAction",
    "SuppressAction",
    "LocationTagAction",
    "NoopInformationalAction",
    "CommunityPropagationPolicy",
    "ForwardAllPolicy",
    "StripAllPolicy",
    "StripOwnPolicy",
    "SelectivePolicy",
    "PropagationBehavior",
    "CommunityServiceCatalog",
    "ServiceDefinition",
    "PrefixFilter",
    "IrrDatabase",
    "IrrRoute",
    "MaxPrefixLengthFilter",
    "RouteMap",
    "RouteMapEntry",
    "MatchCondition",
    "RouteMapResult",
    "VendorProfile",
    "CISCO_PROFILE",
    "JUNIPER_PROFILE",
]
