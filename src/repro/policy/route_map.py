"""A vendor-neutral route-map engine.

Section 6.3 of the paper stresses that the order in which community
rules are evaluated is configuration-defined, not value-defined, and
that innocuous-looking configurations (the NANOG RTBH tutorial snippet)
can evaluate the blackhole match before origin validation.  This module
gives the lab experiments a small but real rule engine: ordered entries,
match conditions over prefix/communities/neighbor, and permit/deny plus
attribute-modifying actions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Sequence

from repro.bgp.attributes import PathAttributes
from repro.bgp.community import Community, CommunitySet
from repro.bgp.prefix import Prefix
from repro.exceptions import PolicyError


class MatchCondition:
    """Base class of route-map match conditions."""

    def matches(
        self, prefix: Prefix, attributes: PathAttributes, neighbor_asn: int
    ) -> bool:
        """Return True if the announcement satisfies the condition."""
        raise NotImplementedError


@dataclass(frozen=True)
class MatchCommunity(MatchCondition):
    """Match if the route carries any (or, optionally, all) listed communities."""

    communities: frozenset[Community]
    require_all: bool = False

    def matches(self, prefix: Prefix, attributes: PathAttributes, neighbor_asn: int) -> bool:
        present = set(attributes.communities)
        if self.require_all:
            return self.communities <= present
        return bool(self.communities & present)


@dataclass(frozen=True)
class MatchPrefixIn(MatchCondition):
    """Match if the announced prefix is covered by any listed prefix."""

    prefixes: tuple[Prefix, ...]
    #: Maximum allowed prefix length (ge/le style); None = exact or more specific.
    max_length: int | None = None

    def matches(self, prefix: Prefix, attributes: PathAttributes, neighbor_asn: int) -> bool:
        for candidate in self.prefixes:
            if candidate.contains_prefix(prefix):
                if self.max_length is None or prefix.length <= self.max_length:
                    return True
        return False


@dataclass(frozen=True)
class MatchNeighbor(MatchCondition):
    """Match if the announcement arrived from one of the listed neighbors."""

    neighbor_asns: frozenset[int]

    def matches(self, prefix: Prefix, attributes: PathAttributes, neighbor_asn: int) -> bool:
        return neighbor_asn in self.neighbor_asns


@dataclass(frozen=True)
class MatchPrefixLength(MatchCondition):
    """Match prefixes whose length falls in [minimum, maximum]."""

    minimum: int = 0
    maximum: int = 32

    def matches(self, prefix: Prefix, attributes: PathAttributes, neighbor_asn: int) -> bool:
        return self.minimum <= prefix.length <= self.maximum


@dataclass(frozen=True)
class MatchAny(MatchCondition):
    """Match everything (the catch-all entry at the end of a route map)."""

    def matches(self, prefix: Prefix, attributes: PathAttributes, neighbor_asn: int) -> bool:
        return True


@dataclass(frozen=True)
class RouteMapResult:
    """The outcome of running a route map over one announcement."""

    permitted: bool
    attributes: PathAttributes
    matched_entry: "RouteMapEntry | None" = None
    blackholed: bool = False


SetAction = Callable[[PathAttributes], PathAttributes]


def set_local_pref(value: int) -> SetAction:
    """Return a set-action that overrides LOCAL_PREF."""
    return lambda attrs: attrs.replace(local_pref=value)


def set_blackhole_next_hop() -> SetAction:
    """Return a set-action that rewrites the next hop to a discard address."""
    return lambda attrs: attrs.replace(next_hop=0)


def add_communities(*communities: Community | str | int) -> SetAction:
    """Return a set-action that adds communities (additive semantics)."""
    return lambda attrs: attrs.with_communities_added(communities)


def delete_communities(*communities: Community | str | int) -> SetAction:
    """Return a set-action that removes specific communities."""
    return lambda attrs: attrs.with_communities_removed(communities)


def strip_all_communities() -> SetAction:
    """Return a set-action that removes every community."""
    return lambda attrs: attrs.without_communities()


def prepend_as(asn: int, count: int) -> SetAction:
    """Return a set-action that prepends ``asn`` ``count`` times."""
    return lambda attrs: attrs.with_prepend(asn, count)


@dataclass
class RouteMapEntry:
    """One numbered route-map entry: conditions, permit/deny, and set actions."""

    sequence: int
    permit: bool = True
    conditions: tuple[MatchCondition, ...] = (MatchAny(),)
    set_actions: tuple[SetAction, ...] = ()
    mark_blackhole: bool = False
    description: str = ""

    def matches(self, prefix: Prefix, attributes: PathAttributes, neighbor_asn: int) -> bool:
        """True if every condition matches (AND semantics, like real route maps)."""
        return all(c.matches(prefix, attributes, neighbor_asn) for c in self.conditions)

    def apply(self, attributes: PathAttributes) -> PathAttributes:
        """Apply the set actions in order and return the new attributes."""
        for action in self.set_actions:
            attributes = action(attributes)
        return attributes


class RouteMap:
    """An ordered sequence of route-map entries with first-match-wins semantics."""

    def __init__(self, name: str, entries: Sequence[RouteMapEntry] = ()):
        self.name = name
        self._entries: list[RouteMapEntry] = []
        for entry in entries:
            self.add_entry(entry)

    def add_entry(self, entry: RouteMapEntry) -> None:
        """Append an entry; sequence numbers must be strictly increasing."""
        if self._entries and entry.sequence <= self._entries[-1].sequence:
            raise PolicyError(
                f"route-map {self.name}: sequence {entry.sequence} is not greater than "
                f"{self._entries[-1].sequence}"
            )
        self._entries.append(entry)

    @property
    def entries(self) -> list[RouteMapEntry]:
        """The ordered entries."""
        return list(self._entries)

    def evaluate(
        self, prefix: Prefix, attributes: PathAttributes, neighbor_asn: int = 0
    ) -> RouteMapResult:
        """Run the route map; an announcement matching no entry is denied.

        This mirrors vendor behaviour: route maps end with an implicit
        deny.
        """
        for entry in self._entries:
            if entry.matches(prefix, attributes, neighbor_asn):
                if not entry.permit:
                    return RouteMapResult(False, attributes, matched_entry=entry)
                return RouteMapResult(
                    True,
                    entry.apply(attributes),
                    matched_entry=entry,
                    blackholed=entry.mark_blackhole,
                )
        return RouteMapResult(False, attributes, matched_entry=None)

    def __len__(self) -> int:
        return len(self._entries)


def nanog_rtbh_route_map(
    name: str,
    blackhole_communities: frozenset[Community],
    customer_prefixes: tuple[Prefix, ...],
    validate_before_blackhole: bool = False,
) -> RouteMap:
    """Build the two variants of the NANOG-tutorial RTBH route map.

    With ``validate_before_blackhole=False`` (the published snippet) the
    blackhole-community entry matches *any* prefix tagged with the
    blackhole community — including hijacks of space the neighbor has no
    authority over — before the customer-prefix validation entry is ever
    reached.  With ``validate_before_blackhole=True`` the blackhole entry
    additionally requires the prefix to fall inside the accepted customer
    space, so the hijack is dropped.
    """
    blackhole_conditions: tuple[MatchCondition, ...] = (
        MatchCommunity(blackhole_communities),
        MatchPrefixLength(24, 32),
    )
    if validate_before_blackhole:
        blackhole_conditions = blackhole_conditions + (MatchPrefixIn(customer_prefixes),)
    blackhole_entry = RouteMapEntry(
        sequence=0,  # placeholder; replaced below
        permit=True,
        conditions=blackhole_conditions,
        set_actions=(set_local_pref(200), set_blackhole_next_hop()),
        mark_blackhole=True,
        description="accept and blackhole routes tagged with the RTBH community",
    )
    validation_entry = RouteMapEntry(
        sequence=0,  # placeholder; replaced below
        permit=True,
        conditions=(MatchPrefixIn(customer_prefixes, max_length=24),),
        description="accept customer prefixes",
    )
    if validate_before_blackhole:
        ordered = [validation_entry, blackhole_entry]
    else:
        ordered = [blackhole_entry, validation_entry]
    entries = []
    for i, entry in enumerate(ordered, start=1):
        entries.append(
            RouteMapEntry(
                sequence=i * 10,
                permit=entry.permit,
                conditions=entry.conditions,
                set_actions=entry.set_actions,
                mark_blackhole=entry.mark_blackhole,
                description=entry.description,
            )
        )
    return RouteMap(name, entries)
