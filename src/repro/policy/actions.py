"""Community-triggered actions.

Bonaventure et al.'s taxonomy, which the paper adopts in Section 2,
groups outbound community meanings into route selection (local-pref /
prepending), selective announcement, route suppression, blackholing,
and location tagging.  Each category is modelled as an action class the
policy engine applies when a route carrying the triggering community is
processed by the AS that owns the community.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.bgp.attributes import PathAttributes
from repro.exceptions import PolicyError


class ActionType(str, Enum):
    """The taxonomy categories of community-triggered actions."""

    PREPEND = "prepend"
    LOCAL_PREF = "local_pref"
    BLACKHOLE = "blackhole"
    SELECTIVE_ANNOUNCE = "selective_announce"
    SUPPRESS = "suppress"
    LOCATION = "location"
    INFORMATIONAL = "informational"


@dataclass(frozen=True)
class ActionOutcome:
    """The result of applying an action to a route at the community target."""

    attributes: PathAttributes
    #: Route must not be exported to these neighbor ASNs (None = no restriction).
    suppress_to: frozenset[int] = frozenset()
    #: Route may ONLY be exported to these neighbor ASNs (None = no restriction).
    announce_only_to: frozenset[int] | None = None
    #: Traffic to the prefix is dropped at this AS (next hop rewritten to null).
    blackholed: bool = False


class CommunityAction:
    """Base class: an action an AS performs when it sees one of its communities."""

    action_type: ActionType = ActionType.INFORMATIONAL

    def apply(self, attributes: PathAttributes, owner_asn: int) -> ActionOutcome:
        """Apply the action at the community owner; return the outcome."""
        raise NotImplementedError


@dataclass(frozen=True)
class PrependAction(CommunityAction):
    """Prepend the owner's ASN ``count`` extra times on export (e.g. NTT 2914:42x)."""

    count: int
    action_type: ActionType = ActionType.PREPEND

    def __post_init__(self) -> None:
        if not 1 <= self.count <= 16:
            raise PolicyError(f"prepend count {self.count} out of the sane range 1..16")

    def apply(self, attributes: PathAttributes, owner_asn: int) -> ActionOutcome:
        return ActionOutcome(attributes=attributes.with_prepend(owner_asn, self.count))


@dataclass(frozen=True)
class LocalPrefAction(CommunityAction):
    """Set LOCAL_PREF to a fixed value (e.g. a "customer backup" preference)."""

    local_pref: int
    action_type: ActionType = ActionType.LOCAL_PREF

    def __post_init__(self) -> None:
        if not 0 <= self.local_pref <= 0xFFFFFFFF:
            raise PolicyError(f"local-pref {self.local_pref} out of 32-bit range")

    def apply(self, attributes: PathAttributes, owner_asn: int) -> ActionOutcome:
        return ActionOutcome(attributes=attributes.replace(local_pref=self.local_pref))


@dataclass(frozen=True)
class BlackholeAction(CommunityAction):
    """Drop traffic to the tagged prefix (remotely triggered blackholing).

    ``raise_local_pref_to`` models the recommended RTBH configurations
    that prefer blackhole routes over regular best-path selection
    (Section 5.1: "often preferred treatment of the blackhole community
    before best path selection").
    """

    raise_local_pref_to: int | None = 200
    action_type: ActionType = ActionType.BLACKHOLE

    def apply(self, attributes: PathAttributes, owner_asn: int) -> ActionOutcome:
        new_attributes = attributes
        if self.raise_local_pref_to is not None:
            new_attributes = new_attributes.replace(local_pref=self.raise_local_pref_to)
        return ActionOutcome(attributes=new_attributes, blackholed=True)


@dataclass(frozen=True)
class SelectiveAnnounceAction(CommunityAction):
    """Announce the route only to the listed neighbor ASNs."""

    neighbor_asns: frozenset[int]
    action_type: ActionType = ActionType.SELECTIVE_ANNOUNCE

    def __post_init__(self) -> None:
        if not self.neighbor_asns:
            raise PolicyError("selective announce action needs at least one neighbor ASN")

    def apply(self, attributes: PathAttributes, owner_asn: int) -> ActionOutcome:
        return ActionOutcome(attributes=attributes, announce_only_to=frozenset(self.neighbor_asns))


@dataclass(frozen=True)
class SuppressAction(CommunityAction):
    """Do not announce the route to the listed neighbor ASNs (empty = to nobody)."""

    neighbor_asns: frozenset[int] = frozenset()
    suppress_all: bool = False
    action_type: ActionType = ActionType.SUPPRESS

    def apply(self, attributes: PathAttributes, owner_asn: int) -> ActionOutcome:
        if self.suppress_all:
            return ActionOutcome(attributes=attributes, announce_only_to=frozenset())
        return ActionOutcome(attributes=attributes, suppress_to=frozenset(self.neighbor_asns))


@dataclass(frozen=True)
class LocationTagAction(CommunityAction):
    """Tag incoming routes with an ingress-location community (e.g. AS6:201 = LAX)."""

    location_value: int
    action_type: ActionType = ActionType.LOCATION

    def apply(self, attributes: PathAttributes, owner_asn: int) -> ActionOutcome:
        from repro.bgp.community import Community

        tagged = attributes.with_communities_added([Community(owner_asn, self.location_value)])
        return ActionOutcome(attributes=tagged)


@dataclass(frozen=True)
class NoopInformationalAction(CommunityAction):
    """A purely informational community: no routing effect."""

    action_type: ActionType = ActionType.INFORMATIONAL

    def apply(self, attributes: PathAttributes, owner_asn: int) -> ActionOutcome:
        return ActionOutcome(attributes=attributes)
