"""Router vendor behaviour profiles.

Section 6.1 of the paper distils the lab findings into a handful of
behavioural differences between the two dominant vendors:

* both accept updates carrying communities by default;
* only Juniper *propagates* communities to neighbors by default — Cisco
  requires explicit ``send-community`` per neighbor or peer group;
* both sort communities numerically when displaying and sending;
* Cisco limits a single configuration statement to adding 32 distinct
  communities to a prefix;
* a BGP update can carry at most 2^16 / 4 = 16K communities.

A :class:`VendorProfile` bundles these switches so the routing
simulator can be populated with a realistic vendor mix and the lab
benchmark can ablate each behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bgp.attributes import CISCO_MAX_ADDED_COMMUNITIES, MAX_COMMUNITIES_PER_UPDATE
from repro.exceptions import PolicyError


@dataclass(frozen=True)
class VendorProfile:
    """Behavioural switches of a router platform."""

    name: str
    #: Are received communities propagated to neighbors without explicit config?
    send_communities_by_default: bool
    #: Maximum communities a single policy statement may add to a prefix.
    max_added_communities: int
    #: Maximum communities an update can carry at all.
    max_communities_per_update: int = MAX_COMMUNITIES_PER_UPDATE
    #: Are communities numerically sorted on display/send? (both vendors do)
    normalizes_community_order: bool = True
    #: Does the platform accept updates that carry communities? (both do)
    accepts_communities: bool = True

    def effective_send_communities(self, explicitly_configured: bool) -> bool:
        """Return whether communities are sent to a neighbor.

        ``explicitly_configured`` models the operator adding
        ``send-community`` (Cisco) or an export policy (Juniper).
        """
        return self.send_communities_by_default or explicitly_configured

    def check_added_communities(self, count: int) -> None:
        """Raise :class:`PolicyError` if a statement adds more communities than allowed."""
        if count > self.max_added_communities:
            raise PolicyError(
                f"{self.name} permits adding at most {self.max_added_communities} communities "
                f"in one statement, got {count}"
            )


#: Cisco IOS / IOS XE behaviour: communities accepted but only sent when
#: ``send-community`` is configured; 32-community add limit.
CISCO_PROFILE = VendorProfile(
    name="cisco-ios",
    send_communities_by_default=False,
    max_added_communities=CISCO_MAX_ADDED_COMMUNITIES,
)

#: JunOS behaviour: communities propagated by default.
JUNIPER_PROFILE = VendorProfile(
    name="junos",
    send_communities_by_default=True,
    max_added_communities=MAX_COMMUNITIES_PER_UPDATE,
)

#: All built-in profiles by name.
BUILTIN_PROFILES = {
    CISCO_PROFILE.name: CISCO_PROFILE,
    JUNIPER_PROFILE.name: JUNIPER_PROFILE,
}


def profile_by_name(name: str) -> VendorProfile:
    """Look up a built-in vendor profile."""
    try:
        return BUILTIN_PROFILES[name]
    except KeyError as exc:
        raise PolicyError(
            f"unknown vendor profile {name!r}; available: {sorted(BUILTIN_PROFILES)}"
        ) from exc
