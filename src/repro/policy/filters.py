"""Prefix filters and IRR origin validation.

The wild experiments (Section 7) repeatedly run into three gatekeepers:
maximum accepted prefix length, IRR-based origin validation (which "adds
a layer of defense ... but it is often easy to circumvent"), and
business-relationship gating.  The first two live here; the third is a
property of the community services (see
:class:`repro.policy.services.ServiceDefinition.customers_only`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.bgp.prefix import Prefix
from repro.exceptions import PolicyError


@dataclass(frozen=True)
class FilterDecision:
    """The outcome of a filter: accepted or rejected with a reason."""

    accepted: bool
    reason: str = ""

    def __bool__(self) -> bool:
        return self.accepted


class PrefixFilter:
    """Base class for per-neighbor inbound prefix filters."""

    def evaluate(self, prefix: Prefix, origin_asn: int, is_blackhole: bool) -> FilterDecision:
        """Return whether an announcement of ``prefix`` from ``origin_asn`` is accepted."""
        raise NotImplementedError

    def prefix_scoped(self) -> bool:
        """True when a decision can depend on the concrete network bits.

        Conservative default: unknown filter subclasses are assumed to
        read the network, which disables the batch import memo for
        chains using them.  Filters that only look at the prefix's
        shape (family, length, blackhole tag) override this to False.
        """
        return True


@dataclass
class MaxPrefixLengthFilter(PrefixFilter):
    """Reject prefixes more specific than the configured per-family maximum.

    Blackhole-tagged announcements get their own (longer) maximum, since
    RTBH typically must be a /24 or more specific, often a /32
    (Section 7.3, "Additional constraints").  The limits are per address
    family: applying the IPv4 /24 cutoff to IPv6 would reject virtually
    every legitimate IPv6 route (/32 allocations, /48 sites).
    """

    max_length: int = 24
    max_blackhole_length: int = 32
    min_blackhole_length: int = 24
    max_length_v6: int = 48
    max_blackhole_length_v6: int = 128
    min_blackhole_length_v6: int = 48

    def _limits(self, prefix: Prefix) -> tuple[int, int, int]:
        """Return (max_length, max_blackhole_length, min_blackhole_length)."""
        if prefix.is_ipv6:
            return (self.max_length_v6, self.max_blackhole_length_v6, self.min_blackhole_length_v6)
        return (self.max_length, self.max_blackhole_length, self.min_blackhole_length)

    def prefix_scoped(self) -> bool:
        """Length limits read only (family, length, blackhole tag) — memo-safe."""
        return False

    def evaluate(self, prefix: Prefix, origin_asn: int, is_blackhole: bool) -> FilterDecision:
        max_length, max_blackhole, min_blackhole = self._limits(prefix)
        if is_blackhole:
            if prefix.length < min_blackhole:
                return FilterDecision(
                    False,
                    f"blackhole prefix {prefix} shorter than /{min_blackhole}",
                )
            if prefix.length > max_blackhole:
                return FilterDecision(
                    False,
                    f"blackhole prefix {prefix} longer than /{max_blackhole}",
                )
            return FilterDecision(True)
        if prefix.length > max_length:
            return FilterDecision(False, f"prefix {prefix} longer than /{max_length}")
        return FilterDecision(True)


@dataclass(frozen=True)
class IrrRoute:
    """One route object in the IRR: a prefix and its registered origin AS."""

    prefix: Prefix
    origin_asn: int
    source: str = "RADB"


class IrrDatabase:
    """A toy Internet Routing Registry for origin validation.

    Mirrors the paper's two observations: validation against the IRR is
    a real hurdle for hijack-based attacks (the research network had to
    update the IRR first), and the registry is weakly authenticated so
    an attacker can often register the object themselves
    (:meth:`register` has no authorisation check by default).
    """

    def __init__(self, routes: Iterable[IrrRoute] = (), strict: bool = False):
        self._routes: list[IrrRoute] = list(routes)
        #: When strict, :meth:`register` refuses objects for address space
        #: already registered to a different origin.
        self.strict = strict

    def register(self, prefix: Prefix, origin_asn: int, source: str = "RADB") -> IrrRoute:
        """Register a route object (weakly authenticated unless ``strict``)."""
        if self.strict:
            for route in self._routes:
                if route.prefix.overlaps(prefix) and route.origin_asn != origin_asn:
                    raise PolicyError(
                        f"IRR is strict: {prefix} overlaps {route.prefix} registered to "
                        f"AS{route.origin_asn}"
                    )
        route = IrrRoute(prefix=prefix, origin_asn=origin_asn, source=source)
        self._routes.append(route)
        return route

    def routes_for(self, prefix: Prefix) -> list[IrrRoute]:
        """Return the route objects covering ``prefix``."""
        return [r for r in self._routes if r.prefix.contains_prefix(prefix)]

    def validate_origin(self, prefix: Prefix, origin_asn: int) -> FilterDecision:
        """Return whether ``origin_asn`` is a registered origin for ``prefix``.

        If no covering object exists the announcement is accepted
        ("unknown" is not "invalid"), matching common operator practice.
        """
        covering = self.routes_for(prefix)
        if not covering:
            return FilterDecision(True, "no IRR object covers the prefix (unknown)")
        if any(route.origin_asn == origin_asn for route in covering):
            return FilterDecision(True, "origin matches an IRR object")
        registered = sorted({route.origin_asn for route in covering})
        return FilterDecision(
            False,
            f"origin AS{origin_asn} does not match registered origin(s) "
            f"{', '.join(f'AS{a}' for a in registered)}",
        )

    def __len__(self) -> int:
        return len(self._routes)


@dataclass
class InboundFilterChain:
    """The ordered inbound filters an AS applies to a neighbor's announcement.

    ``blackhole_before_validation`` reproduces the NANOG-tutorial
    misconfiguration from Section 6.3: the route-map checks for the
    blackhole community *before* validating the prefix against the
    customer list, so a hijacked prefix tagged with the blackhole
    community slips through.
    """

    prefix_filter: MaxPrefixLengthFilter = field(default_factory=MaxPrefixLengthFilter)
    irr: IrrDatabase | None = None
    validate_origin: bool = False
    blackhole_before_validation: bool = False

    def prefix_scoped(self) -> bool:
        """True when a decision can depend on the concrete network bits.

        The stock length filter only looks at ``(family, length,
        blackhole tag)``, so its outcome is shared by every prefix with
        the same shape — which is what lets the router memoise the
        import pipeline across a batch.  IRR origin validation matches
        the registry against the full prefix, so a chain running it is
        never memoised by shape alone; the same question is delegated
        to the prefix filter itself (unknown subclasses answer True,
        disabling the memo conservatively).
        """
        if self.validate_origin and self.irr is not None:
            return True
        return self.prefix_filter.prefix_scoped()

    def evaluate(
        self, prefix: Prefix, origin_asn: int, is_blackhole: bool
    ) -> FilterDecision:
        """Run the chain and return the first rejection (or acceptance)."""
        length_decision = self.prefix_filter.evaluate(prefix, origin_asn, is_blackhole)
        if not length_decision:
            return length_decision
        if self.blackhole_before_validation and is_blackhole:
            # The misconfigured route-map accepts the blackhole route without
            # ever reaching the origin-validation stanza.
            return FilterDecision(True, "blackhole community matched before validation")
        if self.validate_origin and self.irr is not None:
            irr_decision = self.irr.validate_origin(prefix, origin_asn)
            if not irr_decision:
                return irr_decision
        return FilterDecision(True)
