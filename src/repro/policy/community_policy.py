"""Community propagation policies.

Section 4.4 of the paper finds that operators handle received
communities in wildly different ways: "some remove all communities,
some do not tamper with them at all, while others act upon and remove
communities directed at them and leave the rest in place", and yet
others forward selectively per neighbor.  Each of those behaviours is a
policy class here; the topology generator assigns a mix of them and the
measurement pipeline then re-discovers the mix from the dumps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.bgp.community import Community, CommunitySet


class PropagationBehavior(str, Enum):
    """Labels for the propagation behaviours used by the dataset generator."""

    FORWARD_ALL = "forward_all"
    STRIP_ALL = "strip_all"
    STRIP_OWN = "strip_own"
    SELECTIVE = "selective"


class CommunityPropagationPolicy:
    """Decides which received communities an AS forwards to a given neighbor."""

    behavior: PropagationBehavior = PropagationBehavior.FORWARD_ALL

    def outbound_communities(
        self, communities: CommunitySet, own_asn: int, neighbor_asn: int
    ) -> CommunitySet:
        """Return the communities to attach when exporting to ``neighbor_asn``."""
        raise NotImplementedError

    def neighbor_signature(self, neighbor_asn: int) -> object:
        """A hashable token capturing how this policy treats ``neighbor_asn``.

        Two neighbors with equal signatures are guaranteed to receive
        identical :meth:`outbound_communities` results for any input —
        the contract the collector-harvest export memo relies on to pay
        the rewrite chain once per peer instead of once per (peer,
        collector) session.  The base implementation returns the
        neighbor ASN itself, i.e. *no* cross-neighbor sharing: a custom
        subclass is never wrongly memoised just because it forgot to
        override this.
        """
        return neighbor_asn

    def describe(self) -> str:
        """Human-readable one-line description."""
        return self.behavior.value


@dataclass
class ForwardAllPolicy(CommunityPropagationPolicy):
    """Forward every received community untouched (Juniper default behaviour)."""

    behavior: PropagationBehavior = PropagationBehavior.FORWARD_ALL

    def outbound_communities(
        self, communities: CommunitySet, own_asn: int, neighbor_asn: int
    ) -> CommunitySet:
        return communities

    def neighbor_signature(self, neighbor_asn: int) -> object:
        return None


@dataclass
class StripAllPolicy(CommunityPropagationPolicy):
    """Remove every community on export (also models Cisco with send-community unset)."""

    #: If True, communities this AS added itself are still sent (its own signals).
    keep_own: bool = True
    behavior: PropagationBehavior = PropagationBehavior.STRIP_ALL

    def outbound_communities(
        self, communities: CommunitySet, own_asn: int, neighbor_asn: int
    ) -> CommunitySet:
        if self.keep_own:
            return communities.keep_asn(own_asn)
        return CommunitySet()

    def neighbor_signature(self, neighbor_asn: int) -> object:
        return None


@dataclass
class StripOwnPolicy(CommunityPropagationPolicy):
    """Act-and-remove: strip communities addressed to this AS, forward the rest."""

    behavior: PropagationBehavior = PropagationBehavior.STRIP_OWN

    def outbound_communities(
        self, communities: CommunitySet, own_asn: int, neighbor_asn: int
    ) -> CommunitySet:
        return communities.remove_asn(own_asn)

    def neighbor_signature(self, neighbor_asn: int) -> object:
        return None


@dataclass
class SelectivePolicy(CommunityPropagationPolicy):
    """Forward communities only to an allow-listed set of neighbors.

    To everyone else the AS strips foreign communities (it still sends
    its own).  This models the operational practice of treating
    customers and peers differently.
    """

    forward_to_neighbors: frozenset[int] = frozenset()
    #: Communities always stripped regardless of neighbor (e.g. internal tags).
    always_strip: frozenset[Community] = field(default_factory=frozenset)
    behavior: PropagationBehavior = PropagationBehavior.SELECTIVE

    def outbound_communities(
        self, communities: CommunitySet, own_asn: int, neighbor_asn: int
    ) -> CommunitySet:
        remaining = communities.remove(*self.always_strip) if self.always_strip else communities
        if neighbor_asn in self.forward_to_neighbors:
            return remaining
        return remaining.keep_asn(own_asn)

    def neighbor_signature(self, neighbor_asn: int) -> object:
        # The only neighbor-dependence is allow-list membership.
        return neighbor_asn in self.forward_to_neighbors
