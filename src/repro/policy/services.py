"""Per-AS community service catalogues.

Each AS that offers community-based services (prepending, local-pref
tuning, RTBH, selective announcement, ...) publishes which community
triggers which action.  The catalogue is also what the attacker reads:
the paper notes that providers document their communities on their
websites and in IRR records, so an attacker knows exactly which value
to attach.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.bgp.community import BLACKHOLE, Community, CommunitySet
from repro.exceptions import PolicyError
from repro.policy.actions import (
    ActionType,
    BlackholeAction,
    CommunityAction,
    LocalPrefAction,
    PrependAction,
    SelectiveAnnounceAction,
    SuppressAction,
)


@dataclass(frozen=True)
class ServiceDefinition:
    """One documented community service: the trigger community and its action."""

    community: Community
    action: CommunityAction
    description: str = ""
    #: If True the service is only honoured for routes learned from customers
    #: (the business-relationship gating the paper hits in Section 7.4).
    customers_only: bool = True

    @property
    def action_type(self) -> ActionType:
        """The taxonomy category of the action."""
        return self.action.action_type


class CommunityServiceCatalog:
    """The set of community services one AS offers, keyed by community."""

    def __init__(self, owner_asn: int, services: Iterable[ServiceDefinition] = ()):
        self.owner_asn = owner_asn
        self._services: dict[Community, ServiceDefinition] = {}
        for service in services:
            self.add(service)

    def add(self, service: ServiceDefinition) -> None:
        """Register a service; the community must not already be defined."""
        if service.community in self._services:
            raise PolicyError(
                f"community {service.community} already defined in AS{self.owner_asn}'s catalog"
            )
        self._services[service.community] = service

    def get(self, community: Community) -> ServiceDefinition | None:
        """Return the service triggered by ``community`` (None if undefined)."""
        return self._services.get(community)

    def matching(self, communities: CommunitySet) -> list[ServiceDefinition]:
        """Return the services triggered by any community in ``communities``.

        The result is ordered by the community's numeric value — the
        same normalisation order routers use — so the caller can apply a
        deterministic (if arbitrary) evaluation order, as Section 6.3
        describes.
        """
        triggered = [
            self._services[c] for c in communities if c in self._services
        ]
        return sorted(triggered, key=lambda s: s.community.to_int())

    def services_of_type(self, action_type: ActionType) -> list[ServiceDefinition]:
        """Return all services of one taxonomy category."""
        return sorted(
            (s for s in self._services.values() if s.action_type == action_type),
            key=lambda s: s.community.to_int(),
        )

    def blackhole_communities(self) -> list[Community]:
        """Return the communities that trigger blackholing at this AS."""
        return [s.community for s in self.services_of_type(ActionType.BLACKHOLE)]

    def communities(self) -> list[Community]:
        """Return every documented trigger community."""
        return sorted(self._services)

    def __len__(self) -> int:
        return len(self._services)

    def __iter__(self) -> Iterator[ServiceDefinition]:
        return iter(self._services.values())

    def __contains__(self, community: Community) -> bool:
        return community in self._services

    # ------------------------------------------------------------ constructors
    @classmethod
    def standard_transit_catalog(
        cls,
        owner_asn: int,
        prepend_values: tuple[int, ...] = (421, 422, 423),
        local_pref_backup_value: int = 70,
        include_blackhole: bool = True,
        customers_only: bool = True,
    ) -> "CommunityServiceCatalog":
        """Build a catalogue resembling a large transit provider's documentation.

        Mirrors the NTT-style scheme cited in the paper: ``asn:421`` for
        prepend once, ``asn:422`` twice, ``asn:423`` three times, a
        "customer backup" local-pref community, and an RTBH community,
        plus acceptance of the well-known BLACKHOLE community.
        """
        services = []
        for i, value in enumerate(prepend_values, start=1):
            services.append(
                ServiceDefinition(
                    community=Community(owner_asn, value),
                    action=PrependAction(count=i),
                    description=f"prepend AS{owner_asn} {i}x to all peers",
                    customers_only=customers_only,
                )
            )
        services.append(
            ServiceDefinition(
                community=Community(owner_asn, 70),
                action=LocalPrefAction(local_pref=local_pref_backup_value),
                description="set local-pref to customer backup",
                customers_only=customers_only,
            )
        )
        if include_blackhole:
            services.append(
                ServiceDefinition(
                    community=Community(owner_asn, 666),
                    action=BlackholeAction(),
                    description="remotely triggered blackhole",
                    customers_only=False,
                )
            )
            services.append(
                ServiceDefinition(
                    community=BLACKHOLE,
                    action=BlackholeAction(),
                    description="RFC 7999 BLACKHOLE",
                    customers_only=False,
                )
            )
        return cls(owner_asn, services)

    @classmethod
    def ixp_route_server_catalog(
        cls, ixp_asn: int, member_asns: Iterable[int]
    ) -> "CommunityServiceCatalog":
        """Build the redistribution-control catalogue of an IXP route server."""
        services = []
        for member in sorted(set(member_asns)):
            if member > 0xFFFF:
                # Members with 32-bit ASNs cannot be encoded in a traditional
                # community value; real IXPs use large communities for them.
                continue
            services.append(
                ServiceDefinition(
                    community=Community(ixp_asn, member),
                    action=SelectiveAnnounceAction(neighbor_asns=frozenset({member})),
                    description=f"announce only to AS{member}",
                    customers_only=False,
                )
            )
            services.append(
                ServiceDefinition(
                    community=Community(0, member),
                    action=SuppressAction(neighbor_asns=frozenset({member})),
                    description=f"do not announce to AS{member}",
                    customers_only=False,
                )
            )
        services.append(
            ServiceDefinition(
                community=Community(0, ixp_asn) if ixp_asn <= 0xFFFF else Community(0, 0),
                action=SuppressAction(suppress_all=True),
                description="do not announce to any member",
                customers_only=False,
            )
        )
        return cls(ixp_asn, services)
