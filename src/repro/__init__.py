"""repro — a reproduction of "BGP Communities: Even more Worms in the Routing Can" (IMC 2018).

The package is organised in layers:

* :mod:`repro.bgp`, :mod:`repro.mrt` — protocol data model and archive formats;
* :mod:`repro.topology`, :mod:`repro.policy`, :mod:`repro.routing`,
  :mod:`repro.dataplane` — the simulated Internet (AS graph, community
  policies, BGP propagation, forwarding);
* :mod:`repro.collectors`, :mod:`repro.datasets` — route collectors and the
  synthetic April-2018-style observation dataset;
* :mod:`repro.measurement` — the paper's Section 4 measurement pipeline
  (the primary contribution);
* :mod:`repro.attacks`, :mod:`repro.probing`, :mod:`repro.wild` — the attack
  scenarios, active measurement, and in-the-wild experiment drivers of
  Sections 5–7.

Quickstart::

    from repro.datasets.synthetic import build_default_dataset
    from repro.measurement.report import MeasurementReport

    dataset = build_default_dataset()
    report = MeasurementReport(dataset.archive, dataset.topology, dataset.blackhole_list)
    print(report.full_report())
"""

from repro.exceptions import ReproError

__version__ = "1.0.0"

__all__ = ["ReproError", "__version__"]
