"""Community filtering inference (Section 4.4, Figure 6).

For every prefix we compare all observations at the same time: if an AS
is seen forwarding a community on the edge towards one neighbor but the
same prefix reaches another neighbor without that community, we count a
*filtering indication* for the second edge and a *forwarding indication*
for the first.  The heuristic, its conservative tagger attribution and
its acknowledged biases all follow the paper.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.bgp.community import Community
from repro.collectors.observation import ObservationArchive
from repro.utils.stats import fraction


@dataclass
class EdgeIndications:
    """Indication counters for one directed AS edge (from, to)."""

    edge: tuple[int, int]
    forwarded: int = 0
    filtered: int = 0
    added: int = 0
    #: Number of distinct AS paths on which the edge was observed.
    paths_observed: int = 0

    @property
    def has_evidence(self) -> bool:
        """True if the edge has at least one forwarding or filtering indication."""
        return self.forwarded > 0 or self.filtered > 0

    @property
    def only_filters(self) -> bool:
        """True if every indication points at filtering."""
        return self.filtered > 0 and self.forwarded == 0

    @property
    def only_forwards(self) -> bool:
        """True if every indication points at forwarding."""
        return self.forwarded > 0 and self.filtered == 0


@dataclass
class FilteringInference:
    """The result of the filtering inference over an archive."""

    edges: dict[tuple[int, int], EdgeIndications] = field(default_factory=dict)
    total_edges_observed: int = 0

    def edges_with_evidence(self, min_paths: int = 0) -> list[EdgeIndications]:
        """Edges with at least one indication and ``min_paths`` observed paths."""
        return [
            e
            for e in self.edges.values()
            if e.has_evidence and e.paths_observed >= min_paths
        ]

    def forwarding_fraction(self, min_paths: int = 0) -> float:
        """Fraction of all observed edges with at least one forwarding indication."""
        if min_paths:
            universe = [e for e in self.edges.values() if e.paths_observed >= min_paths]
        else:
            universe = list(self.edges.values())
        forwarding = [e for e in universe if e.forwarded > 0]
        return fraction(len(forwarding), len(universe))

    def filtering_fraction(self, min_paths: int = 0) -> float:
        """Fraction of all observed edges with at least one filtering indication."""
        if min_paths:
            universe = [e for e in self.edges.values() if e.paths_observed >= min_paths]
        else:
            universe = list(self.edges.values())
        filtering = [e for e in universe if e.filtered > 0]
        return fraction(len(filtering), len(universe))

    def scatter_points(self, min_paths: int = 100) -> list[tuple[int, int]]:
        """Figure 6(b): (forwarding, filtering) indication counts per qualifying edge."""
        return [
            (e.forwarded, e.filtered)
            for e in self.edges_with_evidence(min_paths=min_paths)
        ]


def _record_path_edges(inference: FilteringInference, path: tuple[int, ...]) -> None:
    """Count, per directed edge, on how many paths the edge was observed."""
    for downstream, upstream in zip(path, path[1:]):
        # The announcement travelled upstream -> downstream (origin towards peer).
        edge = (upstream, downstream)
        indications = inference.edges.get(edge)
        if indications is None:
            indications = EdgeIndications(edge=edge)
            inference.edges[edge] = indications
        indications.paths_observed += 1


def infer_filtering(archive: ObservationArchive) -> FilteringInference:
    """Run the Figure 6 filtering-inference heuristic over the archive."""
    inference = FilteringInference()

    # Group observations by prefix (the paper iterates per prefix and
    # considers all updates "at the same time").
    by_prefix: dict = defaultdict(list)
    for observation in archive:
        by_prefix[observation.prefix].append(observation)
        _record_path_edges(inference, observation.path_without_prepending)
    inference.total_edges_observed = len(inference.edges)

    for prefix, observations in by_prefix.items():
        # For each community, find where it was (conservatively) added and
        # which ASes were seen forwarding it onward.
        forwarding_evidence: dict[Community, set[int]] = defaultdict(set)
        carrying_paths: dict[Community, list[tuple[int, ...]]] = defaultdict(list)
        for observation in observations:
            path = observation.path_without_prepending
            positions: dict[int, int] = {}
            for index, asn in enumerate(path):
                if asn not in positions:
                    positions[asn] = index
            for community in observation.communities:
                tagger_index = positions.get(community.asn)
                if tagger_index is None or tagger_index == 0:
                    continue
                carrying_paths[community].append(path)
                # The tagger added the community on the edge towards the next AS.
                added_edge = (path[tagger_index], path[tagger_index - 1])
                entry = inference.edges.setdefault(
                    added_edge, EdgeIndications(edge=added_edge)
                )
                entry.added += 1
                # Every AS between the tagger and the peer forwarded it onward.
                for index in range(tagger_index - 1, 0, -1):
                    edge = (path[index], path[index - 1])
                    entry = inference.edges.setdefault(edge, EdgeIndications(edge=edge))
                    entry.forwarded += 1
                    forwarding_evidence[community].add(path[index])

        # Filtering indications: an AS known to forward the community (for
        # this prefix) appears on another path whose observation does not
        # carry the community.
        for observation in observations:
            path = observation.path_without_prepending
            present = set(observation.communities)
            for community, forwarders in forwarding_evidence.items():
                if community in present:
                    continue
                for index in range(1, len(path)):
                    asn = path[index]
                    if asn in forwarders:
                        edge = (asn, path[index - 1])
                        entry = inference.edges.setdefault(edge, EdgeIndications(edge=edge))
                        entry.filtered += 1
    return inference
