"""Blackhole-community identification and analysis.

The paper identifies blackholing communities either by the standardized
value 666 (RFC 7999) or from the verified list of Giotsas et al.; this
module applies the same two rules to an observation archive and exposes
the subset of observations that carry blackhole communities (used by
Figure 5(a) and by the Section 7.6 sweep).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bgp.community import BLACKHOLE, Community
from repro.collectors.observation import ObservationArchive, RouteObservation
from repro.datasets.giotsas import BlackholeCommunityList
from repro.utils.stats import fraction


def identify_blackhole_communities(
    archive: ObservationArchive,
    verified_list: BlackholeCommunityList | None = None,
) -> set[Community]:
    """Return the observed communities that are (or look like) blackhole requests."""
    verified = set(verified_list.communities()) if verified_list is not None else set()
    result: set[Community] = set()
    for community in archive.unique_communities():
        if community == BLACKHOLE or community.has_blackhole_value or community in verified:
            result.add(community)
    return result


def blackhole_observations(
    archive: ObservationArchive,
    verified_list: BlackholeCommunityList | None = None,
) -> ObservationArchive:
    """Return only the observations carrying at least one blackhole community."""
    blackholes = identify_blackhole_communities(archive, verified_list)

    def carries_blackhole(observation: RouteObservation) -> bool:
        return any(c in blackholes for c in observation.communities)

    return archive.filter(carries_blackhole)


@dataclass(frozen=True)
class BlackholePrefixStats:
    """Headline statistics about blackhole announcements in an archive."""

    observation_count: int
    prefix_count: int
    host_route_fraction: float
    distinct_communities: int


def blackhole_prefix_stats(
    archive: ObservationArchive,
    verified_list: BlackholeCommunityList | None = None,
) -> BlackholePrefixStats:
    """Summarise blackhole announcements: how many, how specific, how many communities."""
    tagged = blackhole_observations(archive, verified_list)
    prefixes = tagged.prefixes()
    host_routes = sum(1 for p in prefixes if p.is_ipv4 and p.length == 32)
    communities = identify_blackhole_communities(tagged, verified_list)
    return BlackholePrefixStats(
        observation_count=len(tagged),
        prefix_count=len(prefixes),
        host_route_fraction=fraction(host_routes, len(prefixes)),
        distinct_communities=len(communities),
    )
