"""Community propagation analyses: Table 2, Figure 5(a)–(c), §4.3 transit forwarders.

The central methodological choices follow the paper:

* communities are interpreted under the ``AS:value`` convention;
* a community is **on-path** if its ASN part appears on the (prepending-
  collapsed) AS path of the observation, otherwise **off-path**;
* the *conservative tagger attribution* assumes the on-path AS encoded
  in the community added it (not an earlier AS), which lower-bounds the
  propagation distance;
* private ASNs (RFC 6996) are reported separately because they are
  off-path by construction.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.bgp.community import Community, is_private_asn
from repro.collectors.observation import ObservationArchive, RouteObservation
from repro.utils.stats import Ecdf, Histogram, fraction


@dataclass(frozen=True)
class CommunityClassification:
    """One observed community instance classified against its observation."""

    community: Community
    observation: RouteObservation
    on_path: bool
    #: Hops travelled from the (conservatively attributed) tagger to the
    #: collector, including the edge to the collector.  None for off-path.
    hops_travelled: int | None
    #: Position of the tagger on the prepending-collapsed path (0 = collector peer).
    tagger_index: int | None


def classify_communities(
    archive: ObservationArchive, conservative: bool = True
) -> list[CommunityClassification]:
    """Classify every (community, observation) pair as on-/off-path with distances.

    With ``conservative=True`` (the paper's choice) the tagger is the
    path occurrence of the community's ASN *closest to the collector*,
    which minimises the inferred distance.  With ``conservative=False``
    the occurrence closest to the origin is used (optimistic
    attribution) — the ablation benchmark compares the two.
    """
    classifications: list[CommunityClassification] = []
    for observation in archive:
        path = list(observation.path_without_prepending)
        position_of: dict[int, int] = {}
        for index, asn in enumerate(path):
            if conservative:
                if asn not in position_of:
                    position_of[asn] = index
            else:
                position_of[asn] = index
        for community in observation.communities:
            index = position_of.get(community.asn)
            if index is None:
                classifications.append(
                    CommunityClassification(
                        community=community,
                        observation=observation,
                        on_path=False,
                        hops_travelled=None,
                        tagger_index=None,
                    )
                )
            else:
                # Hops from the tagger to the observation point, plus the edge
                # from the collector peer to the collector itself.
                classifications.append(
                    CommunityClassification(
                        community=community,
                        observation=observation,
                        on_path=True,
                        hops_travelled=index + 1,
                        tagger_index=index,
                    )
                )
    return classifications


# --------------------------------------------------------------------- Table 2
@dataclass(frozen=True)
class ObservedAsSummary:
    """One row of Table 2: ASes appearing as community ASN parts."""

    platform: str
    total: int
    without_collector_peer: int
    on_path: int
    off_path: int
    off_path_without_private: int


def _summary_for(name: str, archive: ObservationArchive) -> ObservedAsSummary:
    peer_asns = archive.peer_asns()
    all_asns: set[int] = set()
    on_path_asns: set[int] = set()
    off_path_asns: set[int] = set()
    for observation in archive:
        # Same membership as the collapsed path: collapsing only drops
        # consecutive duplicates, so the cached ASN set is equivalent.
        path = observation.path_asns
        for community in observation.communities:
            asn = community.asn
            all_asns.add(asn)
            if asn in path:
                on_path_asns.add(asn)
            else:
                off_path_asns.add(asn)
    off_path_only = off_path_asns - on_path_asns
    return ObservedAsSummary(
        platform=name,
        total=len(all_asns),
        without_collector_peer=len(all_asns - peer_asns),
        on_path=len(on_path_asns),
        off_path=len(off_path_only),
        off_path_without_private=len({a for a in off_path_only if not is_private_asn(a)}),
    )


def observed_as_summary(archive: ObservationArchive) -> list[ObservedAsSummary]:
    """Compute Table 2: one row per platform plus a Total row."""
    rows = [
        _summary_for(platform, archive.by_platform(platform))
        for platform in archive.platforms()
    ]
    rows.append(_summary_for("Total", archive))
    return rows


# ------------------------------------------------------------------ Figure 5(a)
@dataclass(frozen=True)
class PropagationDistances:
    """Figure 5(a): hop-distance ECDFs of all communities vs blackholing communities."""

    all_communities: Ecdf
    blackhole_communities: Ecdf

    def median_all(self) -> float:
        """Median hop distance over all communities."""
        return self.all_communities.quantile(0.5)

    def median_blackhole(self) -> float:
        """Median hop distance of blackhole communities."""
        return self.blackhole_communities.quantile(0.5)


def propagation_distance_ecdf(
    archive: ObservationArchive,
    blackhole_communities: set[Community] | None = None,
    conservative: bool = True,
) -> PropagationDistances:
    """Compute Figure 5(a).

    The distance of a community is the *maximum* hop count over all
    observations of that community (how far it is seen to propagate).
    A community counts as a blackholing community if its value part is
    666 (RFC 7999 convention) or if it is in the supplied verified list.
    """
    blackhole_communities = blackhole_communities or set()
    per_community: dict[Community, int] = {}
    for item in classify_communities(archive, conservative=conservative):
        if not item.on_path or item.hops_travelled is None:
            continue
        existing = per_community.get(item.community, 0)
        per_community[item.community] = max(existing, item.hops_travelled)
    all_distances = list(per_community.values())
    blackhole_distances = [
        distance
        for community, distance in per_community.items()
        if community.has_blackhole_value or community in blackhole_communities
    ]
    return PropagationDistances(
        all_communities=Ecdf(all_distances),
        blackhole_communities=Ecdf(blackhole_distances),
    )


# ------------------------------------------------------------------ Figure 5(b)
def relative_distance_by_path_length(
    archive: ObservationArchive,
    min_path_length: int = 3,
    max_path_length: int = 10,
) -> dict[int, Ecdf]:
    """Compute Figure 5(b): relative propagation distance grouped by AS-path length.

    Communities whose ASN equals the collector peer (the monitor's
    neighbor) are excluded, but the edge to the monitor is included in
    the distance — both choices taken from the paper.
    """
    per_length: dict[int, list[float]] = defaultdict(list)
    for item in classify_communities(archive):
        if not item.on_path or item.hops_travelled is None or item.tagger_index is None:
            continue
        path = item.observation.path_without_prepending
        path_length = len(path)
        if not min_path_length <= path_length <= max_path_length:
            continue
        if item.tagger_index == 0:
            # Community of the monitor's direct peer: excluded.
            continue
        relative = item.hops_travelled / path_length
        per_length[path_length].append(min(1.0, relative))
    return {length: Ecdf(values) for length, values in sorted(per_length.items())}


# ------------------------------------------------------------------ Figure 5(c)
@dataclass(frozen=True)
class TopValues:
    """Figure 5(c): the most popular community *values*, split on-/off-path."""

    on_path: list[tuple[int, float]]
    off_path: list[tuple[int, float]]

    def on_path_values(self) -> list[int]:
        """Just the on-path value ranking."""
        return [value for value, _share in self.on_path]

    def off_path_values(self) -> list[int]:
        """Just the off-path value ranking."""
        return [value for value, _share in self.off_path]


def top_values(archive: ObservationArchive, n: int = 10) -> TopValues:
    """Compute the top-``n`` community values for on-path and off-path communities."""
    on_path_histogram = Histogram()
    off_path_histogram = Histogram()
    for item in classify_communities(archive):
        target = on_path_histogram if item.on_path else off_path_histogram
        target.add(item.community.value)

    def ranked(histogram: Histogram) -> list[tuple[int, float]]:
        total = histogram.total()
        return [(value, fraction(count, total)) for value, count in histogram.top(n)]

    return TopValues(on_path=ranked(on_path_histogram), off_path=ranked(off_path_histogram))


# --------------------------------------------------------------- §4.3 forwarders
@dataclass(frozen=True)
class TransitForwarderSummary:
    """§4.3: how many transit ASes relay communities of other ASes."""

    transit_forwarders: set[int]
    transit_ases: set[int]

    @property
    def forwarder_count(self) -> int:
        """Number of transit ASes seen forwarding foreign communities."""
        return len(self.transit_forwarders)

    @property
    def transit_count(self) -> int:
        """Number of transit ASes observed at all."""
        return len(self.transit_ases)

    @property
    def forwarder_fraction(self) -> float:
        """The paper's ~14 % headline number."""
        return fraction(self.forwarder_count, self.transit_count)


def transit_forwarders(archive: ObservationArchive) -> TransitForwarderSummary:
    """Find transit ASes that relay at least one community of another AS.

    Following the paper: an AS is a transit AS if it appears on some path
    as neither the origin nor the collector peer; collector-peer edges
    are excluded from the forwarding evidence; and AS2 counts as a
    forwarder if an update with path ``... AS3 AS2 AS1 ...`` carries a
    community ``AS1:X`` tagged by an AS strictly closer to the origin
    than AS2.
    """
    transit_ases: set[int] = set()
    forwarders: set[int] = set()
    for observation in archive:
        path = list(observation.path_without_prepending)
        if len(path) < 2:
            continue
        # Transit role: on the path, neither origin nor the collector peer.
        for asn in path[1:-1]:
            transit_ases.add(asn)
        position_of: dict[int, int] = {}
        for index, asn in enumerate(path):
            if asn not in position_of:
                position_of[asn] = index
        for community in observation.communities:
            tagger_index = position_of.get(community.asn)
            if tagger_index is None:
                continue
            # Every AS strictly between the tagger and the collector peer
            # relayed a foreign community; the peer itself is excluded
            # because its session with the collector may be special.
            for index in range(1, tagger_index):
                forwarders.add(path[index])
    return TransitForwarderSummary(
        transit_forwarders=forwarders & transit_ases, transit_ases=transit_ases
    )
