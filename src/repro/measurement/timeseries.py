"""Longitudinal analysis: the Figure 3 growth table."""

from __future__ import annotations

from repro.collectors.observation import ObservationArchive
from repro.datasets.timeseries import GrowthModel, YearlySnapshot, historical_series
from repro.measurement.usage import community_service_as_count, unique_community_count


def snapshot_from_archive(archive: ObservationArchive, year: int = 2018) -> YearlySnapshot:
    """Summarise an archive into the four Figure 3 quantities for one year."""
    absolute = sum(len(o.communities) for o in archive)
    return YearlySnapshot(
        year=year,
        unique_ases_in_communities=community_service_as_count(archive),
        unique_communities=unique_community_count(archive),
        absolute_communities=absolute,
        bgp_table_entries=len(archive.prefixes()),
    )


def growth_table(
    archive: ObservationArchive | None = None,
    model: GrowthModel | None = None,
    final_year: int = 2018,
) -> list[YearlySnapshot]:
    """Compute the Figure 3 series.

    When an archive is given, its 2018 snapshot anchors the curve (so
    the figure is reproduced over the synthetic Internet); otherwise the
    paper's own 2018 numbers are used.
    """
    model = model or GrowthModel(final_year=final_year)
    if archive is None:
        return historical_series(model=model)
    return model.series(snapshot_from_archive(archive, year=final_year))
