"""Report builder: render every reproduced table and figure as text tables.

The benchmark harness and the CLI both go through this module so the
rows printed next to the paper's tables always come from the same code
path as the unit-tested analysis functions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.collectors.observation import ObservationArchive
from repro.datasets.giotsas import BlackholeCommunityList
from repro.measurement.blackhole import identify_blackhole_communities
from repro.measurement.filtering import infer_filtering
from repro.measurement.propagation import (
    observed_as_summary,
    propagation_distance_ecdf,
    relative_distance_by_path_length,
    top_values,
    transit_forwarders,
)
from repro.measurement.timeseries import growth_table
from repro.measurement.usage import (
    communities_per_update_ecdf,
    dataset_overview,
    overall_update_community_fraction,
    updates_with_communities_by_collector,
)
from repro.topology.topology import Topology
from repro.utils.tables import Table


@dataclass
class MeasurementReport:
    """Computes and renders the full Section 4 report for one archive."""

    archive: ObservationArchive
    topology: Topology | None = None
    blackhole_list: BlackholeCommunityList | None = None
    rendered_tables: dict[str, str] = field(default_factory=dict)

    # ----------------------------------------------------------------- tables
    def table1(self) -> Table:
        """Table 1: dataset overview per platform."""
        table = Table(
            [
                "Source",
                "Messages",
                "IPv4 pfx",
                "IPv6 pfx",
                "Collectors",
                "AS peers",
                "Communities",
                "ASes",
                "Origin",
                "Transit",
                "Stub",
            ],
            title="Table 1: BGP dataset overview",
        )
        for row in dataset_overview(self.archive, self.topology):
            table.add_row(
                [
                    row.platform,
                    row.messages,
                    row.ipv4_prefixes,
                    row.ipv6_prefixes,
                    row.collectors,
                    row.peer_ases,
                    row.communities,
                    row.ases_observed,
                    row.origin_ases,
                    row.transit_ases,
                    row.stub_ases,
                ]
            )
        self.rendered_tables["table1"] = table.render()
        return table

    def table2(self) -> Table:
        """Table 2: ASes with observed communities."""
        table = Table(
            ["Source", "Total", "w/o collector peer", "on-path", "off-path", "off-path w/o private"],
            title="Table 2: ASes with observed BGP communities",
        )
        for row in observed_as_summary(self.archive):
            table.add_row(
                [
                    row.platform,
                    row.total,
                    row.without_collector_peer,
                    row.on_path,
                    row.off_path,
                    row.off_path_without_private,
                ]
            )
        self.rendered_tables["table2"] = table.render()
        return table

    # ---------------------------------------------------------------- figures
    def figure3(self) -> Table:
        """Figure 3: community use over time."""
        table = Table(
            ["Year", "ASes in communities", "Unique communities", "Absolute communities", "Table entries"],
            title="Figure 3: BGP communities use over time",
        )
        for snapshot in growth_table(self.archive):
            table.add_row(
                [
                    str(snapshot.year),
                    snapshot.unique_ases_in_communities,
                    snapshot.unique_communities,
                    snapshot.absolute_communities,
                    snapshot.bgp_table_entries,
                ]
            )
        self.rendered_tables["figure3"] = table.render()
        return table

    def figure4a(self) -> Table:
        """Figure 4(a): fraction of updates with communities per collector."""
        table = Table(
            ["Platform", "Collector", "% updates with communities"],
            title="Figure 4(a): updates with communities by collector",
        )
        per_platform = updates_with_communities_by_collector(self.archive)
        for platform in sorted(per_platform):
            for collector in sorted(per_platform[platform]):
                table.add_row(
                    [platform, collector, round(100 * per_platform[platform][collector], 1)]
                )
        table.add_row(
            ["ALL", "overall", round(100 * overall_update_community_fraction(self.archive), 1)]
        )
        self.rendered_tables["figure4a"] = table.render()
        return table

    def figure4b(self) -> Table:
        """Figure 4(b): communities and associated ASes per update."""
        distributions = communities_per_update_ecdf(self.archive)
        table = Table(
            ["Quantity", "Value"],
            title="Figure 4(b): communities per BGP update",
        )
        table.add_row(["fraction of updates with >2 communities", round(distributions.fraction_with_more_than(2), 3)])
        table.add_row(["fraction of updates with >50 communities", round(distributions.fraction_with_more_than(50), 5)])
        table.add_row(["fraction with communities of >1 AS", round(distributions.fraction_with_multiple_asns(), 3)])
        self.rendered_tables["figure4b"] = table.render()
        return table

    def figure5a(self) -> Table:
        """Figure 5(a): propagation distance of all vs blackhole communities."""
        verified = (
            set(self.blackhole_list.communities()) if self.blackhole_list is not None else None
        )
        distances = propagation_distance_ecdf(self.archive, verified)
        table = Table(
            ["Hop count", "fraction (all)", "fraction (blackhole)"],
            title="Figure 5(a): community propagation distance ECDF",
        )
        for hops in range(0, 12):
            table.add_row(
                [
                    hops,
                    round(distances.all_communities.at(hops), 3),
                    round(distances.blackhole_communities.at(hops), 3),
                ]
            )
        self.rendered_tables["figure5a"] = table.render()
        return table

    def figure5b(self) -> Table:
        """Figure 5(b): relative propagation distance by AS-path length."""
        per_length = relative_distance_by_path_length(self.archive)
        table = Table(
            ["AS path length", "samples", "median relative distance", "fraction > 0.5"],
            title="Figure 5(b): relative propagation distance by path length",
        )
        for length, ecdf in per_length.items():
            table.add_row(
                [
                    length,
                    len(ecdf),
                    round(ecdf.quantile(0.5), 3) if len(ecdf) else 0.0,
                    round(ecdf.survival(0.5), 3) if len(ecdf) else 0.0,
                ]
            )
        self.rendered_tables["figure5b"] = table.render()
        return table

    def figure5c(self) -> Table:
        """Figure 5(c): top-10 community values, on- vs off-path."""
        ranking = top_values(self.archive, n=10)
        table = Table(
            ["Rank", "off-path value", "off-path share", "on-path value", "on-path share"],
            title="Figure 5(c): top-10 community values",
        )
        for rank in range(10):
            off = ranking.off_path[rank] if rank < len(ranking.off_path) else ("-", 0.0)
            on = ranking.on_path[rank] if rank < len(ranking.on_path) else ("-", 0.0)
            table.add_row([rank + 1, off[0], round(100 * off[1], 2), on[0], round(100 * on[1], 2)])
        self.rendered_tables["figure5c"] = table.render()
        return table

    def figure6(self) -> Table:
        """Figure 6: filtering vs forwarding indications."""
        inference = infer_filtering(self.archive)
        table = Table(
            ["Quantity", "Value"],
            title="Figure 6: community forwarding behaviour",
        )
        table.add_row(["AS edges observed", inference.total_edges_observed])
        table.add_row(["forwarding fraction (all edges)", round(inference.forwarding_fraction(), 3)])
        table.add_row(["filtering fraction (all edges)", round(inference.filtering_fraction(), 3)])
        table.add_row(
            ["forwarding fraction (edges with >=100 paths)", round(inference.forwarding_fraction(100), 3)]
        )
        table.add_row(
            ["filtering fraction (edges with >=100 paths)", round(inference.filtering_fraction(100), 3)]
        )
        table.add_row(["scatter points (>=100 paths)", len(inference.scatter_points())])
        self.rendered_tables["figure6"] = table.render()
        return table

    def section43_transit_forwarders(self) -> Table:
        """§4.3: transit ASes that relay foreign communities."""
        summary = transit_forwarders(self.archive)
        table = Table(["Quantity", "Value"], title="Section 4.3: transit community forwarders")
        table.add_row(["transit ASes observed", summary.transit_count])
        table.add_row(["transit ASes forwarding foreign communities", summary.forwarder_count])
        table.add_row(["fraction", round(summary.forwarder_fraction, 3)])
        self.rendered_tables["section43"] = table.render()
        return table

    def blackhole_summary(self) -> Table:
        """Blackhole community inventory used by Figure 5(a) and Section 7.6."""
        communities = identify_blackhole_communities(self.archive, self.blackhole_list)
        table = Table(["Quantity", "Value"], title="Blackhole communities observed")
        table.add_row(["distinct blackhole communities", len(communities)])
        if self.blackhole_list is not None:
            table.add_row(["verified list size", len(self.blackhole_list.verified())])
            table.add_row(["inferred list size", len(self.blackhole_list.inferred())])
        self.rendered_tables["blackhole"] = table.render()
        return table

    # ------------------------------------------------------------------- full
    def full_report(self) -> str:
        """Render every table and figure and return the combined text."""
        sections = [
            self.table1(),
            self.table2(),
            self.figure3(),
            self.figure4a(),
            self.figure4b(),
            self.figure5a(),
            self.figure5b(),
            self.figure5c(),
            self.figure6(),
            self.section43_transit_forwarders(),
            self.blackhole_summary(),
        ]
        return "\n\n".join(table.render() for table in sections)
