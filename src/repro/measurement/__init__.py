"""The measurement pipeline: the paper's Section 4 analyses over route observations."""

from repro.measurement.usage import (
    PlatformOverview,
    dataset_overview,
    updates_with_communities_by_collector,
    communities_per_update_ecdf,
    unique_community_count,
)
from repro.measurement.propagation import (
    CommunityClassification,
    classify_communities,
    observed_as_summary,
    propagation_distance_ecdf,
    relative_distance_by_path_length,
    top_values,
    transit_forwarders,
)
from repro.measurement.filtering import (
    EdgeIndications,
    FilteringInference,
    infer_filtering,
)
from repro.measurement.blackhole import (
    identify_blackhole_communities,
    blackhole_observations,
)
from repro.measurement.timeseries import growth_table
from repro.measurement.report import MeasurementReport

__all__ = [
    "PlatformOverview",
    "dataset_overview",
    "updates_with_communities_by_collector",
    "communities_per_update_ecdf",
    "unique_community_count",
    "CommunityClassification",
    "classify_communities",
    "observed_as_summary",
    "propagation_distance_ecdf",
    "relative_distance_by_path_length",
    "top_values",
    "transit_forwarders",
    "EdgeIndications",
    "FilteringInference",
    "infer_filtering",
    "identify_blackhole_communities",
    "blackhole_observations",
    "growth_table",
    "MeasurementReport",
]
