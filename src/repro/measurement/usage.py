"""Community usage statistics: Table 1, Figure 4(a), Figure 4(b).

All functions operate on an :class:`~repro.collectors.observation.ObservationArchive`
(optionally together with the topology it was observed over) and return
plain data structures the report builder and the benchmarks render.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.collectors.observation import ObservationArchive
from repro.topology.asys import AsRole
from repro.topology.graph import classify_roles
from repro.topology.topology import Topology
from repro.utils.stats import Ecdf, fraction


@dataclass(frozen=True)
class PlatformOverview:
    """One row of Table 1."""

    platform: str
    messages: int
    ipv4_prefixes: int
    ipv6_prefixes: int
    collectors: int
    peer_ases: int
    communities: int
    ases_observed: int
    origin_ases: int
    transit_ases: int
    stub_ases: int


def _roles_for(topology: Topology | None) -> dict[int, AsRole]:
    if topology is None:
        return {}
    return classify_roles(topology)


def _overview_for(
    name: str, archive: ObservationArchive, roles: dict[int, AsRole]
) -> PlatformOverview:
    prefixes = archive.prefixes()
    ipv4 = sum(1 for p in prefixes if p.is_ipv4)
    ipv6 = len(prefixes) - ipv4
    path_asns: set[int] = set()
    origin_asns: set[int] = set()
    for observation in archive:
        path = observation.path_without_prepending
        path_asns.update(path)
        if path:
            origin_asns.add(path[-1])
    transit_asns = {
        asn for asn in path_asns if roles.get(asn) in (AsRole.TRANSIT, AsRole.TIER1)
    }
    if not roles:
        # Without a topology, infer transit ASes structurally: an AS that
        # appears on a path as neither origin nor collector peer.
        transit_asns = set()
        for observation in archive:
            path = observation.path_without_prepending
            for asn in path[1:-1]:
                transit_asns.add(asn)
    stub_asns = path_asns - transit_asns
    return PlatformOverview(
        platform=name,
        messages=len(archive),
        ipv4_prefixes=ipv4,
        ipv6_prefixes=ipv6,
        collectors=len(archive.collectors()),
        peer_ases=len(archive.peer_asns()),
        communities=len(archive.unique_communities()),
        ases_observed=len(path_asns),
        origin_ases=len(origin_asns),
        transit_ases=len(transit_asns),
        stub_ases=len(stub_asns),
    )


def dataset_overview(
    archive: ObservationArchive, topology: Topology | None = None
) -> list[PlatformOverview]:
    """Compute Table 1: one row per platform plus a Total row."""
    roles = _roles_for(topology)
    rows = [
        _overview_for(platform, archive.by_platform(platform), roles)
        for platform in archive.platforms()
    ]
    rows.append(_overview_for("Total", archive, roles))
    return rows


def updates_with_communities_by_collector(
    archive: ObservationArchive,
) -> dict[str, dict[str, float]]:
    """Compute Figure 4(a): per platform, per collector, the fraction of updates
    carrying at least one community."""
    totals: dict[tuple[str, str], int] = defaultdict(int)
    tagged: dict[tuple[str, str], int] = defaultdict(int)
    for observation in archive:
        key = (observation.platform, observation.collector_id)
        totals[key] += 1
        if observation.has_communities:
            tagged[key] += 1
    result: dict[str, dict[str, float]] = defaultdict(dict)
    for (platform, collector), total in totals.items():
        result[platform][collector] = fraction(tagged[(platform, collector)], total)
    return dict(result)


def overall_update_community_fraction(archive: ObservationArchive) -> float:
    """Return the overall fraction of updates with at least one community (>75 % in the paper)."""
    total = len(archive)
    tagged = sum(1 for o in archive if o.has_communities)
    return fraction(tagged, total)


@dataclass(frozen=True)
class PerUpdateDistributions:
    """Figure 4(b): distributions of communities and associated ASes per update."""

    communities_per_update: Ecdf
    asns_per_update: Ecdf

    def fraction_with_more_than(self, communities: int) -> float:
        """Fraction of updates carrying more than ``communities`` communities."""
        return self.communities_per_update.survival(communities)

    def fraction_with_multiple_asns(self) -> float:
        """Fraction of updates whose communities reference more than one AS."""
        return self.asns_per_update.survival(1)


def communities_per_update_ecdf(archive: ObservationArchive) -> PerUpdateDistributions:
    """Compute Figure 4(b) over every observation in the archive."""
    community_counts = []
    asn_counts = []
    for observation in archive:
        community_counts.append(len(observation.communities))
        asn_counts.append(len(observation.community_asns()))
    return PerUpdateDistributions(
        communities_per_update=Ecdf(community_counts),
        asns_per_update=Ecdf(asn_counts),
    )


def unique_community_count(archive: ObservationArchive) -> int:
    """Return the number of distinct communities observed (63K in the paper)."""
    return len(archive.unique_communities())


def community_service_as_count(archive: ObservationArchive) -> int:
    """Return the number of ASes that appear as the ASN part of some community.

    This is the paper's "more than 5K ASes offer community-based
    services" statistic (computed under the ``AS:value`` convention).
    """
    return len(archive.observed_community_asns())
