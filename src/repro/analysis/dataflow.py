"""Def-use / CFG dataflow rules for the resident-shard sync protocol (RPR03x).

The PR 6 resident shard service rests on a *convention-based* contract
between the parent simulator and its worker processes:

* every parent-side mutation of per-prefix holder state (Loc-RIB,
  Adj-RIB-In, originations of a simulator-owned router) must flow into
  a ``_last_touched`` / ``_pending_sync`` record, or workers silently
  converge on stale state;
* every mutable router-configuration surface must be fingerprinted by
  :func:`repro.routing.shard.capture_router_config`, or epoch
  invalidation misses the edit;
* no module-level mutable may be aliased by both the post-fork parent
  and the worker processes, or the two sides diverge invisibly.

This module enforces all three **at lint time**, as a dataflow layer on
top of :mod:`repro.analysis.callgraph`'s name resolution:

* :class:`ControlFlowGraph` — a statement-level intra-function CFG
  (if/loop/try/match edges, return/raise/break/continue).  Loops are
  modelled as executing their body at least once: the rules answer
  "does a *record-free* path exist", and crediting a zero-iteration
  bypass would flag every seed loop whose recording happens per
  iteration.  The under-approximation is deliberate and documented.
* per-function **def-use aliasing** — names bound from
  ``sim.routers[asn]`` / ``sim.router(asn)`` expressions become router
  handles, names bound from their ``adj_rib_in`` / ``loc_rib`` /
  ``originated`` attributes become holder-state handles, and names
  bound from ``._last_touched`` / ``._pending_sync`` expressions
  (``touched = self._last_touched.setdefault(p, set())``) become record
  handles.
* an interprocedural **always-records fixpoint** — a function that
  records on its own, or that calls one that does, counts as a record
  site at its call statements (``_apply_local`` mutates router state
  directly but records only through its ``_drive_prefix`` calls).

Rules:

* **RPR030** (unrecorded resident-state mutation): a function that
  mutates holder state through a simulator's routers must have a record
  site on every CFG path around each mutation.  The protocol primitives
  that *implement* state movement (:data:`RECORD_EXEMPT_FUNCTIONS`) are
  sanctioned.
* **RPR031** (epoch-coherence): any router attribute mutated outside
  the router's own per-prefix protocol state must be one of the fields
  :func:`capture_router_config` fingerprints — adding a policy knob
  without fingerprinting it fails CI.
* **RPR032** (fork-safety): module-level mutable state written on one
  side of the fork (worker entry points vs. parent dispatch paths) and
  accessed on the other is aliased across the process boundary —
  generalizing RPR011 from "workers write globals" to "parent and
  worker share a mutable".

Test modules (``test_*`` / ``conftest``) are exempt from RPR030/031:
tests poke protocol internals deliberately, and their enforcement is
the byte-identical sequential-vs-resident equivalence suites.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.callgraph import (
    MUTATOR_METHODS,
    WORKER_ENTRY_POINTS,
    CallGraph,
    FunctionNode,
    _local_bindings,
    _module_state_writes,
)
from repro.analysis.model import ModuleInfo, Violation
from repro.analysis.rules import Rule

#: The parent-side record containers of the residency protocol.
RECORD_ATTRS = frozenset({"_last_touched", "_pending_sync"})

#: Router attributes holding per-prefix control-plane state.
HOLDER_STATE_ATTRS = frozenset({"adj_rib_in", "loc_rib", "originated"})

#: Router methods that mutate per-prefix holder state when called.
ROUTER_STATE_MUTATORS = frozenset(
    {
        "originate",
        "withdraw_origination",
        "import_announcement",
        "process_announcement",
        "remove_announcement",
        "process_withdrawal",
        "refresh_best",
        "refresh_all",
    }
)

#: Methods that mutate a RIB / Loc-RIB / origination container in place.
RIB_MUTATORS = MUTATOR_METHODS | frozenset({"withdraw", "set_best", "set_candidates", "remove"})

#: Functions sanctioned to mutate holder state without recording: the
#: protocol primitives themselves.  ``install_prefix_state`` /
#: ``clear_prefix_state`` *are* the state channel (install replays what
#: was already recorded and shipped; clear is the epoch reset), and
#: ``_sync_worker`` runs worker-side where the parent's records do not
#: exist.
RECORD_EXEMPT_FUNCTIONS = frozenset(
    {"install_prefix_state", "clear_prefix_state", "_sync_worker"}
)

#: Router attributes that are *state*, not configuration: shipped through
#: the per-prefix state channel (``capture_prefix_state``) or with every
#: task, so ``capture_router_config`` deliberately does not fingerprint
#: them.  ``neighbor_relationships`` / ``_neighbor_order`` move with
#: session registration, which is epoch-neutral by design: collector
#: sessions never influence propagation, and harvest workers register
#: them per task (see ``_harvest_sharded``).
CONFIG_EXEMPT_ATTRS = frozenset(
    {
        "adj_rib_in",
        "loc_rib",
        "originated",
        "_neighbor_order",
        "neighbor_relationships",
        "export_community_additions",
    }
)

#: Parent-side dispatch roots: everything that runs in the parent
#: process after the pool forked.  Matched like worker entry points —
#: by dotted name, falling back to bare function name so fixture tests
#: can define their own ``apply``.
PARENT_ENTRY_POINTS: tuple[str, ...] = (
    "repro.routing.engine.BgpSimulator.apply",
    "repro.routing.stream.SimulatorService.feed",
    "repro.routing.stream.SimulatorService.drain",
    "repro.collectors.harvest.harvest_archive",
)


def _is_test_module(module: ModuleInfo) -> bool:
    """Whether ``module`` is test code (exempt from the protocol rules)."""
    leaf = module.module.rsplit(".", 1)[-1]
    return leaf.startswith("test_") or leaf == "conftest"


# ----------------------------------------------------------------- CFG builder
class _Loop:
    """Book-keeping for one enclosing loop during CFG construction."""

    __slots__ = ("header", "breaks")

    def __init__(self, header: ast.AST):
        self.header = header
        self.breaks: list[ast.AST] = []


class ControlFlowGraph:
    """Statement-level control-flow graph of one function body.

    Nodes are the function's statements (at every nesting level) plus
    the synthetic :attr:`entry` / :attr:`exit`.  ``try`` blocks are
    approximated conservatively (handlers may run after any part of the
    body) and loops are modelled as executing at least once — see the
    module docstring for why that direction is the safe one for the
    record-free-path query.
    """

    def __init__(self, function: "ast.FunctionDef | ast.AsyncFunctionDef"):
        self.entry: object = ("<entry>",)
        self.exit: object = ("<exit>",)
        self.statements: list[ast.AST] = []
        self._succ: "dict[object, list[object]]" = {self.entry: [], self.exit: []}
        frontier = self._sequence(function.body, (self.entry,), [])
        for node in frontier:
            self._edge(node, self.exit)

    def _edge(self, source: object, target: object) -> None:
        self._succ.setdefault(source, []).append(target)
        self._succ.setdefault(target, [])

    def _sequence(
        self, body: list[ast.stmt], frontier: tuple, loops: list[_Loop]
    ) -> tuple:
        for statement in body:
            if not frontier:
                break  # unreachable after return/raise/break/continue
            frontier = self._statement(statement, frontier, loops)
        return frontier

    def _statement(self, stmt: ast.stmt, frontier: tuple, loops: list[_Loop]) -> tuple:
        self.statements.append(stmt)
        for source in frontier:
            self._edge(source, stmt)
        if isinstance(stmt, (ast.Return, ast.Raise)):
            self._edge(stmt, self.exit)
            return ()
        if isinstance(stmt, ast.Break):
            if loops:
                loops[-1].breaks.append(stmt)
            else:
                self._edge(stmt, self.exit)
            return ()
        if isinstance(stmt, ast.Continue):
            if loops:
                self._edge(stmt, loops[-1].header)
            return ()
        if isinstance(stmt, ast.If):
            then_out = self._sequence(stmt.body, (stmt,), loops)
            else_out = (
                self._sequence(stmt.orelse, (stmt,), loops) if stmt.orelse else (stmt,)
            )
            return tuple(then_out) + tuple(else_out)
        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            loop = _Loop(stmt)
            loops.append(loop)
            body_out = self._sequence(stmt.body, (stmt,), loops)
            loops.pop()
            for node in body_out:
                self._edge(node, stmt)  # back edge
            after = self._sequence(stmt.orelse, body_out, loops) if stmt.orelse else body_out
            exits = tuple(after) + tuple(loop.breaks)
            return exits if exits else (stmt,)
        if isinstance(stmt, ast.Try) or (
            hasattr(ast, "TryStar") and isinstance(stmt, getattr(ast, "TryStar"))
        ):
            # Treat the else block as the body's continuation; handlers
            # may run after any prefix of the body, so they start from
            # the try statement itself.
            body_out = self._sequence([*stmt.body, *stmt.orelse], (stmt,), loops)
            outs = list(body_out)
            for handler in stmt.handlers:
                outs.extend(self._sequence(handler.body, (stmt,), loops))
            if stmt.finalbody:
                outs = list(self._sequence(stmt.finalbody, tuple(outs) or (stmt,), loops))
            return tuple(outs) if outs else (stmt,)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            out = self._sequence(stmt.body, (stmt,), loops)
            return out if out else (stmt,)
        if isinstance(stmt, ast.Match):
            outs: list[object] = [stmt]  # no case may match
            for case in stmt.cases:
                outs.extend(self._sequence(case.body, (stmt,), loops))
            return tuple(outs)
        return (stmt,)

    def path_avoiding(self, source: object, target: object, blocked: set) -> bool:
        """Whether ``target`` is reachable from ``source`` avoiding ``blocked``.

        ``blocked`` nodes are skipped unless the node *is* the target
        (the caller decides whether the endpoints themselves block).
        """
        stack = [source]
        seen = {id(source)}
        while stack:
            node = stack.pop()
            if node is target:
                return True
            for successor in self._succ.get(node, ()):
                if id(successor) in seen:
                    continue
                if successor is not target and id(successor) in blocked:
                    continue
                seen.add(id(successor))
                stack.append(successor)
        return False


def _executed_parts(stmt: ast.AST) -> list[ast.AST]:
    """The sub-expressions evaluated *at* this statement (not its body).

    Compound statements contribute only their header expressions —
    their nested statements are CFG nodes of their own — and ``def`` /
    ``class`` statements contribute nothing (their bodies run later, if
    ever).
    """
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return []
    if isinstance(stmt, ast.If):
        return [stmt.test]
    if isinstance(stmt, ast.While):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.target, stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return list(stmt.items)
    if isinstance(stmt, ast.Try) or (
        hasattr(ast, "TryStar") and isinstance(stmt, getattr(ast, "TryStar"))
    ):
        return []
    if isinstance(stmt, ast.Match):
        return [stmt.subject]
    return [stmt]


def _walk_executed(node: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that never descends into nested function/class bodies."""
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        for child in ast.iter_child_nodes(current):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
                continue
            stack.append(child)


def _chain_attrs(expr: ast.AST) -> tuple[set[str], "str | None"]:
    """Attribute names along an access chain, plus the root ``Name`` id.

    ``sim.routers[asn].loc_rib.set_best(...)``'s receiver chain yields
    ``({"routers", "loc_rib"}, "sim")`` — subscripts and calls are
    transparent (``X.routers.get(asn)`` keeps ``routers`` visible).
    """
    attrs: set[str] = set()
    current = expr
    while True:
        if isinstance(current, ast.Attribute):
            attrs.add(current.attr)
            current = current.value
        elif isinstance(current, ast.Subscript):
            current = current.value
        elif isinstance(current, ast.Call):
            current = current.func
        else:
            break
    return attrs, current.id if isinstance(current, ast.Name) else None


# --------------------------------------------------------------- alias tracking
class FunctionAliases:
    """Flow-insensitive def-use sets for one function body.

    Two passes over the assignments catch chained binds
    (``routers = sim.routers`` then ``router = routers[asn]``), matching
    the engine's own idiom depth; deeper chains would need a real
    fixpoint and have no precedent in the codebase.
    """

    def __init__(self, function: "ast.FunctionDef | ast.AsyncFunctionDef"):
        self.router_maps: set[str] = set()  # names bound to <sim>.routers
        self.routers: set[str] = set()  # names bound to one router
        self.holder_state: set[str] = set()  # names bound to a router's RIB state
        self.records: set[str] = set()  # names bound to a record container
        for _ in range(2):
            for node in _walk_executed(function):
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            self._classify(target.id, node.value)
                elif isinstance(node, (ast.For, ast.AsyncFor)):
                    self._classify_loop_target(node.target, node.iter)

    def _classify(self, name: str, value: ast.AST) -> None:
        attrs, root = _chain_attrs(value)
        if isinstance(value, ast.Attribute) and value.attr == "routers":
            self.router_maps.add(name)
            return
        if attrs & RECORD_ATTRS or root in self.records:
            self.records.add(name)
            return
        rooted = self.is_router_rooted(value)
        if rooted and (attrs & HOLDER_STATE_ATTRS or "_rib_in" in attrs):
            self.holder_state.add(name)
        elif rooted or root in self.router_maps:
            self.routers.add(name)

    def _classify_loop_target(self, target: ast.AST, iterable: ast.AST) -> None:
        attrs, root = _chain_attrs(iterable)
        if "routers" not in attrs and root not in self.router_maps:
            if attrs & RECORD_ATTRS or root in self.records:
                for leaf in ast.walk(target):
                    if isinstance(leaf, ast.Name):
                        self.records.add(leaf.id)
            return
        # ``for asn, router in sim.routers.items()`` — over-approximate:
        # every bound name becomes a router handle (the non-router ones
        # never receive RIB mutations, so the imprecision is harmless).
        for leaf in ast.walk(target):
            if isinstance(leaf, ast.Name):
                self.routers.add(leaf.id)

    def is_router_rooted(self, expr: ast.AST) -> bool:
        """Whether ``expr`` reaches a simulator-owned router (def-use aware)."""
        attrs, root = _chain_attrs(expr)
        if attrs & {"router", "routers"}:
            return True
        return root in self.routers or root in self.router_maps or root in self.holder_state

    def is_record_expr(self, expr: ast.AST) -> bool:
        """Whether ``expr`` reaches a ``_last_touched``/``_pending_sync``."""
        attrs, root = _chain_attrs(expr)
        return bool(attrs & RECORD_ATTRS) or root in self.records


def _holder_mutations(
    function: "ast.FunctionDef | ast.AsyncFunctionDef", aliases: FunctionAliases
) -> Iterator[tuple[ast.AST, str]]:
    """Yield ``(site, description)`` for holder-state mutations in ``function``."""
    for node in _walk_executed(function):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            method = node.func.attr
            receiver = node.func.value
            if method in ROUTER_STATE_MUTATORS and aliases.is_router_rooted(receiver):
                yield node, f"router mutator '.{method}()'"
            elif method in RIB_MUTATORS:
                attrs, root = _chain_attrs(receiver)
                if root in aliases.holder_state or (
                    attrs & HOLDER_STATE_ATTRS and aliases.is_router_rooted(receiver)
                ):
                    yield node, f"holder-state mutator '.{method}()'"
        elif isinstance(node, (ast.Subscript, ast.Attribute)) and isinstance(
            getattr(node, "ctx", None), (ast.Store, ast.Del)
        ):
            attrs, root = _chain_attrs(node)
            if root in aliases.holder_state or (
                attrs & HOLDER_STATE_ATTRS and aliases.is_router_rooted(node)
            ):
                yield node, "holder-state store"


def _direct_records(
    function: "ast.FunctionDef | ast.AsyncFunctionDef", aliases: FunctionAliases
) -> Iterator[ast.AST]:
    """Yield record sites written directly in ``function``'s body."""
    for node in _walk_executed(function):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in MUTATOR_METHODS and aliases.is_record_expr(node.func.value):
                yield node
        elif isinstance(node, ast.Subscript) and isinstance(node.ctx, (ast.Store, ast.Del)):
            if aliases.is_record_expr(node):
                yield node


class ResidentStateRecordRule(Rule):
    """RPR030: holder-state mutations must flow into a sync record."""

    code = "RPR030"
    name = "unrecorded-resident-mutation"
    summary = (
        "a write reaching a simulator's Loc-RIB/Adj-RIB-In/origination state "
        "has a CFG path with no _last_touched/_pending_sync record: resident "
        "shard workers would silently diverge from the parent"
    )

    def check(self, module: ModuleInfo) -> Iterator[Violation]:
        return iter(())

    def check_project(self, modules: list[ModuleInfo]) -> Iterator[Violation]:
        graph = CallGraph(modules)
        aliases_of: dict[str, FunctionAliases] = {
            dotted: FunctionAliases(node.node) for dotted, node in graph.functions.items()
        }
        # Interprocedural always-records fixpoint: a call to a member
        # counts as a record site at the call statement.
        always_records: set[str] = {
            dotted
            for dotted, function in graph.functions.items()
            if any(True for _ in _direct_records(function.node, aliases_of[dotted]))
        }
        changed = True
        while changed:
            changed = False
            for dotted, function in graph.functions.items():
                if dotted in always_records:
                    continue
                for call in _walk_executed(function.node):
                    if isinstance(call, ast.Call) and any(
                        target in always_records
                        for target in graph._resolve_call(function, call)
                    ):
                        always_records.add(dotted)
                        changed = True
                        break

        for dotted, function in graph.functions.items():
            module = function.module
            if _is_test_module(module):
                continue
            if function.node.name in RECORD_EXEMPT_FUNCTIONS:
                continue
            aliases = aliases_of[dotted]
            mutations = list(_holder_mutations(function.node, aliases))
            if not mutations:
                continue
            cfg = ControlFlowGraph(function.node)
            blocked: set[int] = set()
            for statement in cfg.statements:
                if self._statement_records(statement, aliases, function, graph, always_records):
                    blocked.add(id(statement))
            statement_of = self._statement_index(cfg)
            for site, description in mutations:
                stmt = statement_of.get(id(site))
                if stmt is None or id(stmt) in blocked:
                    continue
                unrecorded_before = cfg.path_avoiding(cfg.entry, stmt, blocked)
                unrecorded_after = cfg.path_avoiding(stmt, cfg.exit, blocked)
                if unrecorded_before and unrecorded_after:
                    yield module.violation(
                        self.code,
                        site,
                        f"{description} mutates resident holder state with no "
                        "_last_touched/_pending_sync record on some path; the "
                        "shard workers would keep converging on the stale "
                        "state (record the (prefix, router) pair, or route "
                        "the write through the engine)",
                        context=module.context(function.node),
                    )

    @staticmethod
    def _statement_index(cfg: ControlFlowGraph) -> dict[int, ast.AST]:
        """Map every executed sub-expression id to its CFG statement."""
        index: dict[int, ast.AST] = {}
        for statement in cfg.statements:
            for part in _executed_parts(statement):
                for node in _walk_executed(part):
                    index[id(node)] = statement
        return index

    @staticmethod
    def _statement_records(
        statement: ast.AST,
        aliases: FunctionAliases,
        function: FunctionNode,
        graph: CallGraph,
        always_records: set[str],
    ) -> bool:
        for part in _executed_parts(statement):
            for node in _walk_executed(part):
                if isinstance(node, ast.Call):
                    if isinstance(node.func, ast.Attribute) and (
                        node.func.attr in MUTATOR_METHODS
                        and aliases.is_record_expr(node.func.value)
                    ):
                        return True
                    if any(
                        target in always_records
                        for target in graph._resolve_call(function, node)
                    ):
                        return True
                elif isinstance(node, ast.Subscript) and isinstance(
                    node.ctx, (ast.Store, ast.Del)
                ):
                    if aliases.is_record_expr(node):
                        return True
        return False


# ---------------------------------------------------------------- RPR031 rule
def _captured_attrs(capture_fn: "ast.FunctionDef | ast.AsyncFunctionDef") -> set[str]:
    """Attribute names read inside a ``capture_router_config`` body."""
    attrs: set[str] = set()
    for node in _walk_executed(capture_fn):
        if isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
            attrs.add(node.attr)
    return attrs


def _router_class_inventories(
    modules: list[ModuleInfo], captured: set[str]
) -> dict[int, set[str]]:
    """``id(ClassDef) -> self-attribute inventory`` for router-like classes.

    A class is router-like when its ``__init__`` assigns at least two of
    the captured configuration attributes to ``self`` — that is the
    class ``capture_router_config`` fingerprints, wherever it lives and
    whatever it is called (fixtures define miniatures).
    """
    inventories: dict[int, set[str]] = {}
    for module in modules:
        for klass in (n for n in module.tree.body if isinstance(n, ast.ClassDef)):
            for member in klass.body:
                if (
                    isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and member.name == "__init__"
                ):
                    inventory = {
                        leaf.attr
                        for leaf in ast.walk(member)
                        if isinstance(leaf, ast.Attribute)
                        and isinstance(leaf.ctx, ast.Store)
                        and isinstance(leaf.value, ast.Name)
                        and leaf.value.id == "self"
                    }
                    if len(inventory & captured) >= 2:
                        inventories[id(klass)] = inventory
    return inventories


class ConfigCoherenceRule(Rule):
    """RPR031: mutated router attributes must be fingerprinted or exempt."""

    code = "RPR031"
    name = "unfingerprinted-config"
    summary = (
        "a router attribute is mutated but not captured by "
        "capture_router_config (and is not per-prefix protocol state): the "
        "pool epoch would never bump, so resident workers keep the old config"
    )

    def check(self, module: ModuleInfo) -> Iterator[Violation]:
        return iter(())

    def check_project(self, modules: list[ModuleInfo]) -> Iterator[Violation]:
        capture_fns = [
            node
            for module in modules
            for node in module.tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node.name == "capture_router_config"
        ]
        if not capture_fns:
            return
        captured: set[str] = set()
        for capture_fn in capture_fns:
            captured |= _captured_attrs(capture_fn)
        allowed = captured | CONFIG_EXEMPT_ATTRS
        inventories = _router_class_inventories(modules, captured)
        graph = CallGraph(modules)
        for dotted, function in graph.functions.items():
            module = function.module
            if _is_test_module(module):
                continue
            if function.node.name == "capture_router_config":
                continue
            aliases = FunctionAliases(function.node)
            enclosing = module.enclosing_defs(function.node)
            in_router_class = any(
                id(scope) in inventories
                for scope in enclosing
                if isinstance(scope, ast.ClassDef)
            ) and function.node.name != "__init__"
            for site, attr in self._config_mutations(function.node, aliases, in_router_class):
                if attr in allowed:
                    continue
                yield module.violation(
                    self.code,
                    site,
                    f"router attribute '{attr}' is mutated but never "
                    "fingerprinted by capture_router_config; a resident pool "
                    "would miss the edit (add the field to the capture, or "
                    "ship it with the task payload like "
                    "export_community_additions)",
                    context=module.context(function.node),
                )

    @staticmethod
    def _config_mutations(
        function: "ast.FunctionDef | ast.AsyncFunctionDef",
        aliases: FunctionAliases,
        in_router_class: bool,
    ) -> Iterator[tuple[ast.AST, str]]:
        def router_valued(expr: ast.AST) -> bool:
            if aliases.is_router_rooted(expr):
                return True
            return (
                in_router_class
                and isinstance(expr, ast.Name)
                and expr.id == "self"
            )

        for node in _walk_executed(function):
            if isinstance(node, ast.Attribute) and isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                if router_valued(node.value):
                    yield node, node.attr
            elif isinstance(node, ast.Subscript) and isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                target = node.value
                if isinstance(target, ast.Attribute) and router_valued(target.value):
                    yield node, target.attr
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr not in MUTATOR_METHODS:
                    continue
                receiver = node.func.value
                if isinstance(receiver, ast.Attribute) and router_valued(receiver.value):
                    yield node, receiver.attr


# ---------------------------------------------------------------- RPR032 rule
def _module_state_reads(function: FunctionNode) -> Iterator[tuple[ast.AST, str]]:
    """Yield ``(site, name)`` for reads of module-level names in the body."""
    node = function.node
    module = function.module
    declared_global: set[str] = set()
    for statement in ast.walk(node):
        if isinstance(statement, ast.Global):
            declared_global.update(statement.names)
    local = _local_bindings(node) - declared_global
    for leaf in ast.walk(node):
        if (
            isinstance(leaf, ast.Name)
            and isinstance(leaf.ctx, ast.Load)
            and leaf.id in module.module_level_names
            and leaf.id not in local
        ):
            yield leaf, leaf.id


class ForkAliasRule(Rule):
    """RPR032: no module-level mutable aliased across the fork boundary."""

    code = "RPR032"
    name = "fork-aliased-state"
    summary = (
        "module-level mutable state is written on one side of the fork "
        "boundary (worker entry points vs. parent dispatch paths) and "
        "accessed on the other: the two processes silently hold diverging "
        "copies"
    )

    def __init__(
        self,
        worker_entry_points: tuple[str, ...] = WORKER_ENTRY_POINTS,
        parent_entry_points: tuple[str, ...] = PARENT_ENTRY_POINTS,
    ):
        self.worker_entry_points = worker_entry_points
        self.parent_entry_points = parent_entry_points

    def check(self, module: ModuleInfo) -> Iterator[Violation]:
        return iter(())

    def check_project(self, modules: list[ModuleInfo]) -> Iterator[Violation]:
        graph = CallGraph(modules)
        workers = graph.reachable_from(self.worker_entry_points)
        parents = graph.reachable_from(self.parent_entry_points)

        def state_key(function: FunctionNode, name: str) -> tuple[str, str]:
            return (function.module.display_path, name)

        worker_writes: set[tuple[str, str]] = set()
        for function in workers:
            for _site, name in _module_state_writes(function):
                worker_writes.add(state_key(function, name))
        parent_writes: set[tuple[str, str]] = set()
        for function in parents:
            for _site, name in _module_state_writes(function):
                parent_writes.add(state_key(function, name))
        worker_accesses = set(worker_writes)
        for function in workers:
            for _site, name in _module_state_reads(function):
                worker_accesses.add(state_key(function, name))

        # Anchor every finding at a parent-side access so one decision
        # (noqa / baseline entry) covers the shared name, not each of
        # the worker-side writes RPR011 already reports.
        reported: set[tuple[str, str, str]] = set()
        for function in parents:
            accesses: list[tuple[ast.AST, str, str]] = [
                (site, name, "reads") for site, name in _module_state_reads(function)
            ] + [(site, name, "writes") for site, name in _module_state_writes(function)]
            for site, name, verb in accesses:
                key = state_key(function, name)
                crossed = (
                    key in worker_writes
                    or (verb == "writes" and key in worker_accesses)
                )
                if not crossed:
                    continue
                context = function.module.context(function.node)
                fingerprint = (key[0], key[1], context)
                if fingerprint in reported:
                    continue
                reported.add(fingerprint)
                yield function.module.violation(
                    self.code,
                    site,
                    f"parent-side code {verb} module-level state '{name}' that "
                    "worker-reachable code also touches; after the fork the "
                    "two processes hold independent copies, so the alias "
                    "silently diverges (move the state into the task payload "
                    "or a per-side object)",
                    context=context,
                )


#: The dataflow project rules, in code order.
DATAFLOW_RULES: tuple[Rule, ...] = (
    ResidentStateRecordRule(),
    ConfigCoherenceRule(),
    ForkAliasRule(),
)
