"""The per-module lint rules (RPR001-RPR021, minus the call-graph rule).

Each rule is one :class:`Rule` subclass with a stable code; rules are
pure functions of a :class:`~repro.analysis.model.ModuleInfo` and emit
:class:`~repro.analysis.model.Violation` values.  The invariants they
enforce are the ones the whole reproduction rests on (byte-identical
sharded results, reproducible topologies, lossless archives):

* **Determinism** — ``RPR001`` builtin ``hash()`` outside sanctioned
  contexts (shard placement, wire formats and cache keys must use the
  stable mixes in :mod:`repro.routing.shard`); ``RPR002`` unseeded
  randomness / wall clocks instead of
  :class:`~repro.utils.rand.DeterministicRng` or an injected timestamp;
  ``RPR003`` iterating an unordered ``set`` into an ordered output.
* **Multiprocessing safety** — ``RPR010`` non-module-level callables at
  pool submit sites (worker functions must pickle by qualified name).
* **Immutability discipline** — ``RPR020`` raw ``object.__setattr__``
  outside ``__post_init__`` / the sanctioned cache setter
  (:func:`repro.utils.frozen.set_frozen_field`); ``RPR021`` cached
  ``_hash`` on classes declaring mutable fields.

The rules are static heuristics: they over-approximate on purpose and
rely on the inline ``# repro: noqa[CODE]: reason`` suppressions and the
checked-in baseline for the (rare, justified) exceptions.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.model import ModuleInfo, Violation

#: Function names allowed to call ``hash()`` on their own fields: the
#: value-object hashing idiom (cached in ``__post_init__`` or computed
#: lazily in ``__hash__``) keys in-process containers only.
HASH_SANCTIONED_CONTEXTS = frozenset({"__hash__", "__post_init__"})

#: Function names allowed to call ``object.__setattr__`` directly:
#: dataclass construction hooks plus the registered cache setters.
SETATTR_SANCTIONED_CONTEXTS = frozenset({"__post_init__", "set_frozen_field", "_set_cached"})

#: Fully qualified callables RPR002 rejects in simulation/worker code.
NONDETERMINISTIC_CALLS = frozenset(
    {
        "uuid.uuid1",
        "uuid.uuid4",
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: ``random`` attributes that are *not* violations: explicitly seeded
#: generator construction is exactly the sanctioned pattern
#: (``DeterministicRng`` wraps ``random.Random``).
RANDOM_SANCTIONED = frozenset({"Random", "getstate", "setstate", "seed"})

#: Order-insensitive consumers: a set iterated straight into one of
#: these cannot leak iteration order into an output.
ORDER_FREE_CONSUMERS = frozenset(
    {"sum", "min", "max", "any", "all", "len", "set", "frozenset", "sorted", "Counter"}
)

#: Method calls that make a ``for`` body ordering-sensitive (they grow
#: an ordered container or emit output in loop order).
ORDER_SENSITIVE_METHODS = frozenset(
    {"append", "extend", "insert", "write", "writelines", "add_row", "put"}
)

#: Set-returning methods: ``a.union(b)`` is as unordered as ``a | b``.
SET_RETURNING_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference"}
)

#: Set methods whose result ignores argument order: feeding a set
#: iteration into ``known_set.update(...)`` cannot leak ordering.
SET_ORDER_FREE_METHODS = frozenset(
    {
        "update",
        "union",
        "intersection",
        "difference",
        "symmetric_difference",
        "intersection_update",
        "difference_update",
        "symmetric_difference_update",
        "isdisjoint",
        "issubset",
        "issuperset",
    }
)

#: Annotation names that mark a value as a set for RPR003 inference.
SET_ANNOTATIONS = frozenset({"set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet"})

#: Mutable builtin annotations for RPR021's field scan.
MUTABLE_ANNOTATIONS = frozenset(
    {
        "list",
        "dict",
        "set",
        "bytearray",
        "List",
        "Dict",
        "Set",
        "DefaultDict",
        "Deque",
        "Counter",
        "MutableMapping",
        "MutableSequence",
        "MutableSet",
    }
)


class Rule:
    """One lint rule: a stable code plus a per-module check."""

    code: str = "RPR???"
    name: str = ""
    summary: str = ""

    def check(self, module: ModuleInfo) -> Iterator[Violation]:
        raise NotImplementedError


# --------------------------------------------------------------- determinism
def _annotation_names(annotation: "ast.AST | None") -> set[str]:
    """*Outermost* names of an annotation (``dict[str, set[int]]`` -> dict).

    Only the container itself determines the value's iteration
    behaviour; descending into type arguments would infer ``set`` for a
    dict of sets.  Union members (``X | Y``, string or real) all count.
    """
    if annotation is None:
        return set()
    if isinstance(annotation, ast.Name):
        return {annotation.id}
    if isinstance(annotation, ast.Subscript):
        return _annotation_names(annotation.value)
    if isinstance(annotation, ast.Attribute):
        return {annotation.attr}
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
        return _annotation_names(annotation.left) | _annotation_names(annotation.right)
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        names: set[str] = set()
        for part in annotation.value.split("|"):
            names.add(part.split("[")[0].strip())
        return names
    return set()


def _declared_str_names(function: "ast.FunctionDef | ast.AsyncFunctionDef | None") -> set[str]:
    """Names annotated ``str``/``bytes`` in the enclosing function."""
    if function is None:
        return set()
    names: set[str] = set()
    args = function.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        if _annotation_names(arg.annotation) & {"str", "bytes"}:
            names.add(arg.arg)
    for node in ast.walk(function):
        if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            if _annotation_names(node.annotation) & {"str", "bytes"}:
                names.add(node.target.id)
    return names


def _string_bearing(node: ast.AST, str_names: set[str]) -> bool:
    """Whether an expression obviously produces or contains str/bytes."""
    for leaf in ast.walk(node):
        if isinstance(leaf, ast.Constant) and isinstance(leaf.value, (str, bytes)):
            return True
        if isinstance(leaf, ast.JoinedStr):
            return True
        if isinstance(leaf, ast.Name) and leaf.id in str_names:
            return True
        if isinstance(leaf, ast.Call):
            func = leaf.func
            if isinstance(func, ast.Name) and func.id in {"str", "repr", "format", "ascii"}:
                return True
            if isinstance(func, ast.Attribute) and func.attr in {
                "encode",
                "decode",
                "format",
                "join",
            }:
                return True
    return False


class BuiltinHashRule(Rule):
    """RPR001: builtin ``hash()`` where a stable mix is required."""

    code = "RPR001"
    name = "builtin-hash"
    summary = (
        "builtin hash() outside __hash__/__post_init__, or over str/bytes anywhere: "
        "shard placement, wire formats and cache keys need the stable mixes "
        "(repro.routing.shard.stable_shard / stable_asn_shard)"
    )

    def check(self, module: ModuleInfo) -> Iterator[Violation]:
        for call in module.nodes(ast.Call):
            func = call.func
            if not (isinstance(func, ast.Name) and func.id == "hash"):
                continue
            enclosing = module.enclosing_function(call)
            context_name = enclosing.name if enclosing is not None else "<module>"
            str_names = _declared_str_names(enclosing)
            stringy = any(_string_bearing(arg, str_names) for arg in call.args)
            if stringy:
                yield module.violation(
                    self.code,
                    call,
                    "builtin hash() over str/bytes is salted per process "
                    "(PYTHONHASHSEED); mix the bytes explicitly or use "
                    "stable_shard/stable_asn_shard",
                )
            elif context_name not in HASH_SANCTIONED_CONTEXTS:
                yield module.violation(
                    self.code,
                    call,
                    "builtin hash() outside __hash__/__post_init__; values that "
                    "feed placement, wire formats or cache keys must use a "
                    "stable, process-independent mix",
                )


class NondeterministicSourceRule(Rule):
    """RPR002: unseeded randomness or wall clocks in simulation code."""

    code = "RPR002"
    name = "nondeterministic-source"
    summary = (
        "random.*/uuid4/time.time/datetime.now in simulation or worker paths: "
        "draw through DeterministicRng or take the timestamp as a parameter"
    )

    def _resolve(self, module: ModuleInfo, func: ast.AST) -> "str | None":
        """Dotted name of the called object, through the import tables."""
        if isinstance(func, ast.Name):
            return module.from_imports.get(func.id)
        if isinstance(func, ast.Attribute):
            parts: list[str] = [func.attr]
            value = func.value
            while isinstance(value, ast.Attribute):
                parts.append(value.attr)
                value = value.value
            if not isinstance(value, ast.Name):
                return None
            root = value.id
            if root in module.module_aliases:
                parts.append(module.module_aliases[root])
            elif root in module.from_imports:
                parts.append(module.from_imports[root])
            else:
                return None
            return ".".join(reversed(parts))
        return None

    def check(self, module: ModuleInfo) -> Iterator[Violation]:
        for call in module.nodes(ast.Call):
            dotted = self._resolve(module, call.func)
            if dotted is None:
                continue
            if dotted.startswith("random."):
                if dotted.split(".", 1)[1] in RANDOM_SANCTIONED:
                    continue
                message = (
                    f"'{dotted}' draws from shared, unseeded process state; "
                    "use DeterministicRng (repro.utils.rand) so runs reproduce"
                )
            elif dotted in NONDETERMINISTIC_CALLS:
                message = (
                    f"'{dotted}' is nondeterministic run-to-run; inject the "
                    "value (seeded rng / timestamp parameter) instead"
                )
            else:
                continue
            yield module.violation(self.code, call, message)


class SetIterationRule(Rule):
    """RPR003: unordered set iteration feeding an ordered output."""

    code = "RPR003"
    name = "unordered-iteration"
    summary = (
        "iterating a bare set into an ordered output (list, dict, yield, "
        "emitted rows): merge/export paths must be sorted-or-insertion-ordered"
    )

    _MESSAGE = (
        "iteration over an unordered set feeds an ordered output; wrap the "
        "set in sorted(...) (merge/export paths must be order-stable)"
    )

    def _set_names_in(self, scope: ast.AST) -> set[str]:
        """Flow-insensitive inference within one scope: names bound to sets.

        The walk stays inside ``scope`` (nested function bodies are their
        own scopes) so a ``prefixes = set(...)`` in one function cannot
        taint an unrelated ``prefixes`` list in another.
        """
        names: set[str] = set()

        def iter_scope(node: ast.AST):
            yield node
            for child in ast.iter_child_nodes(node):
                if child is not node and isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    continue
                yield from iter_scope(child)

        if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = scope.args
            for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
                if _annotation_names(arg.annotation) & SET_ANNOTATIONS:
                    names.add(arg.arg)
        for _ in range(2):  # one refinement pass catches chained assigns
            for node in iter_scope(scope):
                if isinstance(node, ast.Assign) and self._is_set_expr(node.value, names):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            names.add(target.id)
                elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                    if _annotation_names(node.annotation) & SET_ANNOTATIONS:
                        names.add(node.target.id)
        return names

    def _is_set_expr(self, node: ast.AST, set_names: set[str]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in set_names
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in {"set", "frozenset"}:
                return True
            if isinstance(func, ast.Attribute) and func.attr in SET_RETURNING_METHODS:
                return self._is_set_expr(func.value, set_names)
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_set_expr(node.left, set_names) or self._is_set_expr(
                node.right, set_names
            )
        return False

    def _ordering_sensitive_body(self, loop: ast.For) -> bool:
        """Whether the loop body visibly emits in iteration order."""
        for statement in loop.body + loop.orelse:
            for node in ast.walk(statement):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if isinstance(node, (ast.Yield, ast.YieldFrom)):
                    return True
                if isinstance(node, ast.Assign) and any(
                    isinstance(target, ast.Subscript) for target in node.targets
                ):
                    return True
                if isinstance(node, ast.AugAssign):
                    return True
                if isinstance(node, ast.Call):
                    func = node.func
                    if isinstance(func, ast.Name) and func.id == "print":
                        return True
                    if isinstance(func, ast.Attribute) and func.attr in ORDER_SENSITIVE_METHODS:
                        return True
        return False

    def check(self, module: ModuleInfo) -> Iterator[Violation]:
        module_names = self._set_names_in(module.tree)
        scope_cache: dict[int, set[str]] = {}

        def names_for(node: ast.AST) -> set[str]:
            scope = module.enclosing_function(node)
            if scope is None:
                return module_names
            cached = scope_cache.get(id(scope))
            if cached is None:
                cached = self._set_names_in(scope) | module_names
                scope_cache[id(scope)] = cached
            return cached

        for node in ast.walk(module.tree):
            set_names = names_for(node)
            if isinstance(node, ast.For):
                if self._is_set_expr(node.iter, set_names) and self._ordering_sensitive_body(
                    node
                ):
                    yield module.violation(self.code, node.iter, self._MESSAGE)
            elif isinstance(node, (ast.ListComp, ast.DictComp)):
                if any(
                    self._is_set_expr(gen.iter, set_names) for gen in node.generators
                ):
                    yield module.violation(self.code, node, self._MESSAGE)
            elif isinstance(node, ast.GeneratorExp):
                if not any(
                    self._is_set_expr(gen.iter, set_names) for gen in node.generators
                ):
                    continue
                parent = module.parents.get(node)
                if isinstance(parent, ast.Call):
                    func = parent.func
                    if isinstance(func, ast.Name) and func.id in ORDER_FREE_CONSUMERS:
                        continue
                    if (
                        isinstance(func, ast.Attribute)
                        and func.attr in SET_ORDER_FREE_METHODS
                        and self._is_set_expr(func.value, set_names)
                    ):
                        continue
                yield module.violation(self.code, node, self._MESSAGE)
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Name)
                    and func.id in {"list", "tuple", "enumerate"}
                    and len(node.args) >= 1
                    and self._is_set_expr(node.args[0], set_names)
                ):
                    yield module.violation(self.code, node, self._MESSAGE)


# ------------------------------------------------------ multiprocessing safety
class SubmitCallableRule(Rule):
    """RPR010: non-module-level callables shipped to worker pools."""

    code = "RPR010"
    name = "unpicklable-submit"
    summary = (
        "lambda / closure / bound method at a ShardPool or ProcessPoolExecutor "
        "submit site: worker callables must be module-level (pickled by name)"
    )

    def _nested_function_names(
        self, function: "ast.FunctionDef | ast.AsyncFunctionDef | None"
    ) -> set[str]:
        if function is None:
            return set()
        names: set[str] = set()
        for node in ast.walk(function):
            if node is function:
                continue
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                names.add(node.name)
        return names

    def _check_callable_arg(
        self, module: ModuleInfo, call: ast.Call, arg: ast.AST, nested: set[str]
    ) -> Iterator[Violation]:
        # Lambdas anywhere in the payload can never pickle.
        for leaf in ast.walk(arg):
            if isinstance(leaf, ast.Lambda):
                yield module.violation(
                    self.code,
                    leaf,
                    "lambda shipped to a worker pool cannot pickle; define a "
                    "module-level function",
                )
                return
        if isinstance(arg, ast.Name) and arg.id in nested:
            yield module.violation(
                self.code,
                arg,
                f"closure-local function '{arg.id}' shipped to a worker pool; "
                "move it to module level so it pickles by qualified name",
            )
        elif isinstance(arg, ast.Attribute):
            value = arg.value
            while isinstance(value, ast.Attribute):
                value = value.value
            if isinstance(value, ast.Name) and (
                value.id in module.module_aliases or value.id in module.from_imports
            ):
                return  # module.func: picklable by qualified name
            yield module.violation(
                self.code,
                arg,
                f"bound method or attribute '{ast.unparse(arg)}' shipped to a "
                "worker pool; pass a module-level function instead",
            )

    def check(self, module: ModuleInfo) -> Iterator[Violation]:
        for call in module.nodes(ast.Call):
            func = call.func
            if isinstance(func, ast.Attribute) and func.attr == "submit":
                nested = self._nested_function_names(module.enclosing_function(call))
                for arg in [*call.args, *[kw.value for kw in call.keywords]]:
                    yield from self._check_callable_arg(module, call, arg, nested)
            elif (
                isinstance(func, ast.Name)
                and func.id in {"ProcessPoolExecutor", "ShardPool"}
            ) or (
                isinstance(func, ast.Attribute)
                and func.attr in {"ProcessPoolExecutor", "ShardPool"}
            ):
                for keyword in call.keywords:
                    if keyword.arg in {"initializer", "initargs"}:
                        for leaf in ast.walk(keyword.value):
                            if isinstance(leaf, ast.Lambda):
                                yield module.violation(
                                    self.code,
                                    leaf,
                                    "lambda as a pool initializer cannot pickle; "
                                    "define a module-level function",
                                )


# ------------------------------------------------------ immutability discipline
class FrozenSetattrRule(Rule):
    """RPR020: raw ``object.__setattr__`` outside sanctioned contexts."""

    code = "RPR020"
    name = "raw-frozen-setattr"
    summary = (
        "object.__setattr__ outside __post_init__ / a registered cache setter: "
        "route frozen-field writes through repro.utils.frozen.set_frozen_field"
    )

    def check(self, module: ModuleInfo) -> Iterator[Violation]:
        for call in module.nodes(ast.Call):
            func = call.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr == "__setattr__"
                and isinstance(func.value, ast.Name)
                and func.value.id == "object"
            ):
                continue
            enclosing = module.enclosing_function(call)
            context_name = enclosing.name if enclosing is not None else "<module>"
            if context_name in SETATTR_SANCTIONED_CONTEXTS:
                continue
            yield module.violation(
                self.code,
                call,
                "raw object.__setattr__ on a frozen instance outside "
                "__post_init__ or a sanctioned cache setter; use "
                "repro.utils.frozen.set_frozen_field",
            )


class CachedHashMutableFieldRule(Rule):
    """RPR021: cached ``_hash`` on a class with mutable fields."""

    code = "RPR021"
    name = "cached-hash-mutable-field"
    summary = (
        "class caches a _hash but declares a mutable field (list/dict/set/...): "
        "a mutation would silently desynchronise the cached hash"
    )

    def _caches_hash(self, klass: ast.ClassDef) -> bool:
        for node in ast.walk(klass):
            if isinstance(node, ast.Constant) and node.value == "_hash":
                return True
            if isinstance(node, ast.Attribute) and node.attr == "_hash":
                return True
            if (
                isinstance(node, ast.AnnAssign)
                and isinstance(node.target, ast.Name)
                and node.target.id == "_hash"
            ):
                return True
        return False

    def _mutable_fields(self, klass: ast.ClassDef) -> Iterable[tuple[str, str]]:
        for statement in klass.body:
            if not (
                isinstance(statement, ast.AnnAssign)
                and isinstance(statement.target, ast.Name)
            ):
                continue
            mutable = _annotation_names(statement.annotation) & MUTABLE_ANNOTATIONS
            if not mutable and isinstance(statement.value, ast.Call):
                for keyword in statement.value.keywords:
                    if (
                        keyword.arg == "default_factory"
                        and isinstance(keyword.value, ast.Name)
                        and keyword.value.id in {"list", "dict", "set"}
                    ):
                        mutable = {keyword.value.id}
            if mutable:
                yield statement.target.id, sorted(mutable)[0]

    def check(self, module: ModuleInfo) -> Iterator[Violation]:
        for klass in module.nodes(ast.ClassDef):
            if not self._caches_hash(klass):
                continue
            for field_name, kind in self._mutable_fields(klass):
                yield module.violation(
                    self.code,
                    klass,
                    f"class caches '_hash' but field '{field_name}' is mutable "
                    f"({kind}); cached hashes require fully immutable fields",
                    context=module.context(klass),
                )


#: The per-module rules, in code order (RPR011 lives in callgraph.py).
MODULE_RULES: tuple[Rule, ...] = (
    BuiltinHashRule(),
    NondeterministicSourceRule(),
    SetIterationRule(),
    SubmitCallableRule(),
    FrozenSetattrRule(),
    CachedHashMutableFieldRule(),
)
