"""``python -m repro.analysis`` — the lint engine, standalone."""

import sys

from repro.analysis.engine import main

if __name__ == "__main__":
    sys.exit(main())
