"""Opt-in runtime checks of the resident-shard sync protocol.

The dataflow rules (:mod:`repro.analysis.dataflow`) verify the
residency protocol *statically*; this module verifies it *dynamically*:
with ``REPRO_SANITIZE=1`` the protocol hot points —
:meth:`repro.routing.shard.ShardPool.sync_header`,
:meth:`repro.routing.shard.ShardPool.submit` and
:meth:`repro.routing.stream.SimulatorService.drain` — call into the
check functions below, and any violated invariant raises
:class:`ProtocolViolationError` at the exact dispatch that broke it.
The tier-1 equivalence suites run unchanged under the flag, which turns
them into protocol conformance tests (CI's ``sanitize`` job).

Checked invariants:

* **per-slot epoch monotonicity** — a slot's task-header epoch never
  regresses, always equals the pool's current epoch, and an epoch
  *advance* ships the router-config payload with the first task
  (:func:`check_sync_header`);
* **well-formed dispatch** — every task envelope submitted to a slot is
  a ``(epoch, config-or-None, ...)`` tuple on the pool's current epoch,
  and its slot's header was issued first (:func:`check_submit`);
* **codec round trip** — every wire blob in a shipped envelope
  decodes, re-encodes and re-decodes to an identical payload
  (:func:`repro.routing.wire.audit_blob`); a divergence names the
  first differing field.  The audit builds its own throwaway decode
  state, so the ship-accounting counters and the simulator's interner
  are untouched;
* **delta-completeness** — on stream drain, every (prefix, router) pair
  the parent considers *settled* (holder state minus the pending-sync
  backlog) is byte-equal in the resident worker that owns the prefix's
  shard (:func:`check_drain` fingerprints both sides through
  :func:`repro.routing.shard.capture_prefix_state`).

The checks read :data:`SANITIZE_ENV` live at each hook site, so tests
can flip the flag per subprocess; all hook sites gate on the variable
*before* importing this module, so the disabled path costs one ``dict``
lookup.  The drain audit bypasses :meth:`ShardPool.submit` and talks to
the slot executors directly: the ship-accounting counters
(``tasks_dispatched``, ``ship_bytes``, ``shipped_state_entries``) must
read exactly as an unsanitized run, and the audit task must not recurse
into :func:`check_submit`.
"""

from __future__ import annotations

import os
import weakref
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance
    from repro.routing.engine import BgpSimulator
    from repro.routing.shard import ShardPool

#: The environment variable that arms the runtime checks.
SANITIZE_ENV = "REPRO_SANITIZE"


def enabled() -> bool:
    """Whether sanitizing is armed (read live, not cached at import)."""
    return os.environ.get(SANITIZE_ENV, "") not in ("", "0")


class ProtocolViolationError(RuntimeError):
    """A resident-shard sync-protocol invariant was violated at run time."""


#: Shadow per-pool record of the last header epoch each slot was issued,
#: kept *outside* the pool (the sanitizer must observe the protocol, not
#: join it).  Weak keys: a collected pool takes its shadow along.
_SLOT_EPOCHS: "weakref.WeakKeyDictionary[ShardPool, dict[int, int]]" = (
    weakref.WeakKeyDictionary()
)

#: Shadow record of the lowest epoch at which each pool was last adopted
#: by a new simulator (:meth:`ShardPool.adopt`).  From that epoch on, a
#: slot the sanitizer has *never seen* still must ship config with its
#: first header: the worker may be resident with the previous owner's
#: policies, and the usual "enabled mid-run" leniency would let a stale
#: configuration converge silently.
_ADOPTION_FLOORS: "weakref.WeakKeyDictionary[ShardPool, int]" = (
    weakref.WeakKeyDictionary()
)


def check_adopt(pool: "ShardPool", previous_epoch: int) -> None:
    """Validate one :meth:`ShardPool.adopt` re-home and record its floor."""
    if pool.epoch <= previous_epoch:
        raise ProtocolViolationError(
            f"pool adoption left the epoch at {pool.epoch} (was "
            f"{previous_epoch}): re-homing must advance the epoch or "
            "resident workers keep converging the previous owner's state"
        )
    from repro.routing import shard as shard_module

    token = pool._snapshot_token
    if token is not None and token not in shard_module._SNAPSHOT_REGISTRY:
        raise ProtocolViolationError(
            f"pool adoption parked snapshot token {token} but the registry "
            "has no such entry: lazily-started slots would crash in their "
            "initializer"
        )
    _ADOPTION_FLOORS[pool] = pool.epoch  # repro: noqa[RPR011,RPR032]: parent-process-only shadow map — adopt runs before dispatch, never inside a worker (reachability is the bare-name '.withdraw' call-graph over-approximation)


def check_sync_header(
    pool: "ShardPool", slot: int, epoch: int, config: "bytes | None"
) -> None:
    """Validate one ``sync_header`` result for ``slot`` and record it.

    A slot never seen before is accepted as-is (the sanitizer may have
    been enabled mid-run, after the slot was already synced), which is
    why the config-completeness check fires only on an epoch *advance*
    the sanitizer witnessed — unless the pool was adopted by a new
    simulator, after which even a never-seen slot must ship config with
    its first header on the post-adoption epoch.
    """
    shadow = _SLOT_EPOCHS.get(pool)  # repro: noqa[RPR032]: parent-process-only shadow map; workers never import the sanitizer (reachability is the bare-name '.withdraw' call-graph over-approximation)
    if shadow is None:
        shadow = {}
        _SLOT_EPOCHS[pool] = shadow  # repro: noqa[RPR011]: parent-process-only shadow map — the hook sites run before dispatch, never inside a worker (reachability is the bare-name '.withdraw' call-graph over-approximation)
    previous = shadow.get(slot)
    if epoch != pool.epoch:
        raise ProtocolViolationError(
            f"sync header for slot {slot} carries epoch {epoch} but the pool "
            f"is on epoch {pool.epoch}: headers must always name the current "
            "config generation"
        )
    if previous is not None:
        if epoch < previous:
            raise ProtocolViolationError(
                f"slot {slot} epoch regressed {previous} -> {epoch}: epochs "
                "are monotone per slot (a regression would resurrect resident "
                "state the worker already discarded)"
            )
        if epoch > previous and config is None:
            raise ProtocolViolationError(
                f"slot {slot} advanced epoch {previous} -> {epoch} with no "
                "router-config payload: the first task after a bump must "
                "re-ship the configuration or the worker converges under "
                "stale policies"
            )
    else:
        floor = _ADOPTION_FLOORS.get(pool)  # repro: noqa[RPR032]: parent-process-only shadow map; workers never import the sanitizer (reachability is the bare-name '.withdraw' call-graph over-approximation)
        if floor is not None and epoch >= floor and config is None:
            raise ProtocolViolationError(
                f"slot {slot} issued its first observed header on epoch "
                f"{epoch} with no router-config payload, but the pool was "
                f"adopted at epoch {floor}: an adopted pool's workers may "
                "be resident with the previous owner's policies, so every "
                "slot's first post-adoption task must re-ship the "
                "configuration"
            )
    if config is not None and not isinstance(config, (bytes, bytearray)):
        raise ProtocolViolationError(
            f"sync header config payload must be an encode_config wire blob "
            f"(bytes) or None, got {type(config).__name__}"
        )
    shadow[slot] = epoch


def check_submit(pool: "ShardPool", slot: int, task: object) -> None:
    """Validate one task envelope about to be dispatched to ``slot``."""
    if not isinstance(task, tuple) or len(task) not in (5, 6):
        raise ProtocolViolationError(
            "shard task envelopes are (epoch, config, additions, events/items, "
            f"states[, timestamp]) tuples; got {type(task).__name__} of length "
            f"{len(task) if isinstance(task, tuple) else 'n/a'}"
        )
    epoch, config = task[0], task[1]
    if epoch != pool.epoch:
        raise ProtocolViolationError(
            f"task submitted to slot {slot} carries epoch {epoch} but the pool "
            f"is on epoch {pool.epoch}: the header and the dispatch must agree"
        )
    if config is not None and not isinstance(config, (bytes, bytearray)):
        raise ProtocolViolationError(
            f"task config payload must be an encode_config wire blob (bytes) "
            f"or None, got {type(config).__name__}"
        )
    shadow = _SLOT_EPOCHS.get(pool)
    if shadow is not None and slot in shadow and shadow[slot] != epoch:
        raise ProtocolViolationError(
            f"task submitted to slot {slot} on epoch {epoch} but the slot's "
            f"last sync header was for epoch {shadow[slot]}: sync_header must "
            "be issued (and shipped) before every dispatch on a new epoch"
        )
    from repro.routing import wire

    for position, field in enumerate(task):
        if not isinstance(field, (bytes, bytearray)):
            continue
        divergence = wire.audit_blob(bytes(field))
        if divergence is not None:
            raise ProtocolViolationError(
                f"wire codec round trip diverged for task field {position} "
                f"bound to slot {slot}: {divergence}"
            )


def check_drain(simulator: "BgpSimulator") -> None:
    """Audit resident-vs-parent coherence after a stream drain.

    Every (prefix, router) pair the parent believes its workers already
    hold (``_prefix_holders`` minus the per-prefix ``_pending_sync``
    backlog) is fingerprinted on both sides with
    :func:`~repro.routing.shard.capture_prefix_state` and compared
    structurally.  Slots with no live executor, or whose resident state
    is already condemned by a newer epoch, are skipped — their next
    dispatch re-ships everything anyway.
    """
    pool = simulator._shard_pool
    if pool is None:
        return
    from repro.routing import shard as shard_module

    pending = simulator._pending_sync
    per_slot: "dict[int, list[tuple]]" = {}
    for prefix, holders in simulator._prefix_holders.items():
        settled = holders - pending.get(prefix, set())
        if not settled:
            continue
        slot = pool.slot_for(shard_module.stable_shard(prefix, pool.shards))
        if pool._executors[slot] is None or pool._slot_epochs[slot] != pool.epoch:
            continue
        per_slot.setdefault(slot, []).append((prefix, tuple(sorted(settled))))
    for slot in sorted(per_slot):
        pairs = per_slot[slot]
        # Deliberately NOT pool.submit: the audit must not perturb the
        # dispatch/ship counters or recurse into check_submit.  The slot
        # executor is single-worker and FIFO, so this task observes the
        # worker state after everything the drain dispatched.
        future = pool._executors[slot].submit(
            shard_module._fingerprint_shard, (pool.epoch, pairs)
        )
        resident = future.result()
        if resident is None:
            continue  # worker sits on an older epoch: nothing is settled
        expected = shard_module.capture_prefix_state(
            simulator,
            [prefix for prefix, _holders in pairs],
            holders={prefix: set(holder_asns) for prefix, holder_asns in pairs},
        )
        if resident != expected:
            mismatched = sorted(
                {
                    str(state[0])
                    for state in expected + resident
                    if state not in resident or state not in expected
                }
            )
            raise ProtocolViolationError(
                f"resident worker on slot {slot} diverged from the parent for "
                f"prefix(es) {', '.join(mismatched[:5])}"
                f"{' …' if len(mismatched) > 5 else ''}: a holder-state "
                "mutation was not recorded in _last_touched/_pending_sync "
                "(delta-completeness violated)"
            )
