"""Checked-in lint baselines: known, justified violations that stay green.

A baseline entry is the persistent form of a triaged violation — the
line-free fingerprint ``(code, path, context, message)`` plus a
**required** human reason.  The gate stays blocking for everything new
while grandfathered sites keep their audit trail in one reviewable
file.

Format (JSON, sorted, one entry per justified finding)::

    {
      "version": 1,
      "entries": [
        {
          "code": "RPR011",
          "path": "src/repro/routing/shard.py",
          "context": "_initialize_worker",
          "message": "worker-reachable function writes ...",
          "reason": "worker-resident registry; the parent never reads it"
        }
      ]
    }

An entry suppresses every current occurrence with the same fingerprint
(a rule firing twice in one function body is one decision).  Entries
that no longer match anything are reported as stale so the file cannot
rot silently.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from repro.analysis.model import Violation

#: Baseline file the CLI picks up automatically when it exists.
DEFAULT_BASELINE_NAME = ".repro-lint-baseline.json"

#: Reason written by ``--write-baseline``; meant to be edited before
#: the file is checked in.
PENDING_REASON = "PENDING TRIAGE: replace with the real justification"


class BaselineError(ValueError):
    """The baseline file is malformed (bad JSON, missing reasons, ...)."""


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered violation fingerprint plus its justification."""

    code: str
    path: str
    context: str
    message: str
    reason: str

    @property
    def fingerprint(self) -> tuple[str, str, str, str]:
        return (self.code, self.path, self.context, self.message)

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "path": self.path,
            "context": self.context,
            "message": self.message,
            "reason": self.reason,
        }


def load_baseline(path: Path) -> list[BaselineEntry]:
    """Read and validate a baseline file."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise BaselineError(f"baseline {path}: invalid JSON ({exc})") from None
    if not isinstance(payload, dict) or not isinstance(payload.get("entries"), list):
        raise BaselineError(f"baseline {path}: expected an object with an 'entries' list")
    entries: list[BaselineEntry] = []
    for index, raw in enumerate(payload["entries"]):
        if not isinstance(raw, dict):
            raise BaselineError(f"baseline {path}: entry {index} is not an object")
        missing = [
            key
            for key in ("code", "path", "context", "message", "reason")
            if not isinstance(raw.get(key), str) or not raw[key].strip()
        ]
        if missing:
            raise BaselineError(
                f"baseline {path}: entry {index} is missing non-empty "
                f"{', '.join(missing)} (every baselined violation needs a reason)"
            )
        entries.append(
            BaselineEntry(
                code=raw["code"],
                path=raw["path"],
                context=raw["context"],
                message=raw["message"],
                reason=raw["reason"],
            )
        )
    return entries


def write_baseline(path: Path, violations: Iterable[Violation]) -> int:
    """Write the current violations as a fresh (pending-triage) baseline."""
    unique: dict[tuple[str, str, str, str], BaselineEntry] = {}
    for violation in violations:
        unique.setdefault(
            violation.fingerprint,
            BaselineEntry(
                code=violation.code,
                path=violation.path,
                context=violation.context,
                message=violation.message,
                reason=PENDING_REASON,
            ),
        )
    entries = [unique[key] for key in sorted(unique)]
    payload = {"version": 1, "entries": [entry.to_dict() for entry in entries]}
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return len(entries)


def apply_baseline(
    violations: list[Violation], entries: list[BaselineEntry]
) -> tuple[list[Violation], int, list[BaselineEntry]]:
    """Split violations into (remaining, baselined-count, stale-entries)."""
    by_fingerprint = {entry.fingerprint: entry for entry in entries}
    matched: set[tuple[str, str, str, str]] = set()
    remaining: list[Violation] = []
    baselined = 0
    for violation in violations:
        entry = by_fingerprint.get(violation.fingerprint)
        if entry is None:
            remaining.append(violation)
        else:
            matched.add(entry.fingerprint)
            baselined += 1
    stale = [entry for entry in entries if entry.fingerprint not in matched]
    return remaining, baselined, stale
