"""Lint engine: file discovery, rule execution, suppressions, reporting.

This is the orchestration layer behind ``repro-bgp lint`` and
``python -m repro.analysis``: it walks the given paths, parses each
file once into a :class:`~repro.analysis.model.ModuleInfo`, runs the
per-module rules and the project-wide call-graph rules, then applies
inline suppressions and the checked-in baseline before rendering.

Exit codes: ``0`` clean (possibly via suppressions/baseline), ``1``
violations remain, ``2`` the lint configuration itself is broken
(unreadable path, malformed baseline, unknown rule code).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence, TextIO

from repro.analysis.baseline import (
    DEFAULT_BASELINE_NAME,
    BaselineEntry,
    BaselineError,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.callgraph import PROJECT_RULES
from repro.analysis.dataflow import DATAFLOW_RULES
from repro.analysis.model import ModuleInfo, Violation, build_module, module_from_source
from repro.analysis.rules import MODULE_RULES, Rule

#: Integrity findings (parse failures, malformed suppressions) that are
#: not produced by a rule object.
INTEGRITY_CODE = "RPR000"

#: Every project-wide rule: the call-graph purity rule plus the
#: sync-protocol dataflow rules (RPR030-032).
ALL_PROJECT_RULES: tuple[Rule, ...] = (*PROJECT_RULES, *DATAFLOW_RULES)

#: Directory names never descended into during discovery.
SKIPPED_DIRS = frozenset({"__pycache__", ".git", ".venv", "node_modules", "build", "dist"})


def all_rules() -> list[Rule]:
    """Every registered rule, in code order."""
    return sorted([*MODULE_RULES, *ALL_PROJECT_RULES], key=lambda rule: rule.code)


def known_codes() -> set[str]:
    """All valid rule codes (including the integrity pseudo-code)."""
    return {rule.code for rule in all_rules()} | {INTEGRITY_CODE}


class LintConfigError(ValueError):
    """The lint invocation itself is invalid (exit code 2)."""


@dataclass
class LintReport:
    """The outcome of one lint run."""

    violations: list[Violation] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    baselined: int = 0
    stale_baseline: list[BaselineEntry] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        counts = f"{len(self.violations)} violation(s) in {self.files_checked} file(s)"
        extras = []
        if self.suppressed:
            extras.append(f"{self.suppressed} suppressed inline")
        if self.baselined:
            extras.append(f"{self.baselined} baselined")
        if self.stale_baseline:
            extras.append(f"{len(self.stale_baseline)} stale baseline entr(y/ies)")
        return counts + (f" ({', '.join(extras)})" if extras else "")

    def to_dict(self) -> dict:
        return {
            "violations": [violation.to_dict() for violation in self.violations],
            "summary": {
                "files_checked": self.files_checked,
                "violations": len(self.violations),
                "suppressed": self.suppressed,
                "baselined": self.baselined,
                "stale_baseline": [entry.to_dict() for entry in self.stale_baseline],
                "ok": self.ok,
            },
        }


# ------------------------------------------------------------------ discovery
def _display_path(path: Path) -> str:
    """Path as printed and as fingerprinted: cwd-relative, POSIX separators."""
    try:
        relative = path.resolve().relative_to(Path.cwd().resolve())
        return relative.as_posix()
    except ValueError:
        return path.as_posix()


def discover_files(paths: Sequence[str]) -> list[Path]:
    """Expand the CLI path arguments into a sorted list of source files.

    Directories are walked recursively for ``*.py``; explicit file
    arguments are taken verbatim (any extension — that is how the rule
    fixtures, shipped as ``.py_`` so discovery skips them, get linted).
    """
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            files.append(path)
        elif path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                parts = set(candidate.parts)
                if parts & SKIPPED_DIRS or any(
                    part.startswith(".") for part in candidate.parts
                ):
                    continue
                files.append(candidate)
        else:
            raise LintConfigError(f"path does not exist: {raw}")
    unique: dict[str, Path] = {}
    for path in files:
        unique.setdefault(path.as_posix(), path)
    return [unique[key] for key in sorted(unique)]


def _select_codes(raw: "Sequence[str] | None") -> "set[str] | None":
    if not raw:
        return None
    codes: set[str] = set()
    for chunk in raw:
        codes.update(code.strip().upper() for code in chunk.split(",") if code.strip())
    unknown = {
        code for code in codes if not any(known.startswith(code) for known in known_codes())
    }
    if unknown:
        raise LintConfigError(
            f"unknown rule code(s) {sorted(unknown)}; known: {sorted(known_codes())}"
        )
    return codes


def _code_matches(code: str, selectors: "set[str] | None") -> bool:
    if selectors is None:
        return False
    return any(code.startswith(selector) for selector in selectors)


# ------------------------------------------------------------------- core run
def lint_paths(
    paths: Sequence[str],
    select: "Sequence[str] | None" = None,
    ignore: "Sequence[str] | None" = None,
    baseline: "Path | None" = None,
) -> LintReport:
    """Run every rule over ``paths`` and return the filtered report."""
    selected = _select_codes(select)
    ignored = _select_codes(ignore)
    report = LintReport()
    modules: list[ModuleInfo] = []
    raw_violations: list[Violation] = []
    for path in discover_files(paths):
        display = _display_path(path)
        report.files_checked += 1
        try:
            module = build_module(path, display)
        except (SyntaxError, ValueError) as exc:
            detail = getattr(exc, "msg", None) or str(exc)
            raw_violations.append(
                Violation(
                    code=INTEGRITY_CODE,
                    path=display,
                    line=getattr(exc, "lineno", 1) or 1,
                    column=(getattr(exc, "offset", 0) or 0) + 1,
                    context="<module>",
                    message=f"file does not parse: {detail}",
                )
            )
            continue
        modules.append(module)
        for line in module.malformed_suppressions:
            raw_violations.append(
                Violation(
                    code=INTEGRITY_CODE,
                    path=display,
                    line=line,
                    column=1,
                    context="<module>",
                    message=(
                        "malformed suppression: the syntax is "
                        "'# repro: noqa[RPR0xx]: reason' and the reason text "
                        "is required"
                    ),
                )
            )
        for rule in MODULE_RULES:
            raw_violations.extend(rule.check(module))
    for project_rule in ALL_PROJECT_RULES:
        raw_violations.extend(project_rule.check_project(modules))

    # --select / --ignore filtering (integrity findings always survive
    # --select so a broken file cannot slip through a narrow run).
    filtered: list[Violation] = []
    for violation in raw_violations:
        if violation.code != INTEGRITY_CODE:
            if selected is not None and not _code_matches(violation.code, selected):
                continue
            if _code_matches(violation.code, ignored):
                continue
        filtered.append(violation)

    # Inline suppressions: a matching noqa (with reason) on the
    # violation's own line wins.
    suppression_maps = {module.display_path: module.suppressions for module in modules}
    unsuppressed: list[Violation] = []
    for violation in filtered:
        suppression = suppression_maps.get(violation.path, {}).get(violation.line)
        if suppression is not None and suppression.covers(violation.code):
            report.suppressed += 1
        else:
            unsuppressed.append(violation)

    # Baseline: fingerprint matches absorb grandfathered findings.
    if baseline is not None and baseline.exists():
        entries = load_baseline(baseline)
        unsuppressed, baselined, stale = apply_baseline(unsuppressed, entries)
        report.baselined = baselined
        report.stale_baseline = stale

    report.violations = sorted(
        unsuppressed,
        key=lambda violation: (violation.path, violation.line, violation.column, violation.code),
    )
    return report


def lint_source(source: str, filename: str = "<snippet>") -> list[Violation]:
    """Lint one in-memory snippet with every rule (test/fixture helper)."""
    module = module_from_source(source, Path(filename), filename)
    violations: list[Violation] = []
    for rule in MODULE_RULES:
        violations.extend(rule.check(module))
    for project_rule in ALL_PROJECT_RULES:
        violations.extend(project_rule.check_project([module]))
    return sorted(violations, key=lambda violation: (violation.line, violation.code))


# ------------------------------------------------------------------ rendering
def render_text(report: LintReport, stream: TextIO) -> None:
    for violation in report.violations:
        print(violation.render(), file=stream)
    for entry in report.stale_baseline:
        print(
            f"note: stale baseline entry {entry.code} {entry.path} "
            f"({entry.context}) no longer matches anything — remove it",
            file=stream,
        )
    print(report.summary(), file=stream)


def _github_escape(value: str, *, property: bool = False) -> str:
    """Escape per GitHub's workflow-command rules (`%`/newlines; `,`/`:`)."""
    value = value.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    if property:
        value = value.replace(":", "%3A").replace(",", "%2C")
    return value


def render_github(report: LintReport, stream: TextIO) -> None:
    """GitHub Actions workflow commands: inline PR annotations.

    Violations become ``::error`` annotations anchored at file/line/col;
    stale baseline entries become ``::warning`` lines (no location — the
    site they pointed at no longer exists).
    """
    for violation in report.violations:
        location = (
            f"file={_github_escape(violation.path, property=True)},"
            f"line={violation.line},col={violation.column},"
            f"title={_github_escape(violation.code, property=True)}"
        )
        message = _github_escape(f"[{violation.context}] {violation.message}")
        print(f"::error {location}::{message}", file=stream)
    for entry in report.stale_baseline:
        message = _github_escape(
            f"stale baseline entry {entry.code} {entry.path} ({entry.context}) "
            "no longer matches anything — remove it"
        )
        print(f"::warning title=stale-baseline::{message}", file=stream)
    print(report.summary(), file=stream)


# ------------------------------------------------------------------------ CLI
def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the shared ``lint`` arguments on ``parser``."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument("--json", action="store_true", help="print the report as JSON")
    parser.add_argument(
        "--format",
        choices=("text", "github"),
        default="text",
        dest="format",
        help=(
            "report format: 'text' (one line per finding) or 'github' "
            "(::error workflow-command annotations for inline PR review)"
        ),
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="CODES",
        help="only run these rule codes / prefixes (comma-separated, repeatable)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        metavar="CODES",
        help="skip these rule codes / prefixes (comma-separated, repeatable)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help=f"baseline file (default: {DEFAULT_BASELINE_NAME} when it exists)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file (show grandfathered findings too)",
    )
    parser.add_argument(
        "--write-baseline",
        default=None,
        metavar="FILE",
        help="write the current findings as a pending-triage baseline and exit",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="describe every rule code and exit"
    )


def run_lint(args: argparse.Namespace) -> int:
    """Execute a parsed ``lint`` invocation; returns the exit code."""
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code} [{rule.name}] {rule.summary}")
        print(
            f"{INTEGRITY_CODE} [lint-integrity] unparseable file or malformed "
            "'# repro: noqa[...]' suppression (reason text is required)"
        )
        return 0
    baseline_path: "Path | None"
    if args.no_baseline:
        baseline_path = None
    elif args.baseline is not None:
        baseline_path = Path(args.baseline)
        if not baseline_path.exists():
            print(f"error: baseline file not found: {baseline_path}", file=sys.stderr)
            return 2
    else:
        default = Path(os.environ.get("REPRO_LINT_BASELINE", DEFAULT_BASELINE_NAME))
        baseline_path = default if default.exists() else None
    try:
        report = lint_paths(
            args.paths, select=args.select, ignore=args.ignore, baseline=baseline_path
        )
    except (LintConfigError, BaselineError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.write_baseline:
        count = write_baseline(Path(args.write_baseline), report.violations)
        print(
            f"wrote {count} baseline entr(y/ies) to {args.write_baseline} — "
            "edit every 'reason' before checking it in"
        )
        return 0
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    elif getattr(args, "format", "text") == "github":
        render_github(report, sys.stdout)
    else:
        render_text(report, sys.stdout)
    return 0 if report.ok else 1


def main(argv: "list[str] | None" = None) -> int:
    """Standalone entry point (``python -m repro.analysis``)."""
    parser = argparse.ArgumentParser(
        prog="repro-bgp lint",
        description=(
            "Project-specific static analysis: determinism, pickle-safety and "
            "shard-purity invariants, enforced mechanically."
        ),
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))
