"""Project-specific static analysis: the invariants, enforced mechanically.

Every headline property of this reproduction — byte-identical sharded
Loc-RIBs/FIBs, reproducible topologies, lossless MRT round-trips —
rests on conventions a normal linter cannot see: no per-process-salted
``hash()`` near placement or wire formats, no unseeded randomness
outside :class:`~repro.utils.rand.DeterministicRng`, module-level
picklable worker entry points, shard workers that never write shared
state, and frozen value objects whose cached hashes only move through
the sanctioned setter.  :mod:`repro.analysis` is the AST lint engine
that fails CI the moment one of those conventions is broken.

Entry points:

* ``repro-bgp lint [PATHS] [--json] [--select/--ignore CODES]
  [--baseline FILE]`` — the CLI subcommand;
* ``python -m repro.analysis`` — the same engine standalone;
* :func:`lint_paths` / :func:`lint_source` — the library API.

Rule codes: RPR001/002/003 (determinism), RPR010/011 (multiprocessing
safety), RPR020/021 (immutability discipline), RPR000 (lint
integrity).  ``repro-bgp lint --list-rules`` describes each; see the
README "Static analysis" section for the suppression (``# repro:
noqa[RPR0xx]: reason``) and baseline workflow.
"""

from repro.analysis.baseline import (
    DEFAULT_BASELINE_NAME,
    BaselineEntry,
    BaselineError,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.callgraph import PROJECT_RULES, WORKER_ENTRY_POINTS, ShardPurityRule
from repro.analysis.engine import (
    INTEGRITY_CODE,
    LintConfigError,
    LintReport,
    add_lint_arguments,
    all_rules,
    lint_paths,
    lint_source,
    main,
    run_lint,
)
from repro.analysis.model import ModuleInfo, Suppression, Violation
from repro.analysis.rules import MODULE_RULES, Rule

__all__ = [
    "BaselineEntry",
    "BaselineError",
    "DEFAULT_BASELINE_NAME",
    "INTEGRITY_CODE",
    "LintConfigError",
    "LintReport",
    "MODULE_RULES",
    "ModuleInfo",
    "PROJECT_RULES",
    "Rule",
    "ShardPurityRule",
    "Suppression",
    "Violation",
    "WORKER_ENTRY_POINTS",
    "add_lint_arguments",
    "all_rules",
    "apply_baseline",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "main",
    "run_lint",
    "write_baseline",
]
