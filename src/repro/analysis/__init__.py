"""Project-specific static analysis: the invariants, enforced mechanically.

Every headline property of this reproduction — byte-identical sharded
Loc-RIBs/FIBs, reproducible topologies, lossless MRT round-trips —
rests on conventions a normal linter cannot see: no per-process-salted
``hash()`` near placement or wire formats, no unseeded randomness
outside :class:`~repro.utils.rand.DeterministicRng`, module-level
picklable worker entry points, shard workers that never write shared
state, and frozen value objects whose cached hashes only move through
the sanctioned setter.  :mod:`repro.analysis` is the AST lint engine
that fails CI the moment one of those conventions is broken.

On top of the single-statement rules sits a dataflow layer
(:mod:`repro.analysis.dataflow`) that verifies the resident-shard
**sync protocol** itself — unrecorded holder-state mutations (RPR030),
router-config attributes missing from the epoch fingerprint (RPR031),
and module state aliased across the fork boundary (RPR032) — plus an
opt-in runtime twin (:mod:`repro.analysis.sanitizer`,
``REPRO_SANITIZE=1``) that checks the same protocol live at the pool's
dispatch points.

Entry points:

* ``repro-bgp lint [PATHS] [--json] [--format github]
  [--select/--ignore CODES] [--baseline FILE]`` — the CLI subcommand;
* ``python -m repro.analysis`` — the same engine standalone;
* :func:`lint_paths` / :func:`lint_source` — the library API.

Rule codes: RPR001/002/003 (determinism), RPR010/011 (multiprocessing
safety), RPR020/021 (immutability discipline), RPR030/031/032 (sync
protocol dataflow), RPR000 (lint integrity).  ``repro-bgp lint
--list-rules`` describes each; see the README "Static analysis"
section for the suppression (``# repro: noqa[RPR0xx]: reason``) and
baseline workflow.
"""

from repro.analysis.baseline import (
    DEFAULT_BASELINE_NAME,
    BaselineEntry,
    BaselineError,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.callgraph import PROJECT_RULES, WORKER_ENTRY_POINTS, ShardPurityRule
from repro.analysis.dataflow import (
    DATAFLOW_RULES,
    PARENT_ENTRY_POINTS,
    ConfigCoherenceRule,
    ControlFlowGraph,
    ForkAliasRule,
    ResidentStateRecordRule,
)
from repro.analysis.engine import (
    ALL_PROJECT_RULES,
    INTEGRITY_CODE,
    LintConfigError,
    LintReport,
    add_lint_arguments,
    all_rules,
    lint_paths,
    lint_source,
    main,
    run_lint,
)
from repro.analysis.model import ModuleInfo, Suppression, Violation
from repro.analysis.rules import MODULE_RULES, Rule
from repro.analysis.sanitizer import SANITIZE_ENV, ProtocolViolationError

__all__ = [
    "ALL_PROJECT_RULES",
    "BaselineEntry",
    "BaselineError",
    "ConfigCoherenceRule",
    "ControlFlowGraph",
    "DATAFLOW_RULES",
    "DEFAULT_BASELINE_NAME",
    "ForkAliasRule",
    "INTEGRITY_CODE",
    "LintConfigError",
    "LintReport",
    "MODULE_RULES",
    "ModuleInfo",
    "PARENT_ENTRY_POINTS",
    "PROJECT_RULES",
    "ProtocolViolationError",
    "ResidentStateRecordRule",
    "Rule",
    "SANITIZE_ENV",
    "ShardPurityRule",
    "Suppression",
    "Violation",
    "WORKER_ENTRY_POINTS",
    "add_lint_arguments",
    "all_rules",
    "apply_baseline",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "main",
    "run_lint",
    "write_baseline",
]
