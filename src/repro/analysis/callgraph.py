"""RPR011: shard purity — worker-reachable code must not write shared state.

The sharded subsystems (:mod:`repro.routing.shard`,
:mod:`repro.collectors.harvest`) rest on a purity contract: everything
a worker process computes flows back through the task result, never
through module-level state the parent could observe (or, worse, that a
*sequential* run would mutate differently).  This rule builds a
project-wide call graph rooted at the worker entry points and flags any
reachable function that writes module-level state.

The graph is name-resolved and deliberately over-approximate:

* ``f(...)`` resolves through the module's own defs and its
  ``from m import f`` table;
* ``mod.f(...)`` resolves through ``import m as mod`` aliases
  (including function-local imports);
* ``obj.m(...)`` resolves to **every** project method named ``m``
  unless ``m`` is a common container/stdlib method name
  (:data:`COMMON_METHOD_NAMES`) — receiver types are unknown, so
  over-linking is the safe direction;
* instantiating a project class adds an edge to its ``__init__``.

Entry points match by dotted name or, as a fallback, by bare function
name — so the rule keeps working when files move and so fixture tests
can define their own ``_run_shard``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from repro.analysis.model import ModuleInfo, Violation
from repro.analysis.rules import Rule

#: The worker-side entry points the shard pools dispatch to, plus the
#: per-shard convergence core they all call into.
WORKER_ENTRY_POINTS: tuple[str, ...] = (
    "repro.routing.shard._initialize_worker",
    "repro.routing.shard._run_shard",
    "repro.routing.shard._sync_worker",
    "repro.collectors.harvest._run_harvest_shard",
    "repro.routing.engine.BgpSimulator._apply_local",
)

#: Attribute-call names never resolved to project methods: they are
#: overwhelmingly builtin container / stdlib methods, and resolving
#: them by bare name would connect the whole graph.
COMMON_METHOD_NAMES = frozenset(
    {
        "add",
        "append",
        "as_posix",
        "cancel",
        "clear",
        "close",
        "copy",
        "count",
        "decode",
        "discard",
        "done",
        "encode",
        "endswith",
        "exists",
        "extend",
        "find",
        "flush",
        "format",
        "get",
        "group",
        "index",
        "insert",
        "items",
        "join",
        "keys",
        "kill",
        "lower",
        "lstrip",
        "match",
        "mkdir",
        "partition",
        "pop",
        "popitem",
        "put",
        "read",
        "readline",
        "readlines",
        "remove",
        "replace",
        "result",
        "reverse",
        "rpartition",
        "rsplit",
        "rstrip",
        "search",
        "seek",
        "setdefault",
        "shutdown",
        "sort",
        "split",
        "start",
        "startswith",
        "strip",
        "sub",
        "submit",
        "tell",
        "terminate",
        "touch",
        "union",
        "unlink",
        "update",
        "upper",
        "values",
        "values_list",
        "write",
        "writelines",
    }
)

#: Method names that mutate their receiver in place.
MUTATOR_METHODS = frozenset(
    {
        "append",
        "add",
        "update",
        "pop",
        "clear",
        "extend",
        "remove",
        "discard",
        "insert",
        "setdefault",
        "popitem",
        "appendleft",
        "popleft",
    }
)


@dataclass
class FunctionNode:
    """One function or method in the project graph."""

    dotted: str
    simple_name: str
    is_method: bool
    node: "ast.FunctionDef | ast.AsyncFunctionDef"
    module: ModuleInfo


def _iter_defs(
    module: ModuleInfo,
) -> Iterator[tuple[str, "ast.FunctionDef | ast.AsyncFunctionDef", bool]]:
    """Yield ``(qualname-within-module, node, is_method)`` for top two levels.

    Nested (closure) functions are analysed as part of their enclosing
    function, so only module-level functions and class methods become
    graph nodes.
    """
    for statement in module.tree.body:
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield statement.name, statement, False
        elif isinstance(statement, ast.ClassDef):
            for member in statement.body:
                if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield f"{statement.name}.{member.name}", member, True


class CallGraph:
    """Name-resolved project call graph over a set of modules."""

    def __init__(self, modules: list[ModuleInfo]):
        self.functions: dict[str, FunctionNode] = {}
        self.by_simple_name: dict[str, list[str]] = {}
        self.classes: dict[str, str] = {}  # class dotted/simple -> __init__ dotted
        for module in modules:
            for qualname, node, is_method in _iter_defs(module):
                dotted = f"{module.module}.{qualname}"
                function = FunctionNode(
                    dotted=dotted,
                    simple_name=node.name,
                    is_method=is_method,
                    node=node,
                    module=module,
                )
                self.functions[dotted] = function
                self.by_simple_name.setdefault(node.name, []).append(dotted)
            for statement in module.tree.body:
                if isinstance(statement, ast.ClassDef):
                    init = f"{module.module}.{statement.name}.__init__"
                    if init in self.functions:
                        self.classes[f"{module.module}.{statement.name}"] = init
                        self.classes.setdefault(statement.name, init)

    # ------------------------------------------------------------- resolution
    def _resolve_call(self, caller: FunctionNode, call: ast.Call) -> list[str]:
        module = caller.module
        func = call.func
        targets: list[str] = []
        if isinstance(func, ast.Name):
            name = func.id
            for dotted in (
                module.from_imports.get(name),
                f"{module.module}.{name}",
            ):
                if dotted is None:
                    continue
                if dotted in self.functions:
                    targets.append(dotted)
                elif dotted in self.classes:
                    targets.append(self.classes[dotted])
            if not targets and name in self.classes:
                targets.append(self.classes[name])
        elif isinstance(func, ast.Attribute):
            parts = [func.attr]
            value = func.value
            while isinstance(value, ast.Attribute):
                parts.append(value.attr)
                value = value.value
            if isinstance(value, ast.Name) and value.id in module.module_aliases:
                dotted = ".".join(
                    [module.module_aliases[value.id], *reversed(parts)]
                )
                if dotted in self.functions:
                    targets.append(dotted)
                elif dotted in self.classes:
                    targets.append(self.classes[dotted])
            if not targets and len(parts) == 1:
                method = parts[0]
                if (
                    not method.startswith("__")
                    and method not in COMMON_METHOD_NAMES
                ):
                    targets.extend(
                        dotted
                        for dotted in self.by_simple_name.get(method, ())
                        if self.functions[dotted].is_method
                    )
        return targets

    def reachable_from(self, entry_points: tuple[str, ...]) -> list[FunctionNode]:
        """BFS closure over the entry points (dotted or bare-name match)."""
        roots: list[str] = []
        for entry in entry_points:
            if entry in self.functions:
                roots.append(entry)
                continue
            simple = entry.rsplit(".", 1)[-1]
            roots.extend(self.by_simple_name.get(simple, ()))
        seen: set[str] = set()
        order: list[str] = []
        queue = list(dict.fromkeys(roots))
        while queue:
            dotted = queue.pop(0)
            if dotted in seen:
                continue
            seen.add(dotted)
            order.append(dotted)
            caller = self.functions[dotted]
            for call in ast.walk(caller.node):
                if isinstance(call, ast.Call):
                    queue.extend(self._resolve_call(caller, call))
        return [self.functions[dotted] for dotted in order]


def _local_bindings(function: "ast.FunctionDef | ast.AsyncFunctionDef") -> set[str]:
    """Names bound inside the function (these shadow module globals)."""
    bound: set[str] = set()
    args = function.args
    for arg in [
        *args.posonlyargs,
        *args.args,
        *args.kwonlyargs,
        *( [args.vararg] if args.vararg else [] ),
        *( [args.kwarg] if args.kwarg else [] ),
    ]:
        bound.add(arg.arg)
    for node in ast.walk(function):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            bound.add(node.id)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for name in node.names:
                bound.add((name.asname or name.name).split(".")[0])
    return bound


def _module_state_writes(function: FunctionNode) -> Iterator[tuple[ast.AST, str]]:
    """Yield ``(site, state-name)`` for every module-level write in the body."""
    node = function.node
    module = function.module
    declared_global: set[str] = set()
    for statement in ast.walk(node):
        if isinstance(statement, ast.Global):
            declared_global.update(statement.names)
    local = _local_bindings(node) - declared_global
    for leaf in ast.walk(node):
        if isinstance(leaf, ast.Name) and isinstance(leaf.ctx, (ast.Store, ast.Del)):
            if leaf.id in declared_global:
                yield leaf, leaf.id
        elif isinstance(leaf, ast.Subscript) and isinstance(
            leaf.ctx, (ast.Store, ast.Del)
        ):
            target = leaf.value
            if (
                isinstance(target, ast.Name)
                and target.id in module.module_level_names
                and target.id not in local
            ):
                yield leaf, target.id
        elif isinstance(leaf, ast.Attribute) and isinstance(
            leaf.ctx, (ast.Store, ast.Del)
        ):
            value = leaf.value
            while isinstance(value, ast.Attribute):
                value = value.value
            if isinstance(value, ast.Name) and value.id in module.module_aliases:
                yield leaf, f"{module.module_aliases[value.id]}.{leaf.attr}"
        elif isinstance(leaf, ast.Call):
            func = leaf.func
            if isinstance(func, ast.Attribute) and func.attr in MUTATOR_METHODS:
                receiver = func.value
                if (
                    isinstance(receiver, ast.Name)
                    and receiver.id in module.module_level_names
                    and receiver.id not in local
                    and receiver.id not in declared_global
                ):
                    yield leaf, receiver.id


class ShardPurityRule(Rule):
    """RPR011: worker-reachable functions must not write module state."""

    code = "RPR011"
    name = "shard-purity"
    summary = (
        "a function reachable from a shard-worker entry point writes "
        "module-level state; workers must return results through the task "
        "payload only"
    )

    def __init__(self, entry_points: tuple[str, ...] = WORKER_ENTRY_POINTS):
        self.entry_points = entry_points

    def check(self, module: ModuleInfo) -> Iterator[Violation]:
        # Project rule: per-module checking happens in check_project.
        return iter(())

    def check_project(self, modules: list[ModuleInfo]) -> Iterator[Violation]:
        graph = CallGraph(modules)
        for function in graph.reachable_from(self.entry_points):
            for site, state_name in _module_state_writes(function):
                yield function.module.violation(
                    self.code,
                    site,
                    f"worker-reachable function writes module-level state "
                    f"'{state_name}'; shard workers must ship results through "
                    "the task payload, not shared module state",
                    context=function.module.context(function.node),
                )


#: The project-wide rules (need every module at once).
PROJECT_RULES: tuple[ShardPurityRule, ...] = (ShardPurityRule(),)
