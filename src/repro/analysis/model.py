"""Core data model of the lint engine: violations, parsed modules, suppressions.

A :class:`ModuleInfo` is one parsed source file plus the derived views
every rule needs — parent links, enclosing-scope qualnames, the
module's import tables, module-level assignment targets, and the inline
``# repro: noqa[...]`` suppression map.  Rules never re-parse or
re-walk for this bookkeeping; they receive the finished ``ModuleInfo``.

Violation fingerprints are deliberately **line-free**: a baseline entry
matches ``(code, path, context, message)`` so unrelated edits above a
baselined site do not un-baseline it.  Messages therefore never embed
line numbers (the line lives on the violation itself for display).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

#: Inline suppression syntax: ``# repro: noqa[RPR001]: reason text`` —
#: one or more comma-separated codes, and a *required* human reason.
NOQA_PATTERN = re.compile(
    r"#\s*repro:\s*noqa\[(?P<codes>[A-Za-z0-9_,\s]*)\]"
    r"(?:\s*:\s*(?P<reason>.*\S))?\s*$"
)


@dataclass(frozen=True)
class Violation:
    """One rule finding at one source location."""

    code: str
    path: str
    line: int
    column: int
    context: str
    message: str

    @property
    def fingerprint(self) -> tuple[str, str, str, str]:
        """The line-free identity used by baseline matching."""
        return (self.code, self.path, self.context, self.message)

    def render(self) -> str:
        """The one-line ``path:line:col: CODE message`` form."""
        return f"{self.path}:{self.line}:{self.column}: {self.code} {self.message}"

    def to_dict(self) -> dict:
        """JSON-serializable form (``--json`` output and baselines)."""
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "context": self.context,
            "message": self.message,
        }


@dataclass(frozen=True)
class Suppression:
    """One parsed ``# repro: noqa[...]`` comment."""

    line: int
    codes: tuple[str, ...]
    reason: str

    def covers(self, code: str) -> bool:
        """Whether this suppression names ``code``."""
        return code in self.codes


@dataclass
class ModuleInfo:
    """A parsed source file plus the derived views rules consume."""

    path: Path
    display_path: str
    module: str
    source: str
    tree: ast.Module
    #: child AST node -> parent AST node, for the whole tree.
    parents: dict[ast.AST, ast.AST] = field(default_factory=dict)
    #: ``import x as y`` table (anywhere in the file): alias -> module.
    module_aliases: dict[str, str] = field(default_factory=dict)
    #: ``from m import x as y`` table: alias -> "m.x".
    from_imports: dict[str, str] = field(default_factory=dict)
    #: Names assigned at module scope (module-level mutable state).
    module_level_names: set[str] = field(default_factory=set)
    #: line -> suppression parsed from that physical line.
    suppressions: dict[int, Suppression] = field(default_factory=dict)
    #: Lines holding a ``noqa`` comment with no codes or no reason text.
    malformed_suppressions: list[int] = field(default_factory=list)
    _qualname_cache: dict[int, str] = field(default_factory=dict)
    _node_index: "dict[type, list[ast.AST]] | None" = field(default=None, repr=False)

    # ---------------------------------------------------------- shared walks
    def nodes(self, kind) -> list[ast.AST]:
        """All nodes of ``kind`` (a type or tuple of types).

        The index is built with **one** ``ast.walk`` on first use and
        shared by every rule, so a lint run walks each tree once instead
        of once per rule.  Single-type requests keep ``ast.walk`` order
        (what :func:`iter_nodes` produced); tuple requests merge the
        per-type buckets into source order.
        """
        if self._node_index is None:
            index: dict[type, list[ast.AST]] = {}
            for node in ast.walk(self.tree):
                index.setdefault(type(node), []).append(node)
            self._node_index = index
        if isinstance(kind, tuple):
            merged: list[ast.AST] = []
            for one in kind:
                merged.extend(self._node_index.get(one, ()))
            merged.sort(key=lambda node: (getattr(node, "lineno", 0), getattr(node, "col_offset", 0)))
            return merged
        return self._node_index.get(kind, [])

    # ------------------------------------------------------------- scope views
    def enclosing_defs(self, node: ast.AST) -> list[ast.AST]:
        """Def/class chain from outermost to innermost around ``node``."""
        chain: list[ast.AST] = []
        current = self.parents.get(node)
        while current is not None:
            if isinstance(
                current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                chain.append(current)
            current = self.parents.get(current)
        chain.reverse()
        return chain

    def enclosing_function(self, node: ast.AST) -> "ast.FunctionDef | ast.AsyncFunctionDef | None":
        """Innermost function containing ``node`` (None at module scope)."""
        current = self.parents.get(node)
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return current
            current = self.parents.get(current)
        return None

    def context(self, node: ast.AST) -> str:
        """Dotted qualname of the scope holding ``node`` (``<module>`` at top)."""
        cached = self._qualname_cache.get(id(node))
        if cached is not None:
            return cached
        chain = self.enclosing_defs(node)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            chain = chain + [node]
        name = ".".join(part.name for part in chain) or "<module>"
        self._qualname_cache[id(node)] = name
        return name

    def violation(
        self, code: str, node: ast.AST, message: str, context: "str | None" = None
    ) -> Violation:
        """Build a violation anchored at ``node``."""
        return Violation(
            code=code,
            path=self.display_path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            context=context if context is not None else self.context(node),
            message=message,
        )


def _link_parents(tree: ast.Module) -> dict[ast.AST, ast.AST]:
    parents: dict[ast.AST, ast.AST] = {}
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            parents[child] = parent
    return parents


def _collect_imports(tree: ast.Module) -> tuple[dict[str, str], dict[str, str]]:
    """All import tables, wherever the import statement appears.

    Function-local imports (the repo's import-cycle-avoidance idiom)
    count: a rule resolving ``shard_module._run_shard`` must know
    ``shard_module`` names :mod:`repro.routing.shard` even when the
    binding happens inside the calling function.
    """
    aliases: dict[str, str] = {}
    from_imports: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                aliases[name.asname or name.name.split(".")[0]] = name.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for name in node.names:
                if name.name == "*":
                    continue
                from_imports[name.asname or name.name] = f"{node.module}.{name.name}"
    return aliases, from_imports


def _collect_module_level_names(tree: ast.Module) -> set[str]:
    """Names bound by assignment statements at module scope."""
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                for leaf in ast.walk(target):
                    if isinstance(leaf, ast.Name):
                        names.add(leaf.id)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(node.target, ast.Name):
                names.add(node.target.id)
    return names


def parse_suppressions(source: str) -> tuple[dict[int, Suppression], list[int]]:
    """Parse inline suppressions; also return lines with a missing reason."""
    suppressions: dict[int, Suppression] = {}
    missing_reason: list[int] = []
    for number, line in enumerate(source.splitlines(), start=1):
        match = NOQA_PATTERN.search(line)
        if match is None:
            continue
        codes = tuple(
            code.strip().upper() for code in match.group("codes").split(",") if code.strip()
        )
        reason = (match.group("reason") or "").strip()
        if not codes or not reason:
            missing_reason.append(number)
            continue
        suppressions[number] = Suppression(line=number, codes=codes, reason=reason)
    return suppressions, missing_reason


def module_name_for(path: Path) -> str:
    """Best-effort dotted module name (``src`` layout aware)."""
    parts = list(path.with_suffix("").parts)
    if "src" in parts:
        parts = parts[parts.index("src") + 1 :]
    else:
        parts = parts[-1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or path.stem


def build_module(path: Path, display_path: str) -> ModuleInfo:
    """Parse one file into a :class:`ModuleInfo` (raises ``SyntaxError``)."""
    return module_from_source(path.read_text(encoding="utf-8"), path, display_path)


def module_from_source(source: str, path: Path, display_path: str) -> ModuleInfo:
    """Build a :class:`ModuleInfo` from in-memory source (test snippets)."""
    tree = ast.parse(source, filename=str(path))
    aliases, from_imports = _collect_imports(tree)
    suppressions, malformed = parse_suppressions(source)
    return ModuleInfo(
        path=path,
        display_path=display_path,
        module=module_name_for(path),
        source=source,
        tree=tree,
        parents=_link_parents(tree),
        module_aliases=aliases,
        from_imports=from_imports,
        module_level_names=_collect_module_level_names(tree),
        suppressions=suppressions,
        malformed_suppressions=malformed,
    )


def iter_nodes(tree: ast.AST, kind) -> Iterator[ast.AST]:
    """``ast.walk`` filtered to one node type (or tuple of types)."""
    for node in ast.walk(tree):
        if isinstance(node, kind):
            yield node
