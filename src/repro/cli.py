"""Command-line interface: ``repro-bgp``.

Sub-commands:

* ``report``    — generate the synthetic dataset and print every Section 4
  table/figure;
* ``attacks``   — run the canonical attack scenarios and print Table 3;
* ``sweep``     — run the Section 7.6 blackhole-community sweep;
* ``propagation`` — run the Section 7.2 propagation check for both injection
  platforms;
* ``export-mrt`` — write the synthetic dataset to an MRT file.
"""

from __future__ import annotations

import argparse
import sys

from repro import __version__


def _build_dataset(seed: int, scale: str):
    from repro.datasets.synthetic import DatasetParameters, build_default_dataset
    from repro.topology.generator import TopologyGenerator, TopologyParameters

    scales = {
        "small": TopologyParameters(tier1_count=3, transit_count=20, stub_count=80, seed=seed),
        "default": TopologyParameters(seed=seed),
        "large": TopologyParameters(tier1_count=8, transit_count=120, stub_count=700, seed=seed),
    }
    topology = TopologyGenerator(scales[scale]).generate()
    return build_default_dataset(topology, DatasetParameters(seed=seed))


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.measurement.report import MeasurementReport

    dataset = _build_dataset(args.seed, args.scale)
    report = MeasurementReport(dataset.archive, dataset.topology, dataset.blackhole_list)
    print(report.full_report())
    return 0


def _cmd_attacks(_args: argparse.Namespace) -> int:
    from repro.attacks.feasibility import build_feasibility_matrix

    matrix = build_feasibility_matrix()
    print(matrix.to_table().render())
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.datasets.giotsas import build_blackhole_list
    from repro.probing.atlas import AtlasPlatform
    from repro.topology.generator import TopologyGenerator, TopologyParameters
    from repro.wild.blackhole_sweep import BlackholeSweep
    from repro.wild.peering import attach_peering_testbed

    parameters = TopologyParameters(
        tier1_count=3, transit_count=25, stub_count=80, seed=args.seed
    )
    topology = TopologyGenerator(parameters).generate()
    platform = attach_peering_testbed(topology)
    atlas = AtlasPlatform.deploy(topology, probe_count=args.probes, exclude_asns={platform.asn})
    blackhole_list = build_blackhole_list(topology, seed=args.seed)
    sweep = BlackholeSweep(topology, platform, atlas, blackhole_list)
    result = sweep.run(confirm=not args.no_confirm)
    effective = result.effective_communities()
    print(f"communities swept:        {len(result.outcomes)}")
    print(f"inducing blackholing:     {len(effective)} ({100 * result.effective_fraction():.1f}%)")
    print(
        f"vantage points affected:  {len(result.affected_probes())} of {result.probe_count}"
        f" ({100 * result.affected_probe_fraction():.1f}%)"
    )
    print(f"confirmation pass agrees: {result.confirmed}")
    return 0


def _cmd_propagation(args: argparse.Namespace) -> int:
    from repro.collectors.platform import CollectorDeployment
    from repro.topology.generator import TopologyGenerator, TopologyParameters
    from repro.wild.peering import attach_peering_testbed, attach_research_network
    from repro.wild.propagation_check import run_propagation_check

    parameters = TopologyParameters(
        tier1_count=3, transit_count=30, stub_count=120, seed=args.seed
    )
    topology = TopologyGenerator(parameters).generate()
    peering = attach_peering_testbed(topology, upstream_count=10)
    research = attach_research_network(topology)
    deployment = CollectorDeployment.default_deployment(topology)
    for platform in (research, peering):
        result = run_propagation_check(topology, platform, deployment)
        print(
            f"{platform.name}: benign community {result.benign_community} on {result.test_prefix} "
            f"forwarded by {result.forwarding_count} transit providers "
            f"(of {len(result.ases_on_paths)} on-path ASes)"
        )
    return 0


def _cmd_export_mrt(args: argparse.Namespace) -> int:
    dataset = _build_dataset(args.seed, args.scale)
    count = dataset.archive.write_mrt(args.output)
    print(f"wrote {count} MRT records to {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-bgp",
        description="Reproduction harness for 'BGP Communities: Even more Worms in the Routing Can'",
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    report = subparsers.add_parser("report", help="print the Section 4 measurement report")
    report.add_argument("--seed", type=int, default=42)
    report.add_argument("--scale", choices=["small", "default", "large"], default="small")
    report.set_defaults(func=_cmd_report)

    attacks = subparsers.add_parser("attacks", help="run the attack scenarios (Table 3)")
    attacks.set_defaults(func=_cmd_attacks)

    sweep = subparsers.add_parser("sweep", help="run the Section 7.6 blackhole sweep")
    sweep.add_argument("--seed", type=int, default=42)
    sweep.add_argument("--probes", type=int, default=60)
    sweep.add_argument("--no-confirm", action="store_true")
    sweep.set_defaults(func=_cmd_sweep)

    propagation = subparsers.add_parser(
        "propagation", help="run the Section 7.2 propagation check"
    )
    propagation.add_argument("--seed", type=int, default=42)
    propagation.set_defaults(func=_cmd_propagation)

    export = subparsers.add_parser("export-mrt", help="write the synthetic dataset as MRT")
    export.add_argument("output")
    export.add_argument("--seed", type=int, default=42)
    export.add_argument("--scale", choices=["small", "default", "large"], default="small")
    export.set_defaults(func=_cmd_export_mrt)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
