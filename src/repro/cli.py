"""Command-line interface: ``repro-bgp``.

The CLI is registry-driven: every scenario in the repo is a registered
experiment (see :mod:`repro.experiments`) and runs through the common
spec -> lifecycle -> result pipeline.

Sub-commands:

* ``run <experiment>`` — run any registered experiment
  (``--param k=v`` overrides, ``--json`` for the serializable result);
* ``list``      — list the registered experiments;
* ``report``    — alias for ``run report``: the Section 4 measurement
  report over the synthetic dataset;
* ``attacks``   — alias for ``run feasibility``: the Table 3 matrix;
* ``sweep``     — alias for ``run blackhole-sweep`` (Section 7.6);
* ``propagation`` — alias for ``run propagation-check`` (Section 7.2);
* ``export-mrt`` — write an observation archive (synthetic dataset or a
  live, optionally sharded collector harvest) to an MRT file;
* ``stream``    — feed a JSON-lines announce/withdraw event stream
  through the coalescing front end (:mod:`repro.routing.stream`) into a
  (optionally sharded, resident) simulation;
* ``lint``      — run the project's static-analysis rules
  (:mod:`repro.analysis`): determinism, pickle-safety and shard-purity
  invariants, with inline suppressions and a checked-in baseline.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro import __version__


def _build_dataset(seed: int, scale: str):
    """The synthetic dataset for a seed/scale pair (spec-driven topology)."""
    from repro.datasets.synthetic import DatasetParameters, build_default_dataset
    from repro.experiments import ExperimentSpec

    spec = ExperimentSpec(name="report", seed=seed, scale=scale)
    return build_default_dataset(spec.build_topology(), DatasetParameters(seed=seed))


def _parse_params(pairs: list[str], parser: argparse.ArgumentParser | None = None) -> dict:
    """Parse repeated ``--param key=value`` flags (values read as JSON when possible).

    Malformed tokens fail through ``parser.error`` (usage line, the
    offending token named, exit code 2) when a parser is given.
    """

    def fail(message: str) -> None:
        if parser is not None:
            parser.error(message)
        raise SystemExit(f"error: {message}")

    params: dict = {}
    for pair in pairs:
        key, separator, raw = pair.partition("=")
        if not separator or not key:
            fail(f"argument --param: expected KEY=VALUE, got {pair!r}")
        if key in ("seed", "scale"):
            fail(f"argument --param: use --{key} instead of --param {pair!r}")
        try:
            params[key] = json.loads(raw)
        except json.JSONDecodeError:
            params[key] = raw
    return params


def _run_named(name: str, seed: int, scale: str | None = None, **params):
    """Build the experiment's default spec with overrides and run it."""
    from repro.experiments import get

    experiment_cls = get(name)
    spec = experiment_cls.default_spec(seed=seed, scale=scale, **params)
    experiment = experiment_cls(spec)
    return experiment, experiment.run()


def _print_outcome(experiment, result, as_json: bool = False) -> int:
    """Render one result (text or JSON); exit code reflects the status."""
    from repro.experiments import ExperimentStatus

    if as_json:
        print(result.to_json(indent=2))
    elif result.status is ExperimentStatus.ERROR:
        print(f"error: {result.error}", file=sys.stderr)
    else:
        print(experiment.render_text(result))
    return 0 if result.succeeded else 1


# ------------------------------------------------------------ registry-driven
def _cmd_run(args: argparse.Namespace) -> int:
    from repro.exceptions import ExperimentError
    from repro.experiments import get

    parser: argparse.ArgumentParser = args.parser
    params = _parse_params(args.param, parser)
    try:
        experiment_cls = get(args.experiment)
    except ExperimentError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    # Unknown parameter names fail as argparse errors naming the exact
    # offending --param token, before any spec or topology work starts.
    known = set(experiment_cls.default_params) | set(experiment_cls.optional_params)
    for token in args.param:
        key = token.partition("=")[0]
        if key and key not in known:
            parser.error(
                f"argument --param: unknown parameter {key!r} for experiment "
                f"{args.experiment!r} (from {token!r}); known: "
                f"{', '.join(sorted(known)) or 'none'}"
            )
    if getattr(args, "residency", None) is not None:
        params.setdefault("residency", args.residency)
    try:
        spec = experiment_cls.default_spec(seed=args.seed, scale=args.scale, **params)
        experiment = experiment_cls(spec)
        result = experiment.run()
    except ExperimentError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.output:
        from repro.experiments import write_results

        write_results(args.output, [result])
    return _print_outcome(experiment, result, as_json=args.json)


def _cmd_list(args: argparse.Namespace) -> int:
    from repro.experiments import available, get

    names = available()
    if args.json:
        catalogue = {
            name: {
                "section": get(name).paper_section,
                "description": get(name).description,
            }
            for name in names
        }
        print(json.dumps(catalogue, indent=2))
        return 0
    width = max(len(name) for name in names)
    section_width = max(len(get(name).paper_section) for name in names)
    for name in names:
        experiment_cls = get(name)
        print(
            f"{name:<{width}}  {experiment_cls.paper_section:<{section_width}}"
            f"  {experiment_cls.description}"
        )
    return 0


# ----------------------------------------------------------- legacy aliases
def _cmd_report(args: argparse.Namespace) -> int:
    experiment, result = _run_named("report", args.seed, args.scale)
    return _print_outcome(experiment, result)


def _cmd_attacks(args: argparse.Namespace) -> int:
    experiment, result = _run_named("feasibility", args.seed)
    return _print_outcome(experiment, result)


def _cmd_sweep(args: argparse.Namespace) -> int:
    experiment, result = _run_named(
        "blackhole-sweep", args.seed, probes=args.probes, confirm=not args.no_confirm
    )
    return _print_outcome(experiment, result)


def _cmd_propagation(args: argparse.Namespace) -> int:
    experiment, result = _run_named("propagation-check", args.seed)
    return _print_outcome(experiment, result)


def _parse_shards(value: str) -> int | str:
    """argparse type for ``--shards``: an integer or ``auto``."""
    if value == "auto":
        return value
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer or 'auto', got {value!r}")


def _cmd_export_mrt(args: argparse.Namespace) -> int:
    if args.source != "harvest" and args.shards is not None:
        raise SystemExit(
            "error: --shards only applies to --source harvest "
            "(the synthetic generator has nothing to parallelize)"
        )
    if args.source == "harvest":
        from repro.collectors.platform import CollectorDeployment
        from repro.experiments import ExperimentSpec
        from repro.routing.engine import BgpSimulator

        spec = ExperimentSpec(name="report", seed=args.seed, scale=args.scale)
        topology = spec.build_topology()
        # The shard policy drives both halves of the pipeline: the
        # convergence of the originations and the collector harvest.
        simulator = BgpSimulator(topology, shards=args.shards)
        try:
            simulator.announce_originated()
            deployment = CollectorDeployment.default_deployment(topology, seed=args.seed)
            archive = deployment.collect_from_simulator(simulator, shards=args.shards)
        finally:
            simulator.close()
    else:
        archive = _build_dataset(args.seed, args.scale).archive
    count = archive.write_mrt(args.output)
    print(f"wrote {count} MRT records to {args.output}")
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    """Feed a JSON-lines event stream through the coalescing front end."""
    from repro.exceptions import RoutingError
    from repro.experiments import ExperimentSpec
    from repro.routing.engine import BgpSimulator
    from repro.routing.stream import DEFAULT_WINDOW, SimulatorService, read_event_stream

    spec = ExperimentSpec(name="report", seed=args.seed, scale=args.scale)
    topology = spec.build_topology()
    simulator = BgpSimulator(topology, shards=args.shards)
    try:
        if args.preseed:
            simulator.announce_originated()
        window = args.window if args.window is not None else DEFAULT_WINDOW
        service = SimulatorService(simulator, window=window, residency=args.residency)
        try:
            # The context manager scopes the --residency provider over
            # the whole session (and drains the buffer on clean exit,
            # though the explicit drain below keeps the error handling
            # in one place).
            with service:
                if args.events == "-":
                    for event in read_event_stream(sys.stdin):
                        service.feed(event)
                else:
                    with open(args.events, "r", encoding="utf-8") as handle:
                        for event in read_event_stream(handle):
                            service.feed(event)
                service.drain()
        except (RoutingError, OSError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        stats = service.stats
        summary = {
            "events_seen": stats.events_seen,
            "events_coalesced": stats.events_coalesced,
            "events_applied": stats.events_applied,
            "batches": stats.batches,
            "prefixes": len(simulator.report.prefixes),
            "announcements_processed": simulator.report.announcements_processed,
            "rounds": simulator.report.rounds,
        }
        if args.json:
            print(json.dumps(summary, indent=2))
        else:
            print(
                f"{stats.events_seen} events in, {stats.events_coalesced} coalesced away, "
                f"{stats.events_applied} applied in {stats.batches} batch(es)"
            )
            print(
                f"{summary['prefixes']} prefixes converged; "
                f"{summary['announcements_processed']} announcements processed "
                f"over {summary['rounds']} worklist steps"
            )
    finally:
        simulator.close()
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import run_lint

    return run_lint(args)


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-bgp",
        description="Reproduction harness for 'BGP Communities: Even more Worms in the Routing Can'",
    )
    from repro.experiments import SCALE_PRESETS

    scales = list(SCALE_PRESETS)
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    # Shared parent parsers: every subcommand takes --seed the same way,
    # and the dataset-driven ones share --scale.
    seeded = argparse.ArgumentParser(add_help=False)
    seeded.add_argument("--seed", type=int, default=42, help="deterministic seed")
    scaled = argparse.ArgumentParser(add_help=False)
    scaled.add_argument("--scale", choices=scales, default="small", help="topology size")

    run = subparsers.add_parser(
        "run", parents=[seeded], help="run a registered experiment by name"
    )
    run.add_argument("experiment", help="registry name (see the 'list' subcommand)")
    run.add_argument("--scale", choices=scales, default=None, help="topology size preset")
    run.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="experiment parameter override (repeatable; value parsed as JSON)",
    )
    run.add_argument(
        "--residency",
        choices=["auto", "pinned", "none"],
        default=None,
        help="shard-pool residency policy scoped over the run "
        "(shorthand for --param residency=...)",
    )
    run.add_argument("--json", action="store_true", help="print the serializable result")
    run.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="write the result to FILE as JSON lines (replay with experiments.load_results)",
    )
    run.set_defaults(func=_cmd_run, parser=run)

    listing = subparsers.add_parser("list", help="list the registered experiments")
    listing.add_argument("--json", action="store_true", help="print the catalogue as JSON")
    listing.set_defaults(func=_cmd_list)

    report = subparsers.add_parser(
        "report", parents=[seeded, scaled], help="print the Section 4 measurement report"
    )
    report.set_defaults(func=_cmd_report)

    attacks = subparsers.add_parser(
        "attacks", parents=[seeded], help="run the attack scenarios (Table 3)"
    )
    attacks.set_defaults(func=_cmd_attacks)

    sweep = subparsers.add_parser(
        "sweep", parents=[seeded], help="run the Section 7.6 blackhole sweep"
    )
    sweep.add_argument("--probes", type=int, default=60)
    sweep.add_argument("--no-confirm", action="store_true")
    sweep.set_defaults(func=_cmd_sweep)

    propagation = subparsers.add_parser(
        "propagation", parents=[seeded], help="run the Section 7.2 propagation check"
    )
    propagation.set_defaults(func=_cmd_propagation)

    export = subparsers.add_parser(
        "export-mrt", parents=[seeded, scaled], help="write an observation archive as MRT"
    )
    export.add_argument("output")
    export.add_argument(
        "--source",
        choices=["synthetic", "harvest"],
        default="synthetic",
        help="synthetic dataset generator, or a live harvest of the simulated collectors",
    )
    export.add_argument(
        "--shards",
        type=_parse_shards,
        default=None,
        metavar="K",
        help="fan the live convergence + harvest over K worker processes "
        "(or 'auto'; harvest source only)",
    )
    export.set_defaults(func=_cmd_export_mrt)

    stream = subparsers.add_parser(
        "stream",
        parents=[seeded, scaled],
        help="feed a JSON-lines announce/withdraw event stream into a simulation",
        description=(
            "Read one JSON object per line — "
            '{"origin": 65001, "prefix": "10.0.0.0/24", "withdraw": false, '
            '"communities": ["65001:666"], "spoofed_origin": 0} '
            "(only origin and prefix are required) — coalesce per-(origin, prefix) "
            "bursts last-writer-wins, and converge the batches on the topology "
            "the --seed/--scale spec describes."
        ),
    )
    stream.add_argument("events", help="JSON-lines event file, or '-' for stdin")
    stream.add_argument(
        "--window",
        type=int,
        default=None,
        metavar="N",
        help="buffered (origin, prefix) keys per automatic drain "
        "(default: repro.routing.stream.DEFAULT_WINDOW)",
    )
    stream.add_argument(
        "--shards",
        type=_parse_shards,
        default=None,
        metavar="K",
        help="propagation shard policy for the convergence batches (or 'auto')",
    )
    stream.add_argument(
        "--residency",
        choices=["auto", "pinned", "none"],
        default=None,
        help="shard-pool residency policy scoped over the stream session",
    )
    stream.add_argument(
        "--preseed",
        action="store_true",
        help="announce the topology's recorded originations before the stream",
    )
    stream.add_argument("--json", action="store_true", help="print the summary as JSON")
    stream.set_defaults(func=_cmd_stream)

    from repro.analysis import add_lint_arguments

    lint = subparsers.add_parser(
        "lint",
        help="run the project's determinism / pickle-safety / shard-purity lints",
        description=(
            "AST-based static analysis of the repo's own invariants: stable "
            "hashing (RPR001), seeded randomness (RPR002), order-stable "
            "iteration (RPR003), picklable worker callables (RPR010), shard "
            "purity (RPR011), and frozen-dataclass discipline (RPR020/021). "
            "Suppress inline with '# repro: noqa[RPR0xx]: reason'; "
            "grandfather with a baseline file."
        ),
    )
    add_lint_arguments(lint)
    lint.set_defaults(func=_cmd_lint)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
