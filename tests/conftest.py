"""Shared fixtures: a small generated Internet and a synthetic dataset over it.

Session-scoped fixtures keep the suite fast: the topology and dataset
are generated once and shared read-only by the measurement and attack
tests.
"""

from __future__ import annotations

import pytest

from repro.collectors.platform import CollectorDeployment
from repro.datasets.synthetic import (
    DatasetParameters,
    SyntheticDatasetBuilder,
)
from repro.topology.generator import TopologyGenerator, TopologyParameters


SMALL_PARAMETERS = TopologyParameters(
    tier1_count=3,
    transit_count=20,
    stub_count=70,
    ixp_count=2,
    seed=42,
)


@pytest.fixture(scope="session")
def small_topology():
    """A small but fully featured generated Internet."""
    return TopologyGenerator(SMALL_PARAMETERS).generate()


@pytest.fixture(scope="session")
def deployment(small_topology):
    """The four collector platforms deployed over the small topology."""
    return CollectorDeployment.default_deployment(small_topology, seed=7)


@pytest.fixture(scope="session")
def dataset(small_topology, deployment):
    """A synthetic observation dataset over the small topology."""
    builder = SyntheticDatasetBuilder(
        small_topology, deployment, DatasetParameters(seed=2018)
    )
    return builder.build()


@pytest.fixture(scope="session")
def archive(dataset):
    """The observation archive of the shared dataset."""
    return dataset.archive
