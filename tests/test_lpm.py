"""Tests for the per-family radix-trie LPM subsystem (repro.net.lpm).

Covers the trie primitives, property-style cross-checks against the old
linear-scan semantics, and the family-separation regression: an IPv4
address must never match an IPv6 prefix in any of the trie-backed
consumers (Fib, LocRib, Ip2AsMapper).
"""

from __future__ import annotations

import random

import pytest

from repro.bgp.aspath import ASPath
from repro.bgp.attributes import PathAttributes
from repro.bgp.prefix import AddressFamily, Prefix
from repro.bgp.rib import LocRib, RibSnapshot
from repro.bgp.route import RouteEntry
from repro.dataplane.fib import Fib, FibEntry
from repro.exceptions import PrefixError
from repro.net.lpm import LpmTable, RadixTrie, infer_family
from repro.probing.ip2as import Ip2AsMapper


def p(text: str) -> Prefix:
    return Prefix.from_string(text)


def linear_longest_match(table: dict[Prefix, object], address: int, family: AddressFamily):
    """The reference semantics: scan, restricted to one family."""
    best = None
    for prefix, value in table.items():
        if prefix.family != family:
            continue
        if prefix.contains_address(address):
            if best is None or prefix.length > best[0].length:
                best = (prefix, value)
    return best


class TestRadixTrie:
    def test_insert_get_delete(self):
        trie = RadixTrie(AddressFamily.IPV4)
        trie.insert(p("10.0.0.0/8"), "a")
        trie.insert(p("10.1.0.0/16"), "b")
        assert len(trie) == 2
        assert trie.get(p("10.0.0.0/8")) == "a"
        assert trie.get(p("10.1.0.0/16")) == "b"
        assert trie.get(p("10.2.0.0/16")) is None
        assert p("10.0.0.0/8") in trie
        assert trie.delete(p("10.0.0.0/8"))
        assert not trie.delete(p("10.0.0.0/8"))
        assert len(trie) == 1
        assert trie.get(p("10.0.0.0/8")) is None
        assert trie.get(p("10.1.0.0/16")) == "b"

    def test_reinsert_replaces_value(self):
        trie = RadixTrie(AddressFamily.IPV4)
        trie.insert(p("10.0.0.0/8"), "a")
        trie.insert(p("10.0.0.0/8"), "b")
        assert len(trie) == 1
        assert trie.get(p("10.0.0.0/8")) == "b"

    def test_longest_match(self):
        trie = RadixTrie(AddressFamily.IPV4)
        trie.insert(p("0.0.0.0/0"), "default")
        trie.insert(p("10.0.0.0/8"), "eight")
        trie.insert(p("10.1.0.0/16"), "sixteen")
        trie.insert(p("10.1.2.0/24"), "twentyfour")
        assert trie.longest_match(p("10.1.2.0/24").network)[1] == "twentyfour"
        assert trie.longest_match(p("10.1.9.0/24").network)[1] == "sixteen"
        assert trie.longest_match(p("10.9.0.0/16").network)[1] == "eight"
        assert trie.longest_match(p("192.0.2.0/24").network)[1] == "default"
        assert trie.longest_match(-1) is None
        assert trie.longest_match(1 << 32) is None

    def test_host_route_match(self):
        trie = RadixTrie(AddressFamily.IPV4)
        host = p("192.0.2.1/32")
        trie.insert(host, "host")
        assert trie.longest_match(host.network)[1] == "host"
        assert trie.longest_match(host.network + 1) is None

    def test_covering_and_covered(self):
        trie = RadixTrie(AddressFamily.IPV4)
        trie.insert(p("10.0.0.0/8"), "eight")
        trie.insert(p("10.1.0.0/16"), "sixteen")
        trie.insert(p("10.1.2.0/24"), "twentyfour")
        trie.insert(p("192.0.2.0/24"), "other")
        covering = trie.covering(p("10.1.2.0/25"))
        assert [v for _, v in covering] == ["eight", "sixteen", "twentyfour"]
        covered = {v for _, v in trie.covered(p("10.0.0.0/8"))}
        assert covered == {"eight", "sixteen", "twentyfour"}
        assert trie.covered(p("11.0.0.0/8")) == []
        assert [v for _, v in trie.covered(p("192.0.2.0/24"))] == ["other"]

    def test_family_mismatch_raises(self):
        trie = RadixTrie(AddressFamily.IPV4)
        with pytest.raises(PrefixError):
            trie.insert(p("2001:db8::/32"), "nope")

    def test_items_and_len(self):
        trie = RadixTrie(AddressFamily.IPV6)
        prefixes = [p("2001:db8::/32"), p("2001:db8:1::/48"), p("::/0")]
        for i, prefix in enumerate(prefixes):
            trie.insert(prefix, i)
        assert len(trie) == 3
        assert {prefix for prefix, _ in trie.items()} == set(prefixes)

    def test_property_random_churn_matches_linear_scan(self):
        """Random insert/delete sequences cross-checked against the linear scan."""
        rng = random.Random(20260729)
        trie = RadixTrie(AddressFamily.IPV4)
        reference: dict[Prefix, int] = {}
        for step in range(2000):
            length = rng.randint(0, 32)
            network = rng.getrandbits(32)
            prefix = Prefix.ipv4(network, length)
            if rng.random() < 0.3 and reference:
                victim = rng.choice(list(reference))
                assert trie.delete(victim)
                del reference[victim]
            else:
                trie.insert(prefix, step)
                reference[prefix] = step
            assert len(trie) == len(reference)
        # Exact lookups agree for every stored prefix.
        for prefix, value in reference.items():
            assert trie.get(prefix) == value
        # LPM agrees with the linear scan for random addresses and for
        # addresses inside stored prefixes (hits are likelier there).
        probes = [rng.getrandbits(32) for _ in range(300)]
        probes += [prefix.network for prefix in list(reference)[:300]]
        for address in probes:
            expected = linear_longest_match(reference, address, AddressFamily.IPV4)
            got = trie.longest_match(address)
            assert got == expected

    def test_property_delete_everything_leaves_empty_trie(self):
        rng = random.Random(7)
        trie = RadixTrie(AddressFamily.IPV4)
        prefixes = {Prefix.ipv4(rng.getrandbits(32), rng.randint(1, 32)) for _ in range(500)}
        for i, prefix in enumerate(prefixes):  # repro: noqa[RPR003]: property test; payload values never inspected
            trie.insert(prefix, i)
        order = list(prefixes)  # repro: noqa[RPR003]: deletion order is rng-shuffled on the next line anyway
        rng.shuffle(order)
        for prefix in order:
            assert trie.delete(prefix)
        assert len(trie) == 0
        assert trie.longest_match(rng.getrandbits(32)) is None
        # The root must have been pruned back to a bare skeleton.
        assert trie._root.left is None and trie._root.right is None


class TestLpmTable:
    def test_infer_family(self):
        assert infer_family(0) == AddressFamily.IPV4
        assert infer_family((1 << 32) - 1) == AddressFamily.IPV4
        assert infer_family(1 << 32) == AddressFamily.IPV6
        assert infer_family(-1) == AddressFamily.IPV6

    def test_families_are_separate(self):
        table = LpmTable()
        v4 = p("10.0.0.0/8")
        # IPv6 prefix whose bit pattern covers the IPv4 integer 10.0.0.1
        # when lengths are compared family-blind (the old bug).
        v6 = p("::a00:0/104")
        table.insert(v4, "v4")
        table.insert(v6, "v6")
        address = p("10.0.0.1/32").network
        assert v6.contains_address(address)  # the bit pattern really does collide
        hit = table.longest_match(address)
        assert hit is not None and hit[1] == "v4"
        hit6 = table.longest_match(address, AddressFamily.IPV6)
        assert hit6 is not None and hit6[1] == "v6"

    def test_delete_and_get(self):
        table = LpmTable()
        table.insert(p("10.0.0.0/8"), 1)
        table.insert(p("2001:db8::/32"), 2)
        assert len(table) == 2
        assert table.get(p("10.0.0.0/8")) == 1
        assert table.delete(p("10.0.0.0/8"))
        assert not table.delete(p("10.0.0.0/8"))
        assert not table.delete(p("192.0.2.0/24"))
        assert len(table) == 1
        assert p("2001:db8::/32") in table
        assert {prefix for prefix, _ in table.items()} == {p("2001:db8::/32")}
        table.clear()
        assert len(table) == 0

    def test_covering_empty_family(self):
        table = LpmTable()
        assert table.covering(p("10.0.0.0/8")) == []
        assert table.covered(p("10.0.0.0/8")) == []
        assert table.longest_match(0) is None


def route_entry(prefix: Prefix, learned_from: int = 7) -> RouteEntry:
    return RouteEntry(
        prefix=prefix,
        attributes=PathAttributes(as_path=ASPath.of(learned_from)),
        learned_from=learned_from,
    )


class TestCrossFamilyRegressions:
    """An IPv4 address must never match an IPv6 prefix (and vice versa)."""

    V4 = p("10.0.0.0/8")
    V6_COLLIDER = p("::a00:0/104")  # covers int(10.0.0.1) when family-blind
    ADDRESS = p("10.0.0.1/32").network

    def test_fib_lookup_is_family_safe(self):
        fib = Fib(1)
        fib.install(FibEntry(self.V6_COLLIDER, next_hop_asn=9))
        assert fib.lookup(self.ADDRESS) is None
        fib.install(FibEntry(self.V4, next_hop_asn=2))
        hit = fib.lookup(self.ADDRESS)
        assert hit is not None and hit.next_hop_asn == 2
        hit6 = fib.lookup(self.ADDRESS, AddressFamily.IPV6)
        assert hit6 is not None and hit6.next_hop_asn == 9

    def test_loc_rib_lookup_is_family_safe(self):
        rib = LocRib()
        rib.set_best(self.V6_COLLIDER, route_entry(self.V6_COLLIDER, learned_from=9))
        assert rib.lookup(self.ADDRESS) is None
        rib.set_best(self.V4, route_entry(self.V4, learned_from=2))
        hit = rib.lookup(self.ADDRESS)
        assert hit is not None and hit.learned_from == 2
        hit6 = rib.lookup(self.ADDRESS, AddressFamily.IPV6)
        assert hit6 is not None and hit6.learned_from == 9

    def test_ip2as_lookup_is_family_safe(self):
        mapper = Ip2AsMapper({self.V6_COLLIDER: 9})
        assert mapper.lookup(self.ADDRESS) is None
        mapper.add(self.V4, 2)
        assert mapper.lookup(self.ADDRESS) == 2
        assert mapper.lookup(self.ADDRESS, AddressFamily.IPV6) == 9
        assert mapper.lookup_prefix(p("10.1.0.0/16")) == 2
        assert mapper.lookup_prefix(p("2001:db8::/32")) is None

    def test_rib_snapshot_covering_is_family_safe(self):
        snapshot = RibSnapshot(
            asn=1,
            entries={
                self.V4: route_entry(self.V4, learned_from=2),
                self.V6_COLLIDER: route_entry(self.V6_COLLIDER, learned_from=9),
            },
        )
        covering = snapshot.covering(p("10.0.0.0/24"))
        assert [e.learned_from for e in covering] == [2]
        assert snapshot.lookup(self.ADDRESS).learned_from == 2
        assert snapshot.lookup(self.ADDRESS, AddressFamily.IPV6).learned_from == 9

    def test_rib_snapshot_entries_are_frozen(self):
        # The snapshot caches its LPM trie, which is only sound because the
        # entry table cannot be mutated after construction.
        snapshot = RibSnapshot(asn=1, entries={self.V4: route_entry(self.V4)})
        with pytest.raises(TypeError):
            snapshot.entries[self.V6_COLLIDER] = route_entry(self.V6_COLLIDER)
        assert snapshot.get(self.V4) is not None

    def test_atlas_measure_reaches_low_ipv6_targets(self):
        # A low IPv6 target (inside ::/96) has an integer address that looks
        # like IPv4; measure() must pass the target family through so the
        # lookup hits the IPv6 trie.
        from repro.dataplane.forwarding import DataPlane
        from repro.policy.community_policy import ForwardAllPolicy
        from repro.probing.atlas import AtlasPlatform, VantagePoint
        from repro.routing.engine import BgpSimulator
        from repro.topology.asys import AutonomousSystem
        from repro.topology.topology import Topology

        topology = Topology()
        for asn in (10, 20):
            topology.add_as(AutonomousSystem(asn=asn, propagation_policy=ForwardAllPolicy()))
        topology.add_customer_link(10, 20)
        simulator = BgpSimulator(topology)
        target = p("::/48")  # host ::1 == 1, far below 2**32
        simulator.announce(20, target)
        plane = DataPlane(simulator)
        atlas = AtlasPlatform([VantagePoint(probe_id=1, asn=10)])
        measurement = atlas.measure(plane, target, with_traceroute=True)
        assert measurement.responsive_probes() == {1}


class TestLocRibTrieConsistency:
    def test_set_best_clear_and_remove_keep_trie_in_sync(self):
        rib = LocRib()
        prefix = p("10.0.0.0/8")
        rib.set_best(prefix, route_entry(prefix))
        assert rib.lookup(prefix.host()) is not None
        rib.set_best(prefix, None)
        assert rib.lookup(prefix.host()) is None
        rib.set_best(prefix, route_entry(prefix))
        rib.remove(prefix)
        assert rib.lookup(prefix.host()) is None
        assert len(rib) == 0

    def test_lookup_prefers_most_specific(self):
        rib = LocRib()
        outer, inner = p("10.0.0.0/8"), p("10.1.0.0/16")
        rib.set_best(outer, route_entry(outer, learned_from=2))
        rib.set_best(inner, route_entry(inner, learned_from=3))
        assert rib.lookup(p("10.1.2.3/32").network).learned_from == 3
        assert rib.lookup(p("10.2.2.3/32").network).learned_from == 2
