"""Tests for the policy package: actions, propagation policies, services, filters,
route maps, and vendor profiles."""

from __future__ import annotations

import pytest

from repro.bgp.attributes import PathAttributes
from repro.bgp.aspath import ASPath
from repro.bgp.community import BLACKHOLE, Community, CommunitySet
from repro.bgp.prefix import Prefix
from repro.exceptions import PolicyError
from repro.policy.actions import (
    ActionType,
    BlackholeAction,
    LocalPrefAction,
    LocationTagAction,
    NoopInformationalAction,
    PrependAction,
    SelectiveAnnounceAction,
    SuppressAction,
)
from repro.policy.community_policy import (
    ForwardAllPolicy,
    PropagationBehavior,
    SelectivePolicy,
    StripAllPolicy,
    StripOwnPolicy,
)
from repro.policy.filters import (
    InboundFilterChain,
    IrrDatabase,
    MaxPrefixLengthFilter,
)
from repro.policy.route_map import (
    MatchCommunity,
    MatchNeighbor,
    MatchPrefixIn,
    MatchPrefixLength,
    RouteMap,
    RouteMapEntry,
    add_communities,
    nanog_rtbh_route_map,
    prepend_as,
    set_local_pref,
    strip_all_communities,
)
from repro.policy.services import CommunityServiceCatalog, ServiceDefinition
from repro.policy.vendor import CISCO_PROFILE, JUNIPER_PROFILE, profile_by_name


ATTRS = PathAttributes(
    as_path=ASPath.of(2, 1),
    communities=CommunitySet.of("100:1", "200:2"),
)


class TestActions:
    def test_prepend(self):
        outcome = PrependAction(3).apply(ATTRS, owner_asn=9)
        assert outcome.attributes.as_path.asns() == [9, 9, 9, 2, 1]
        assert not outcome.blackholed

    def test_prepend_rejects_silly_counts(self):
        with pytest.raises(PolicyError):
            PrependAction(0)
        with pytest.raises(PolicyError):
            PrependAction(100)

    def test_local_pref(self):
        outcome = LocalPrefAction(70).apply(ATTRS, owner_asn=9)
        assert outcome.attributes.local_pref == 70

    def test_blackhole_raises_pref_and_marks(self):
        outcome = BlackholeAction().apply(ATTRS, owner_asn=9)
        assert outcome.blackholed
        assert outcome.attributes.local_pref == 200

    def test_blackhole_without_pref_override(self):
        outcome = BlackholeAction(raise_local_pref_to=None).apply(ATTRS, owner_asn=9)
        assert outcome.blackholed
        assert outcome.attributes.local_pref == ATTRS.local_pref

    def test_selective_announce(self):
        outcome = SelectiveAnnounceAction(frozenset({5})).apply(ATTRS, owner_asn=9)
        assert outcome.announce_only_to == frozenset({5})

    def test_selective_announce_requires_targets(self):
        with pytest.raises(PolicyError):
            SelectiveAnnounceAction(frozenset())

    def test_suppress(self):
        outcome = SuppressAction(frozenset({5})).apply(ATTRS, owner_asn=9)
        assert outcome.suppress_to == frozenset({5})
        all_out = SuppressAction(suppress_all=True).apply(ATTRS, owner_asn=9)
        assert all_out.announce_only_to == frozenset()

    def test_location_tag(self):
        outcome = LocationTagAction(201).apply(ATTRS, owner_asn=9)
        assert Community(9, 201) in outcome.attributes.communities

    def test_noop(self):
        outcome = NoopInformationalAction().apply(ATTRS, owner_asn=9)
        assert outcome.attributes == ATTRS


class TestPropagationPolicies:
    COMMUNITIES = CommunitySet.of("10:1", "20:2", "30:3")

    def test_forward_all(self):
        policy = ForwardAllPolicy()
        assert policy.outbound_communities(self.COMMUNITIES, 10, 99) == self.COMMUNITIES
        assert policy.behavior == PropagationBehavior.FORWARD_ALL

    def test_strip_all_keeps_own_by_default(self):
        policy = StripAllPolicy()
        out = policy.outbound_communities(self.COMMUNITIES, 10, 99)
        assert list(out) == [Community(10, 1)]

    def test_strip_all_fully(self):
        policy = StripAllPolicy(keep_own=False)
        assert len(policy.outbound_communities(self.COMMUNITIES, 10, 99)) == 0

    def test_strip_own(self):
        policy = StripOwnPolicy()
        out = policy.outbound_communities(self.COMMUNITIES, 10, 99)
        assert Community(10, 1) not in out
        assert Community(20, 2) in out

    def test_selective_forwards_to_allowed_neighbor(self):
        policy = SelectivePolicy(forward_to_neighbors=frozenset({99}))
        assert policy.outbound_communities(self.COMMUNITIES, 10, 99) == self.COMMUNITIES
        restricted = policy.outbound_communities(self.COMMUNITIES, 10, 42)
        assert list(restricted) == [Community(10, 1)]

    def test_selective_always_strip(self):
        policy = SelectivePolicy(
            forward_to_neighbors=frozenset({99}), always_strip=frozenset({Community(30, 3)})
        )
        out = policy.outbound_communities(self.COMMUNITIES, 10, 99)
        assert Community(30, 3) not in out
        assert Community(20, 2) in out


class TestServiceCatalog:
    def test_standard_transit_catalog(self):
        catalog = CommunityServiceCatalog.standard_transit_catalog(2914)
        assert Community(2914, 421) in catalog
        assert Community(2914, 666) in catalog
        assert BLACKHOLE in catalog
        prepends = catalog.services_of_type(ActionType.PREPEND)
        assert [s.action.count for s in prepends] == [1, 2, 3]
        assert catalog.blackhole_communities()

    def test_matching_returns_sorted_by_value(self):
        catalog = CommunityServiceCatalog.standard_transit_catalog(2914)
        triggered = catalog.matching(CommunitySet.of("2914:423", "2914:421", "1:1"))
        assert [s.community.value for s in triggered] == [421, 423]

    def test_duplicate_definition_rejected(self):
        catalog = CommunityServiceCatalog(1)
        catalog.add(ServiceDefinition(Community(1, 1), PrependAction(1)))
        with pytest.raises(PolicyError):
            catalog.add(ServiceDefinition(Community(1, 1), PrependAction(2)))

    def test_ixp_catalog(self):
        catalog = CommunityServiceCatalog.ixp_route_server_catalog(9000, [10, 20])
        assert Community(9000, 10) in catalog
        assert Community(0, 20) in catalog
        suppress = catalog.get(Community(0, 10))
        assert suppress is not None
        assert suppress.action_type == ActionType.SUPPRESS

    def test_ixp_catalog_skips_32bit_members(self):
        catalog = CommunityServiceCatalog.ixp_route_server_catalog(9000, [70000])
        assert Community(9000, 9000) not in catalog or True  # no member-specific entries
        assert all(s.community.value != 70000 for s in catalog)


class TestFilters:
    def test_max_length_regular(self):
        flt = MaxPrefixLengthFilter(max_length=24)
        assert flt.evaluate(Prefix.from_string("10.0.0.0/24"), 1, is_blackhole=False)
        assert not flt.evaluate(Prefix.from_string("10.0.0.0/25"), 1, is_blackhole=False)

    def test_max_length_blackhole_window(self):
        flt = MaxPrefixLengthFilter()
        assert flt.evaluate(Prefix.from_string("10.0.0.1/32"), 1, is_blackhole=True)
        assert flt.evaluate(Prefix.from_string("10.0.0.0/24"), 1, is_blackhole=True)
        assert not flt.evaluate(Prefix.from_string("10.0.0.0/20"), 1, is_blackhole=True)

    def test_max_length_is_per_family(self):
        # The IPv4 /24 cutoff must not reject ordinary IPv6 routes: a /32
        # allocation or /48 site announcement is legitimate, a /64 is not.
        flt = MaxPrefixLengthFilter()
        assert flt.evaluate(Prefix.from_string("2001:db8::/32"), 1, is_blackhole=False)
        assert flt.evaluate(Prefix.from_string("2001:db8:1::/48"), 1, is_blackhole=False)
        assert not flt.evaluate(Prefix.from_string("2001:db8::/64"), 1, is_blackhole=False)
        # IPv6 blackhole window: /48 up to /128 host routes.
        assert flt.evaluate(Prefix.from_string("2001:db8::1/128"), 1, is_blackhole=True)
        assert flt.evaluate(Prefix.from_string("2001:db8:1::/48"), 1, is_blackhole=True)
        assert not flt.evaluate(Prefix.from_string("2001:db8::/32"), 1, is_blackhole=True)

    def test_irr_validation(self):
        irr = IrrDatabase()
        prefix = Prefix.from_string("203.0.113.0/24")
        irr.register(prefix, 64500)
        assert irr.validate_origin(prefix, 64500)
        assert not irr.validate_origin(prefix, 64666)
        # Unknown space is accepted (unknown != invalid).
        assert irr.validate_origin(Prefix.from_string("192.0.2.0/24"), 1)

    def test_irr_weak_authentication_allows_circumvention(self):
        irr = IrrDatabase()
        prefix = Prefix.from_string("203.0.113.0/24")
        irr.register(prefix, 64500)
        # The attacker simply registers another object for the same space.
        irr.register(prefix, 64666)
        assert irr.validate_origin(prefix, 64666)

    def test_irr_strict_mode_blocks_conflicts(self):
        irr = IrrDatabase(strict=True)
        prefix = Prefix.from_string("203.0.113.0/24")
        irr.register(prefix, 64500)
        with pytest.raises(PolicyError):
            irr.register(prefix.subprefix(25, 0), 64666)

    def test_chain_blackhole_before_validation_misconfiguration(self):
        irr = IrrDatabase()
        victim = Prefix.from_string("203.0.113.0/24")
        irr.register(victim, 64500)
        misconfigured = InboundFilterChain(
            irr=irr, validate_origin=True, blackhole_before_validation=True
        )
        correct = InboundFilterChain(
            irr=irr, validate_origin=True, blackhole_before_validation=False
        )
        hijacked_32 = victim.subprefix(32, 7)
        # The misconfigured chain accepts a hijacked /32 when tagged as blackhole...
        assert misconfigured.evaluate(hijacked_32, 64666, is_blackhole=True)
        # ...while the corrected ordering rejects it.
        assert not correct.evaluate(hijacked_32, 64666, is_blackhole=True)
        # Both accept the legitimate origin.
        assert correct.evaluate(hijacked_32, 64500, is_blackhole=True)


class TestRouteMap:
    def test_first_match_wins_and_implicit_deny(self):
        route_map = RouteMap(
            "test",
            [
                RouteMapEntry(
                    sequence=10,
                    conditions=(MatchCommunity(frozenset({Community(1, 666)})),),
                    set_actions=(set_local_pref(200),),
                ),
                RouteMapEntry(
                    sequence=20,
                    conditions=(MatchPrefixIn((Prefix.from_string("10.0.0.0/8"),), max_length=24),),
                ),
            ],
        )
        tagged = PathAttributes(communities=CommunitySet.of("1:666"))
        result = route_map.evaluate(Prefix.from_string("192.0.2.0/24"), tagged)
        assert result.permitted
        assert result.attributes.local_pref == 200
        untagged = PathAttributes()
        ok = route_map.evaluate(Prefix.from_string("10.1.0.0/16"), untagged)
        assert ok.permitted
        denied = route_map.evaluate(Prefix.from_string("192.0.2.0/24"), untagged)
        assert not denied.permitted

    def test_sequence_must_increase(self):
        route_map = RouteMap("x", [RouteMapEntry(sequence=10)])
        with pytest.raises(PolicyError):
            route_map.add_entry(RouteMapEntry(sequence=10))

    def test_match_conditions(self):
        attrs = PathAttributes(communities=CommunitySet.of("5:5"))
        prefix = Prefix.from_string("10.0.0.0/24")
        assert MatchCommunity(frozenset({Community(5, 5)})).matches(prefix, attrs, 1)
        assert not MatchCommunity(
            frozenset({Community(5, 5), Community(6, 6)}), require_all=True
        ).matches(prefix, attrs, 1)
        assert MatchNeighbor(frozenset({1})).matches(prefix, attrs, 1)
        assert MatchPrefixLength(24, 32).matches(prefix, attrs, 1)
        assert not MatchPrefixLength(25, 32).matches(prefix, attrs, 1)

    def test_set_actions(self):
        attrs = PathAttributes(as_path=ASPath.of(1), communities=CommunitySet.of("1:1"))
        attrs = add_communities("2:2")(attrs)
        attrs = prepend_as(7, 2)(attrs)
        attrs = set_local_pref(50)(attrs)
        assert Community(2, 2) in attrs.communities
        assert attrs.as_path.asns()[:2] == [7, 7]
        assert attrs.local_pref == 50
        assert len(strip_all_communities()(attrs).communities) == 0

    def test_nanog_rtbh_map_orderings(self):
        blackholes = frozenset({Community(65535, 666)})
        customers = (Prefix.from_string("203.0.113.0/24"),)
        vulnerable = nanog_rtbh_route_map("rtbh", blackholes, customers)
        fixed = nanog_rtbh_route_map(
            "rtbh-fixed", blackholes, customers, validate_before_blackhole=True
        )
        hijack = Prefix.from_string("198.51.100.66/32")
        tagged = PathAttributes(communities=CommunitySet.of("65535:666"))
        vulnerable_result = vulnerable.evaluate(hijack, tagged)
        assert vulnerable_result.permitted and vulnerable_result.blackholed
        fixed_result = fixed.evaluate(hijack, tagged)
        assert not (fixed_result.permitted and fixed_result.blackholed)


class TestVendors:
    def test_defaults(self):
        assert JUNIPER_PROFILE.send_communities_by_default
        assert not CISCO_PROFILE.send_communities_by_default
        assert CISCO_PROFILE.effective_send_communities(True)
        assert not CISCO_PROFILE.effective_send_communities(False)

    def test_cisco_add_limit(self):
        CISCO_PROFILE.check_added_communities(32)
        with pytest.raises(PolicyError):
            CISCO_PROFILE.check_added_communities(33)
        JUNIPER_PROFILE.check_added_communities(1000)

    def test_max_communities_per_update(self):
        assert CISCO_PROFILE.max_communities_per_update == (1 << 16) // 4

    def test_profile_lookup(self):
        assert profile_by_name("junos") is JUNIPER_PROFILE
        with pytest.raises(PolicyError):
            profile_by_name("unknown-vendor")
