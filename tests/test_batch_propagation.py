"""Batched propagation engine: apply/announce_many equivalence and semantics.

The contract under test: announcing K prefixes through one batched
``announce_many``/``apply`` pass yields Loc-RIBs, FIBs and a merged
``SimulationReport.dirty`` identical to K sequential ``announce()``
calls on a fresh simulator over the same topology.
"""

from __future__ import annotations

import pytest

from repro.attacks.scenario import build_figure2_topology, build_figure7_topology
from repro.bgp.community import BLACKHOLE, Community, CommunitySet
from repro.bgp.prefix import Prefix
from repro.dataplane.forwarding import DataPlane
from repro.exceptions import AupViolationError, RoutingError
from repro.routing.engine import BgpSimulator, RoutingEvent, origination_events
from repro.topology.generator import TopologyGenerator, TopologyParameters
from repro.wild.peering import attach_peering_testbed


def generated_topology():
    parameters = TopologyParameters(
        tier1_count=3, transit_count=8, stub_count=20, ixp_count=0, seed=7
    )
    return TopologyGenerator(parameters).generate()


def run_batched(topology, events):
    simulator = BgpSimulator(topology)
    simulator.announce_many(events)
    return simulator


def run_sequential(topology, events):
    simulator = BgpSimulator(topology)
    for item in events:
        event = BgpSimulator._coerce(item)
        assert not event.withdraw
        simulator.announce(
            event.origin_asn,
            event.prefix,
            communities=event.communities,
            spoofed_origin_asn=event.spoofed_origin_asn,
        )
    return simulator


def assert_identical_state(batched: BgpSimulator, sequential: BgpSimulator):
    """Loc-RIBs, candidates, FIBs and merged dirty maps must match exactly."""
    assert batched.routers.keys() == sequential.routers.keys()
    for asn, router in batched.routers.items():
        other = sequential.routers[asn]
        assert sorted(router.loc_rib.prefixes()) == sorted(other.loc_rib.prefixes())
        for prefix in router.loc_rib.prefixes():
            assert router.loc_rib.best(prefix) == other.loc_rib.best(prefix)
            assert sorted(router.loc_rib.candidates(prefix), key=str) == sorted(
                other.loc_rib.candidates(prefix), key=str
            )
    assert batched.report.dirty == sequential.report.dirty
    batched_plane = DataPlane(batched)
    sequential_plane = DataPlane(sequential)
    for asn in batched.routers:
        ours = {entry.prefix: entry for entry in batched_plane.fib(asn).entries()}
        theirs = {entry.prefix: entry for entry in sequential_plane.fib(asn).entries()}
        assert ours == theirs


class TestBatchedEquivalence:
    def test_many_prefixes_match_sequential_announces(self):
        topology = generated_topology()
        ases = sorted(asys.asn for asys in topology)
        base = int(Prefix.from_string("10.0.0.0/8").network)
        events = []
        for index in range(40):
            prefix = Prefix.ipv4(base + (index << 8), 24)
            communities = (
                CommunitySet.of(Community(ases[index % len(ases)] % 0xFFFF, index))
                if index % 3 == 0
                else None
            )
            events.append((ases[index % len(ases)], prefix, communities))
        assert_identical_state(
            run_batched(topology, events), run_sequential(topology, events)
        )

    def test_rtbh_and_steering_mixed_scenario(self):
        # RTBH hijack (more-specific /32 tagged with the target's blackhole
        # community) batched together with the victim announcement and the
        # attacker's own prefix.
        victim = Prefix.from_string("203.0.113.0/24")
        hijack = victim.subprefix(32, 1)
        rtbh_events = [
            (1, victim),
            RoutingEvent(2, hijack, communities=CommunitySet.of(Community(3, 666), BLACKHOLE)),
            (2, Prefix.from_string("192.0.2.0/24")),
        ]
        batched = run_batched(build_figure7_topology(), rtbh_events)
        sequential = run_sequential(build_figure7_topology(), rtbh_events)
        assert_identical_state(batched, sequential)
        assert 3 in batched.ases_with_blackholed_route(hijack)

        # Steering: the same prefix announced by victim and attacker, the
        # attacker tagging the community target's largest prepend service.
        steering_prefix = Prefix.from_string("198.51.100.0/24")
        steering_events = [
            (1, steering_prefix),
            RoutingEvent(2, steering_prefix, communities=CommunitySet.of(Community(3, 33))),
        ]
        assert_identical_state(
            run_batched(build_figure2_topology(), steering_events),
            run_sequential(build_figure2_topology(), steering_events),
        )

    def test_withdraw_many_matches_sequential_withdraws(self):
        topology = generated_topology()
        ases = sorted(asys.asn for asys in topology)
        base = int(Prefix.from_string("10.0.0.0/8").network)
        events = [
            (ases[index % len(ases)], Prefix.ipv4(base + (index << 8), 24))
            for index in range(20)
        ]
        withdrawals = [(asn, prefix) for asn, prefix in events[::2]]

        batched = run_batched(topology, events)
        batched.withdraw_many(withdrawals)
        sequential = run_sequential(topology, events)
        for asn, prefix in withdrawals:
            sequential.withdraw(asn, prefix)

        assert_identical_state(batched, sequential)
        for _asn, prefix in withdrawals:
            assert batched.ases_with_route(prefix) == []
        for asn, prefix in events[1::2]:
            assert asn in batched.ases_with_route(prefix)

    def test_apply_mixes_announcements_and_withdrawals(self):
        topology = build_figure7_topology()
        victim = Prefix.from_string("203.0.113.0/24")
        own = Prefix.from_string("192.0.2.0/24")
        simulator = BgpSimulator(topology)
        simulator.announce(1, victim)
        report = simulator.apply(
            [
                RoutingEvent.withdrawal(1, victim),
                RoutingEvent.announcement(2, own),
            ]
        )
        assert simulator.ases_with_route(victim) == []
        assert simulator.ases_with_route(own) == [1, 2, 3, 4]
        assert victim in report.prefixes and own in report.prefixes

    def test_announce_then_withdraw_in_one_batch_cancels_out(self):
        topology = build_figure7_topology()
        prefix = Prefix.from_string("203.0.113.0/24")
        simulator = BgpSimulator(topology)
        simulator.apply(
            [RoutingEvent.announcement(1, prefix), RoutingEvent.withdrawal(1, prefix)]
        )
        assert simulator.ases_with_route(prefix) == []


class TestBatchApi:
    def test_announce_originated_seeds_owned_prefixes(self):
        topology = build_figure7_topology()
        simulator = BgpSimulator(topology)
        report = simulator.announce_originated()
        assert report.prefixes == set(topology.originated_prefixes())
        assert simulator.ases_with_route(Prefix.from_string("203.0.113.0/24")) == [1, 2, 3, 4]
        assert simulator.ases_with_route(Prefix.from_string("192.0.2.0/24")) == [1, 2, 3, 4]

    def test_origination_events_cover_topology(self):
        topology = build_figure7_topology()
        events = origination_events(topology)
        assert {(e.origin_asn, e.prefix) for e in events} == {
            (asn, prefix) for prefix, asn in topology.originated_prefixes().items()
        }
        simulator = BgpSimulator(topology)
        simulator.apply(events)
        assert simulator.best_route(4, Prefix.from_string("203.0.113.0/24")) is not None

    def test_bad_event_spec_raises(self):
        simulator = BgpSimulator(build_figure7_topology())
        with pytest.raises(RoutingError):
            simulator.announce_many(["203.0.113.0/24"])

    def test_invalid_batch_leaves_simulator_untouched(self):
        # apply() validates the whole batch before applying anything, so
        # a malformed item or unknown origin mid-batch cannot leave
        # earlier events half-applied and unreported.
        simulator = BgpSimulator(build_figure7_topology())
        victim = Prefix.from_string("203.0.113.0/24")
        with pytest.raises(RoutingError):
            simulator.announce_many([(1, victim), "junk"])
        with pytest.raises(RoutingError):
            simulator.announce_many([(1, victim), (999, victim)])
        assert simulator.ases_with_route(victim) == []
        assert victim not in simulator.router(1).originated
        assert simulator.report.prefixes == set()

    def test_report_merges_into_simulator_report(self):
        topology = build_figure7_topology()
        simulator = BgpSimulator(topology)
        report = simulator.announce_many(
            [(1, Prefix.from_string("203.0.113.0/24")), (2, Prefix.from_string("192.0.2.0/24"))]
        )
        assert simulator.report.prefixes == report.prefixes
        assert simulator.converged_prefixes() == report.prefixes

    def test_incremental_fib_patch_from_batch_report(self):
        topology = generated_topology()
        ases = sorted(asys.asn for asys in topology)
        base = int(Prefix.from_string("10.0.0.0/8").network)
        first = [(ases[i % len(ases)], Prefix.ipv4(base + (i << 8), 24)) for i in range(10)]
        second = [
            (ases[i % len(ases)], Prefix.ipv4(base + ((i + 10) << 8), 24)) for i in range(10)
        ]
        simulator = BgpSimulator(topology)
        simulator.announce_many(first)
        dataplane = DataPlane(simulator)
        report = simulator.announce_many(second)
        dataplane.rebuild(report)
        rebuilt = DataPlane(simulator)
        for asn in simulator.routers:
            patched = {entry.prefix: entry for entry in dataplane.fib(asn).entries()}
            fresh = {entry.prefix: entry for entry in rebuilt.fib(asn).entries()}
            assert patched == fresh


class TestPlatformBatchAnnouncements:
    def test_platform_announce_many(self):
        topology = generated_topology()
        platform = attach_peering_testbed(topology, upstream_count=4, seed=13)
        simulator = BgpSimulator(topology)
        allocation = platform.allocated_prefixes[0]
        announcements = [
            (allocation.subprefix(24, index), None if index % 2 else CommunitySet.of("47065:1"))
            for index in range(4)
        ]
        report = platform.announce_many(simulator, announcements)
        for prefix, _communities in announcements:
            assert platform.asn in simulator.ases_with_route(prefix)
        assert {prefix for prefix, _ in announcements} <= report.prefixes

    def test_platform_announce_many_enforces_aup_before_any_origination(self):
        topology = generated_topology()
        platform = attach_peering_testbed(topology, upstream_count=4, seed=13)
        simulator = BgpSimulator(topology)
        allocation = platform.allocated_prefixes[0]
        foreign = Prefix.from_string("198.51.100.0/24")
        with pytest.raises(AupViolationError):
            platform.announce_many(
                simulator, [(allocation.subprefix(24, 0), None), (foreign, None)]
            )
        # The violating batch must leave the simulation untouched.
        assert simulator.ases_with_route(allocation.subprefix(24, 0)) == []
        assert simulator.report.prefixes == set()


class TestImportMemo:
    """K same-attribute prefixes pay the import filter/action chain once."""

    @staticmethod
    def _counting_chains(simulator, counters):
        """Wrap every router's inbound filter chain with a call counter."""
        from repro.policy.filters import InboundFilterChain

        class CountingChain(InboundFilterChain):
            def __init__(self, inner, key):
                super().__init__(
                    prefix_filter=inner.prefix_filter,
                    irr=inner.irr,
                    validate_origin=inner.validate_origin,
                    blackhole_before_validation=inner.blackhole_before_validation,
                )
                self._key = key

            def evaluate(self, prefix, origin_asn, is_blackhole):
                counters[self._key] = counters.get(self._key, 0) + 1
                return super().evaluate(prefix, origin_asn, is_blackhole)

        for asn, router in simulator.routers.items():
            router.inbound_filters = CountingChain(router.inbound_filters, asn)

    def test_batch_evaluates_filter_chain_once_per_shape(self):
        topology = generated_topology()
        ases = sorted(asys.asn for asys in topology)
        origin = ases[0]
        base = int(Prefix.from_string("10.0.0.0/8").network)
        events = [
            (origin, Prefix.ipv4(base + (index << 8), 24)) for index in range(12)
        ]

        batched = BgpSimulator(topology, shards=1)
        batched_counts: dict[int, int] = {}
        self._counting_chains(batched, batched_counts)
        batched.announce_many(events)

        sequential = BgpSimulator(topology, shards=1)
        sequential_counts: dict[int, int] = {}
        self._counting_chains(sequential, sequential_counts)
        for origin_asn, prefix in events:
            sequential.announce(origin_asn, prefix)

        # Same converged state either way.
        assert_identical_state(batched, sequential)
        # All 12 prefixes share attributes, so within the batch every
        # router evaluates the chain at most once per sender, while the
        # sequential loop pays it once per prefix.
        assert batched_counts, "announcements must have crossed filter chains"
        for asn, count in batched_counts.items():
            senders = len(
                {
                    rib.neighbor_asn
                    for rib in batched.routers[asn].adj_rib_in.values()
                    if len(rib)
                }
            )
            assert count <= max(1, senders), (asn, count, senders)
        assert sum(batched_counts.values()) * len(events) <= sum(
            sequential_counts.values()
        ) * 2  # the batch pays ~1/K of the sequential chain evaluations

    def test_memo_respects_prefix_scoped_chains(self):
        """IRR-validating routers must not reuse shape-keyed import outcomes."""
        from repro.policy.filters import InboundFilterChain, IrrDatabase

        topology = build_figure7_topology()
        simulator = BgpSimulator(topology, shards=1)
        # AS3 validates origins: 203.0.113.0/24 is registered to AS1, the
        # equally-shaped 198.51.100.0/24 is registered to somebody else.
        irr = IrrDatabase()
        irr.register(Prefix.from_string("203.0.113.0/24"), 1)
        irr.register(Prefix.from_string("198.51.100.0/24"), 9)
        simulator.router(3).inbound_filters = InboundFilterChain(
            irr=irr, validate_origin=True
        )
        report = simulator.announce_many(
            [(1, Prefix.from_string("203.0.113.0/24")), (1, Prefix.from_string("198.51.100.0/24"))]
        )
        assert report.prefixes
        # The registered prefix is accepted at AS3; the mis-registered,
        # same-shape prefix is rejected — a shape-keyed memo would have
        # wrongly accepted it.
        assert simulator.best_route(3, Prefix.from_string("203.0.113.0/24")) is not None
        best = simulator.best_route(3, Prefix.from_string("198.51.100.0/24"))
        assert best is None or best.learned_from != 1
