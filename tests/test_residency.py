"""Shard-pool residency: providers, leases, warm reuse across lifecycles.

The acceptance bar of the residency refactor: under ``"auto"`` (and
``"pinned"``) policies, pools survive simulator ``close()`` boundaries,
repeated ``Experiment.run`` calls and consecutive grid cells — strictly
fewer pool constructions than lifecycle boundaries — while every result
stays byte-identical to the cold-start ``"none"`` policy and to the
sequential engine, including router-config edits made mid-lease or
while the pool is parked warm, and shard-budget shrinks between leases.
"""

from __future__ import annotations

import hashlib

import pytest

from test_resident_service import (
    assert_identical_state,
    harden_transit,
    make_events,
    small_topology,
)

from repro.exceptions import RoutingError
from repro.experiments import registry as registry_module
from repro.experiments.grid import GridRunner, expand_grid
from repro.experiments.registry import register, run_experiment
from repro.experiments.result import ExperimentStatus
from repro.experiments.runner import Experiment
from repro.routing import shard as shard_module
from repro.routing.engine import BgpSimulator
from repro.routing.residency import (
    RESIDENCY_POLICIES,
    ResidencyPolicy,
    _SCOPES,
    current_provider,
    install_provider,
    residency_scope,
    topology_fingerprint,
)
from repro.routing.shard import SHARD_BUDGET_ENV
from repro.topology.generator import TopologyGenerator, TopologyParameters


def topology_with_seed(seed):
    parameters = TopologyParameters(
        tier1_count=3, transit_count=8, stub_count=20, ixp_count=0, seed=seed
    )
    return TopologyGenerator(parameters).generate()


def state_digest(simulator) -> str:
    """A stable digest of every Loc-RIB (best + candidates), for metrics."""
    digest = hashlib.sha256()
    for asn in sorted(simulator.routers):
        router = simulator.routers[asn]
        for prefix in sorted(router.loc_rib.prefixes(), key=str):
            best = router.loc_rib.best(prefix)
            candidates = sorted(map(str, router.loc_rib.candidates(prefix)))
            digest.update(f"{asn}|{prefix}|{best}|{candidates}\n".encode())
    return digest.hexdigest()


# ------------------------------------------------------------- policy names
class TestResidencyPolicy:
    def test_valid_names_accepted(self):
        for name in RESIDENCY_POLICIES:
            policy = ResidencyPolicy(name)
            assert policy == name
            assert isinstance(policy, str)

    def test_default_is_none(self):
        assert ResidencyPolicy() == "none"

    def test_unknown_name_rejected(self):
        with pytest.raises(RoutingError, match="residency policy"):
            ResidencyPolicy("warm")


# -------------------------------------------------------------- fingerprint
class TestTopologyFingerprint:
    def test_equal_across_distinct_objects(self):
        assert topology_fingerprint(topology_with_seed(7)) == topology_fingerprint(
            topology_with_seed(7)
        )

    def test_differs_for_different_structure(self):
        assert topology_fingerprint(topology_with_seed(7)) != topology_fingerprint(
            topology_with_seed(11)
        )

    def test_mutation_changes_digest(self):
        topology = topology_with_seed(7)
        before = topology_fingerprint(topology)
        asys = next(iter(topology))
        asys.validates_origin = not asys.validates_origin
        assert topology_fingerprint(topology) != before


# ------------------------------------------------------------------ scoping
class TestScoping:
    def test_fallback_provider_is_none_policy(self):
        assert current_provider().policy == "none"

    def test_none_scope_is_a_noop(self):
        outer = current_provider()
        with residency_scope(None) as provider:
            assert provider is outer

    def test_scope_installs_and_closes_provider(self):
        with residency_scope("auto") as provider:
            assert current_provider() is provider
            assert provider.policy == "auto"
        assert current_provider() is not provider
        assert provider._closed

    def test_nested_same_policy_reuses_provider(self):
        with residency_scope("auto") as outer:
            with residency_scope("auto") as inner:
                assert inner is outer
            assert not outer._closed

    def test_nested_different_policy_overrides(self):
        with residency_scope("pinned") as outer:
            with residency_scope("auto") as inner:
                assert inner is not outer
                assert current_provider() is inner
            assert current_provider() is outer

    def test_install_provider_sits_under_lexical_scopes(self):
        installed = install_provider("pinned")
        try:
            assert current_provider() is installed
            with residency_scope("auto") as scoped:
                assert current_provider() is scoped
            assert current_provider() is installed
        finally:
            _SCOPES.remove(installed)
            installed.close()

    def test_invalid_policy_rejected_by_scope(self):
        with pytest.raises(RoutingError, match="residency policy"):
            with residency_scope("hot"):
                pass  # pragma: no cover - scope never entered


# -------------------------------------------------- warm reuse, one simulator
class TestWarmReuse:
    @pytest.mark.parametrize("shard_count", [1, 2, 4])
    def test_lifecycle_reuse_matches_cold_and_sequential(self, shard_count):
        """close()/re-apply cycles under every policy are byte-identical.

        ``"auto"`` must serve both lifecycles from one pool build (the
        second acquire resumes the parked pool); ``"none"`` must rebuild
        per lifecycle — and both must match the sequential engine.
        """
        topology = small_topology()
        events = make_events(topology, count=40)
        batches = [events[:20], events[20:]]

        reference = BgpSimulator(topology, shards=1)
        for batch in batches:
            reference.apply(batch)
            reference.close()

        with residency_scope("auto") as provider:
            warm = BgpSimulator(topology, shards=shard_count, max_workers=2)
            for batch in batches:
                warm.apply(batch)
                warm.close()
            assert_identical_state(reference, warm)
            if shard_count > 1:
                assert provider.stats["builds"] == 1
                assert provider.stats["resumes"] == 1
                assert provider.stats["leases"] == 2

        with residency_scope("none") as provider:
            cold = BgpSimulator(topology, shards=shard_count, max_workers=2)
            for batch in batches:
                cold.apply(batch)
                cold.close()
            assert_identical_state(reference, cold)
            if shard_count > 1:
                assert provider.stats["builds"] == 2
                assert provider.stats["resumes"] == 0

    def test_sequential_apply_while_parked_ships_on_resume(self):
        """In-process applies during the warm gap must reach the workers.

        A released-but-warm pool leaves the simulator's pending-sync
        continuation armed; a batch that runs sequentially in the gap
        (single prefix) must be shipped by the resumed lease's next
        dispatch, not silently dropped.
        """
        topology = small_topology()
        events = make_events(topology, count=31)
        single = events[30]

        reference = BgpSimulator(topology, shards=1)
        for batch in (events[:15], [single], events[15:30]):
            reference.apply(batch)

        with residency_scope("auto") as provider:
            warm = BgpSimulator(topology, shards=2, max_workers=2)
            warm.apply(events[:15])
            warm.close()
            warm.apply([single])
            warm.apply(events[15:30])
            assert provider.stats["builds"] == 1
            assert provider.stats["resumes"] == 1
            assert_identical_state(reference, warm)
            warm.close()

    def test_config_edit_while_parked_warm_is_honoured(self):
        """A router-config swap during the warm gap must bump the epoch."""
        topology = small_topology()
        events = make_events(topology, count=40)
        transit = next(a.asn for a in topology.transit_ases())

        reference = BgpSimulator(topology, shards=1)
        reference.apply(events[:20])
        harden_transit(reference, events, transit)
        reference.apply(events[20:])

        with residency_scope("auto") as provider:
            warm = BgpSimulator(topology, shards=2, max_workers=2)
            warm.apply(events[:20])
            warm.close()
            harden_transit(warm, events, transit)
            warm.apply(events[20:])
            assert provider.stats["builds"] == 1
            assert provider.stats["resumes"] == 1
            assert_identical_state(reference, warm)
            warm.close()

    def test_config_edit_mid_lease_is_honoured(self):
        """The held-lease epoch path still works through the provider."""
        topology = small_topology()
        events = make_events(topology, count=40)
        transit = next(a.asn for a in topology.transit_ases())

        reference = BgpSimulator(topology, shards=1)
        reference.apply(events[:20])
        harden_transit(reference, events, transit)
        reference.apply(events[20:])

        with residency_scope("auto") as provider:
            warm = BgpSimulator(topology, shards=2, max_workers=2)
            warm.apply(events[:20])
            harden_transit(warm, events, transit)
            warm.apply(events[20:])
            assert provider.stats["builds"] == 1
            assert provider.stats["leases"] == 1
            assert_identical_state(reference, warm)
            warm.close()


# --------------------------------------------------------- adoption + budget
class TestAdoptionAndBudget:
    def test_adoption_rehomes_pool_and_frees_superseded_snapshot(self):
        """A second simulator adopts the warm pool; registry stays bounded.

        The superseded parked snapshot's registry token must be released
        by the adopting re-park (the PR's leak fix) — the registry holds
        exactly one entry per live pool, before and after adoption.
        """
        base = len(shard_module._SNAPSHOT_REGISTRY)
        topo_a = small_topology()
        topo_b = small_topology()
        events = make_events(topo_a, count=30)

        with residency_scope("auto") as provider:
            sim_a = BgpSimulator(topo_a, shards=2, max_workers=2)
            sim_a.apply(events[:15])
            assert len(shard_module._SNAPSHOT_REGISTRY) == base + 1
            sim_a.close()

            sim_b = BgpSimulator(topo_b, shards=2, max_workers=2)
            sim_b.apply(events[15:])
            assert provider.stats["builds"] == 1
            assert provider.stats["adoptions"] == 1
            assert len(shard_module._SNAPSHOT_REGISTRY) == base + 1

            reference = BgpSimulator(topo_b, shards=1)
            reference.apply(events[15:])
            assert_identical_state(reference, sim_b)
            sim_b.close()
        assert len(shard_module._SNAPSHOT_REGISTRY) == base

    def test_budget_shrink_rebuilds_and_evicts(self, monkeypatch):
        """A since-shrunk worker budget fails the warm pool's compatibility
        predicate (rebuild with fewer workers) and evicts it LRU-wise."""
        monkeypatch.setenv(SHARD_BUDGET_ENV, "4")
        topology = small_topology()
        events = make_events(topology, count=40)

        reference = BgpSimulator(topology, shards=1)
        reference.apply(events[:20])
        reference.apply(events[20:])

        with residency_scope("auto") as provider:
            simulator = BgpSimulator(topology, shards=4)
            simulator.apply(events[:20])
            assert simulator._shard_pool.workers == 4
            simulator.close()

            monkeypatch.setenv(SHARD_BUDGET_ENV, "1")
            simulator.apply(events[20:])
            assert simulator._shard_pool.workers == 1
            assert provider.stats["builds"] == 2
            assert provider.stats["resumes"] == 0
            assert_identical_state(reference, simulator)
            simulator.close()
            assert provider.stats["evictions"] == 1
            assert len(provider._warm) == 1

    def test_pinned_keeps_pools_beyond_budget(self, monkeypatch):
        monkeypatch.setenv(SHARD_BUDGET_ENV, "1")
        topo_a = topology_with_seed(7)
        topo_b = topology_with_seed(11)
        with residency_scope("pinned") as provider:
            for topology in (topo_a, topo_b):
                simulator = BgpSimulator(topology, shards=2)
                simulator.apply(make_events(topology, count=10))
                simulator.close()
            assert provider.stats["builds"] == 2
            assert provider.stats["evictions"] == 0
            assert len(provider._warm) == 2


# ----------------------------------------------------- experiments and grids
@pytest.fixture()
def probe_experiment():
    @register("residency-probe")
    class ResidencyProbeExperiment(Experiment):
        description = "warm-pool reuse probe (unit tests only)"
        default_topology = {
            "tier1_count": 2,
            "transit_count": 5,
            "stub_count": 12,
            "ixp_count": 0,
        }
        default_params = {"batch": 0}

        def seed(self, ctx):
            self.seed_originated(ctx)

        def execute(self, ctx):
            simulator = ctx.scratch["simulator"]
            events = make_events(ctx.require_topology(), count=24)
            offset = (self.int_param("batch", 0) * 4) % 12
            simulator.apply(events[offset : offset + 12])
            return {
                "digest": state_digest(simulator),
                "announcements": simulator.report.announcements_processed,
            }

    try:
        yield ResidencyProbeExperiment
    finally:
        del registry_module._REGISTRY["residency-probe"]


class TestExperimentResidency:
    def test_repeated_runs_share_one_pool_build(self, probe_experiment):
        """Back-to-back Experiment.run calls adopt the warm pool and stay
        byte-identical to a cold-start run."""
        spec = probe_experiment.default_spec(seed=7, shards=2)

        with residency_scope("none"):
            cold = run_experiment(spec)
        assert cold.status is ExperimentStatus.OK

        with residency_scope("auto") as provider:
            first = run_experiment(spec)
            second = run_experiment(spec)
        assert provider.stats["builds"] == 1
        assert provider.stats["adoptions"] == 1
        assert first.metrics == cold.metrics
        assert second.metrics == cold.metrics

    def test_residency_spec_parameter_scopes_the_run(self, probe_experiment):
        cold = run_experiment(probe_experiment.default_spec(seed=7, shards=2))
        warm = run_experiment(
            probe_experiment.default_spec(seed=7, shards=2, residency="auto")
        )
        assert cold.status is warm.status is ExperimentStatus.OK
        assert warm.metrics == cold.metrics

    def test_invalid_residency_parameter_is_an_error_result(self, probe_experiment):
        result = run_experiment(
            probe_experiment.default_spec(seed=7, residency="bogus")
        )
        assert result.status is ExperimentStatus.ERROR
        assert "residency" in (result.error or "")

    def test_grid_warm_reuse_builds_fewer_pools_than_cells(self, probe_experiment):
        """The headline acceptance criterion: a 2x4 grid under warm
        residency constructs fewer pools than it has cells, with results
        byte-identical to the cold policy."""
        specs = expand_grid(
            "residency-probe",
            seeds=(7, 11),
            param_grid={"batch": [0, 1, 2, 3]},
            shards=2,
        )
        assert len(specs) == 8

        with residency_scope("auto") as provider:
            warm_results = GridRunner().run(specs, parallel=False)
        assert provider.stats["leases"] == len(specs)
        assert provider.stats["builds"] < len(specs)
        assert (
            provider.stats["builds"]
            + provider.stats["adoptions"]
            + provider.stats["resumes"]
            == len(specs)
        )

        cold_results = GridRunner(residency="none").run(specs, parallel=False)
        auto_results = GridRunner(residency="auto").run(specs, parallel=False)
        for results in (warm_results, cold_results, auto_results):
            assert [r.status for r in results] == [ExperimentStatus.OK] * len(specs)
        assert [r.metrics for r in warm_results] == [r.metrics for r in cold_results]
        assert [r.metrics for r in auto_results] == [r.metrics for r in cold_results]
