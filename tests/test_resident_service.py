"""Resident shard service: stateful workers, delta shipping, epochs, lifecycle.

The contract under test (the acceptance bar of the resident refactor):
multi-round event streams — announce, re-announce, withdraw — driven
through the resident worker pool are **byte-identical** to the
sequential engine at every shard count, including router-config edits
mid-stream (epoch invalidation) and harvests interleaved on the same
pool; and after the first dispatch only deltas cross the process
boundary.
"""

from __future__ import annotations

import pickle

import pytest

from repro.bgp.community import BLACKHOLE, CommunitySet
from repro.bgp.prefix import Prefix
from repro.dataplane.forwarding import DataPlane
from repro.routing.engine import BgpSimulator, RoutingEvent
from repro.routing.shard import ShardPool, capture_router_config
from repro.topology.generator import TopologyGenerator, TopologyParameters


def small_topology():
    parameters = TopologyParameters(
        tier1_count=3, transit_count=8, stub_count=20, ixp_count=0, seed=7
    )
    return TopologyGenerator(parameters).generate()


def make_events(topology, count=120):
    ases = sorted(asys.asn for asys in topology)
    base = Prefix.from_string("10.0.0.0/8").network
    return [
        RoutingEvent(origin_asn=ases[index % len(ases)], prefix=Prefix.ipv4(base + (index << 8), 24))
        for index in range(count)
    ]


def assert_identical_state(reference: BgpSimulator, other: BgpSimulator):
    """Loc-RIBs, Adj-RIBs-In, originations and cumulative reports match exactly."""
    assert reference.routers.keys() == other.routers.keys()
    probe_prefixes = set(reference.report.prefixes) | set(other.report.prefixes)
    for asn, router in reference.routers.items():
        twin = other.routers[asn]
        assert sorted(router.loc_rib.prefixes()) == sorted(twin.loc_rib.prefixes())
        for prefix in router.loc_rib.prefixes():
            assert router.loc_rib.best(prefix) == twin.loc_rib.best(prefix)
            assert sorted(router.loc_rib.candidates(prefix), key=str) == sorted(
                twin.loc_rib.candidates(prefix), key=str
            )
        assert router.originated == twin.originated
        for neighbor in sorted(router.adj_rib_in):
            mine = router.adj_rib_in[neighbor]
            theirs = twin.adj_rib_in.get(neighbor)
            for prefix in probe_prefixes:
                assert mine.get(prefix) == (
                    theirs.get(prefix) if theirs is not None else None
                ), (asn, neighbor, prefix)
    assert reference.report.prefixes == other.report.prefixes
    assert reference.report.dirty == other.report.dirty
    assert (
        reference.report.announcements_processed == other.report.announcements_processed
    )
    assert reference.report.rounds == other.report.rounds


def assert_identical_fibs(reference: DataPlane, other: DataPlane):
    assert reference.fibs.keys() == other.fibs.keys()
    for asn in reference.fibs:
        ours = {entry.prefix: entry for entry in reference.fib(asn).entries()}
        theirs = {entry.prefix: entry for entry in other.fib(asn).entries()}
        assert ours == theirs


def harvest_rows(archive):
    return [
        (o.platform, o.collector_id, o.peer_asn, o.prefix, o.as_path, o.communities)
        for o in archive
    ]


def harden_transit(simulator, events, transit):
    """Swap in a strict IRR filter chain on one transit mid-stream."""
    from repro.policy.filters import InboundFilterChain, IrrDatabase

    irr = IrrDatabase()
    for event in events:
        irr.register(event.prefix, 999_999)
    simulator.router(transit).inbound_filters = InboundFilterChain(
        irr=irr, validate_origin=True
    )


class TestResidentEquivalence:
    @pytest.mark.parametrize("shard_count", [1, 2, 4])
    def test_multi_round_stream_with_config_edit_and_harvest(self, shard_count):
        """>=3 event rounds + a config edit + interleaved harvests: byte-identical.

        This is the acceptance scenario of the resident refactor: the
        same pool carries announce / re-announce / withdraw rounds, a
        sequential (in-process) apply in between, a router-config swap
        that must invalidate all resident worker state, and harvests
        that read the resident Loc-RIBs — and every byte (Loc-RIBs,
        Adj-RIBs-In, FIBs, dirty sets, report counters) matches a
        sequential twin.
        """
        from repro.collectors.platform import CollectorDeployment

        topology = small_topology()
        events = make_events(topology)
        transit = next(a.asn for a in topology.transit_ases())
        deployment = CollectorDeployment.default_deployment(topology, seed=7)
        reannounce = [
            RoutingEvent(
                origin_asn=event.origin_asn,
                prefix=event.prefix,
                communities=CommunitySet.of(BLACKHOLE),
            )
            for event in events[:60]
        ]
        withdrawals = [
            RoutingEvent.withdrawal(event.origin_asn, event.prefix)
            for event in events[30:90]
        ]

        def drive(simulator, shards):
            plane = DataPlane(simulator)
            plane.rebuild(simulator.apply(events))  # round 1: announce
            # Harvest interleaved on the same (resident) pool.
            mid = deployment.collect_from_simulator(simulator, shards=shards)
            # A small in-process batch: its mutations must re-ship.
            plane.rebuild(simulator.apply(events[:10], shards=1))
            harden_transit(simulator, events, transit)  # epoch invalidation
            plane.rebuild(simulator.apply(reannounce))  # round 2: re-announce
            plane.rebuild(simulator.apply(withdrawals))  # round 3: withdraw
            end = deployment.collect_from_simulator(simulator, shards=shards)
            return plane, mid, end

        sequential = BgpSimulator(topology, shards=1)
        sequential_plane, sequential_mid, sequential_end = drive(sequential, 1)

        sharded = BgpSimulator(topology, shards=shard_count, max_workers=2)
        try:
            sharded_plane, mid, end = drive(sharded, shard_count)
            assert_identical_state(sequential, sharded)
            assert_identical_fibs(sequential_plane, sharded_plane)
            # A sharded harvest is byte-identical to a serial harvest of
            # the *same* simulator (same state, same export order)...
            assert harvest_rows(end) == harvest_rows(
                deployment.collect_from_simulator(sharded, shards=1)
            )
            # ...and across engines the row multisets match at every
            # interleave point (insertion order differs, content cannot).
            assert sorted(map(str, harvest_rows(mid))) == sorted(
                map(str, harvest_rows(sequential_mid))
            )
            assert sorted(map(str, harvest_rows(end))) == sorted(
                map(str, harvest_rows(sequential_end))
            )
        finally:
            sharded.close()

    def test_config_edit_bumps_epoch_and_reships_state(self):
        topology = small_topology()
        events = make_events(topology, count=40)
        transit = next(a.asn for a in topology.transit_ases())
        simulator = BgpSimulator(topology, shards=2, max_workers=2)
        try:
            simulator.apply(events)
            pool = simulator._shard_pool
            assert pool.epoch == 0
            # Steady state: nothing pending, so a sharded round ships no
            # per-prefix state at all — events only.
            shipped_before = pool.shipped_state_entries
            simulator.apply(events[:20])
            assert pool.shipped_state_entries == shipped_before
            harden_transit(simulator, events, transit)
            simulator.apply(events[:20])
            assert pool.epoch == 1
            # The epoch bump re-armed the pending backlog: the batch's
            # prefixes re-shipped their full holder state.
            assert pool.shipped_state_entries > shipped_before
        finally:
            simulator.close()

    def test_sequential_interleave_ships_only_touched_pairs(self):
        topology = small_topology()
        events = make_events(topology, count=40)
        simulator = BgpSimulator(topology, shards=2, max_workers=2)
        try:
            simulator.apply(events)
            pool = simulator._shard_pool
            # In-process batch while the pool is live: its touched pairs
            # become the pending backlog...
            simulator.apply(events[:5], shards=1)
            touched = sum(len(asns) for asns in simulator._pending_sync.values())
            assert touched > 0
            baseline = pool.shipped_state_entries
            # ...and the next sharded round ships exactly that backlog.
            simulator.apply(events)
            assert pool.shipped_state_entries == baseline + touched
            assert not simulator._pending_sync
        finally:
            simulator.close()

    def test_failed_dispatch_invalidates_residency_not_parent(self):
        topology = small_topology()
        events = make_events(topology, count=40)
        sequential = BgpSimulator(topology, shards=1)
        sequential.apply(events)
        sequential.apply(events)  # twin of the post-failure recovery round

        simulator = BgpSimulator(topology, shards=2, max_workers=2)
        try:
            simulator.apply(events)
            pool = simulator._shard_pool
            epoch_before = pool.epoch
            # An unpicklable event makes the dispatch fail after pending
            # pairs were popped: residency must be invalidated...
            bad = RoutingEvent(
                origin_asn=events[0].origin_asn,
                prefix=events[0].prefix,
                communities=lambda: None,  # type: ignore[arg-type]
            )
            with pytest.raises(Exception):
                simulator.apply([bad] + events[:20])
            assert pool.epoch > epoch_before
            # ...while the parent state is still exactly the converged
            # round-1 state, and the next sharded round still works.
            simulator.apply(events)
            assert_identical_state(sequential, simulator)
        finally:
            simulator.close()


class TestPoolLifecycle:
    def test_shard_pool_is_a_context_manager(self):
        topology = small_topology()
        simulator = BgpSimulator(topology, shards=1)
        payload = pickle.dumps(
            (topology, capture_router_config(simulator)), protocol=pickle.HIGHEST_PROTOCOL
        )
        with ShardPool(payload, workers=2, shards=4) as pool:
            assert pool.workers == 2 and pool.shards == 4
            assert pool.slot_for(0) == 0 and pool.slot_for(3) == 1
        # Exit shut every slot down; shutdown stays idempotent.
        assert all(executor is None for executor in pool._executors)
        pool.shutdown()

    def test_tuple_snapshot_registers_and_releases_cow_token(self):
        from repro.routing import shard as shard_module

        topology = small_topology()
        simulator = BgpSimulator(topology, shards=1)
        snapshot = (topology, capture_router_config(simulator))
        before = dict(shard_module._SNAPSHOT_REGISTRY)
        with ShardPool(snapshot, workers=2, shards=4) as pool:
            if shard_module._FORK_CONTEXT is not None:
                token = pool._snapshot_token
                assert token is not None
                # Workers inherit the parent's objects via fork COW: the
                # registry parks the snapshot itself, not a pickled copy.
                assert shard_module._SNAPSHOT_REGISTRY[token] is snapshot
        assert dict(shard_module._SNAPSHOT_REGISTRY) == before  # released
        pool.shutdown()  # idempotent; the token never double-frees

    def test_ship_bytes_accounting_is_always_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHIP_STATS", raising=False)
        topology = small_topology()
        events = make_events(topology, count=16)
        simulator = BgpSimulator(topology, shards=2, max_workers=2)
        try:
            simulator.apply(events)
            pool = simulator._shard_pool
            assert pool.tasks_dispatched > 0
            assert pool.ship_bytes > 0  # no env var needed any more
        finally:
            simulator.close()

    def test_pool_registered_for_atexit_teardown(self):
        from repro.routing import shard as shard_module

        topology = small_topology()
        events = make_events(topology, count=8)
        simulator = BgpSimulator(topology, shards=2, max_workers=2)
        try:
            simulator.apply(events)
            assert simulator._shard_pool in shard_module._LIVE_POOLS
        finally:
            simulator.close()

    def test_simulator_close_stops_workers(self):
        topology = small_topology()
        events = make_events(topology, count=8)
        simulator = BgpSimulator(topology, shards=2, max_workers=2)
        simulator.apply(events)
        pool = simulator._shard_pool
        assert any(executor is not None for executor in pool._executors)
        simulator.close()
        assert all(executor is None for executor in pool._executors)
        assert simulator._shard_pool is None and not simulator._pending_sync

    def test_pool_rebuild_honours_shrunk_budget(self, monkeypatch):
        """A dropped REPRO_SHARD_BUDGET must shrink the pool, not keep it."""
        topology = small_topology()
        events = make_events(topology, count=40)
        sequential = BgpSimulator(topology, shards=1)
        sequential.apply(events)
        sequential.apply(events[:20])

        monkeypatch.setenv("REPRO_SHARD_BUDGET", "4")
        simulator = BgpSimulator(topology, shards=4)
        try:
            simulator.apply(events)
            grown = simulator._shard_pool
            assert grown.workers == 4 and grown.shards == 4
            monkeypatch.setenv("REPRO_SHARD_BUDGET", "2")
            simulator.apply(events[:20])
            shrunk = simulator._shard_pool
            assert shrunk is not grown
            assert shrunk.workers == 2
            # The partition granularity survives the rebuild, so shard
            # placement (and the results) stay stable.
            assert shrunk.shards == 4
            assert_identical_state(sequential, simulator)
        finally:
            simulator.close()

    def test_pool_is_not_rebuilt_for_smaller_batches(self):
        topology = small_topology()
        events = make_events(topology, count=40)
        simulator = BgpSimulator(topology, shards=4, max_workers=2)
        try:
            simulator.apply(events)
            pool = simulator._shard_pool
            simulator.apply(events[:6], shards=2)
            assert simulator._shard_pool is pool
        finally:
            simulator.close()
