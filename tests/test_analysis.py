"""Tests for the repro.analysis lint engine: rules, suppressions, baseline, CLI.

The known-bad inputs live in ``tests/fixtures/lint/*.py_`` — the
trailing underscore keeps directory discovery (and therefore the CI
``repro-bgp lint src tests`` run) from flagging the fixtures themselves,
while explicit file arguments are linted regardless of extension.
"""

import json
import time
from pathlib import Path

import pytest

from repro.analysis import (
    ALL_PROJECT_RULES,
    MODULE_RULES,
    BaselineEntry,
    BaselineError,
    apply_baseline,
    lint_paths,
    lint_source,
    load_baseline,
    main,
    write_baseline,
)

FIXTURES = Path(__file__).parent / "fixtures" / "lint"
REPO_ROOT = Path(__file__).parent.parent


def codes_in(violations):
    return {v.code for v in violations}


def fixture(name: str) -> str:
    return str(FIXTURES / name)


# --------------------------------------------------------------- fixture files
class TestKnownBadFixtures:
    """Every known-bad fixture must be flagged with its rule code."""

    @pytest.mark.parametrize(
        "name, expected_codes",
        [
            ("rng_salted_hash.py_", {"RPR001", "RPR002"}),
            ("nondeterministic_sources.py_", {"RPR002"}),
            ("set_order_leak.py_", {"RPR003"}),
            ("shard_submit_lambda.py_", {"RPR010"}),
            ("worker_global_write.py_", {"RPR011"}),
            ("frozen_setattr.py_", {"RPR020"}),
            ("cached_hash_mutable.py_", {"RPR021"}),
            ("missing_noqa_reason.py_", {"RPR000", "RPR001"}),
            ("resident_unrecorded_mutation.py_", {"RPR030"}),
            ("config_uncaptured_attr.py_", {"RPR031"}),
            ("fork_aliased_state.py_", {"RPR011", "RPR032"}),
        ],
    )
    def test_fixture_flagged(self, name, expected_codes):
        report = lint_paths([fixture(name)])
        assert codes_in(report.violations) == expected_codes

    @pytest.mark.parametrize(
        "name",
        [
            "clean.py_",
            "shard_submit_picklable.py_",
            "resident_recorded_mutation.py_",
            "config_captured_attr.py_",
        ],
    )
    def test_known_good_fixture_is_clean(self, name):
        report = lint_paths([fixture(name)])
        assert report.violations == []

    def test_pr1_hash_salt_regression_fixture(self):
        """The PR 1 DeterministicRng bug shape stays permanently flagged."""
        report = lint_paths([fixture("rng_salted_hash.py_")])
        hash_hits = [v for v in report.violations if v.code == "RPR001"]
        assert len(hash_hits) == 2
        assert all(v.context == f"DeterministicRng.{m}" for v, m in zip(
            sorted(hash_hits, key=lambda v: v.line),
            ("child", "child_from_pair"),
        ))
        clock_hits = [v for v in report.violations if v.code == "RPR002"]
        assert len(clock_hits) == 1
        assert "time.time" in clock_hits[0].message

    def test_picklable_vs_lambda_submit_pair(self):
        """The only delta between the pair is the callable shape — RPR010."""
        bad = lint_paths([fixture("shard_submit_lambda.py_")])
        good = lint_paths([fixture("shard_submit_picklable.py_")])
        assert codes_in(bad.violations) == {"RPR010"}
        assert len(bad.violations) == 2  # one lambda, one closure
        assert good.violations == []


# ------------------------------------------------------------------ rule edges
class TestRuleEdges:
    """Sanctioned idioms must stay clean; violations must be caught inline."""

    def test_hash_allowed_in_dunder_hash(self):
        src = (
            "class Endpoint:\n"
            "    def __hash__(self):\n"
            "        return hash((self.asn, self.port))\n"
        )
        assert codes_in(lint_source(src)) == set()

    def test_hash_of_string_flagged_even_in_dunder_hash(self):
        src = (
            "class Named:\n"
            "    def __hash__(self):\n"
            "        return hash(self.name + ':suffix')\n"
        )
        assert "RPR001" in codes_in(lint_source(src))

    def test_hash_outside_sanctioned_context_flagged(self):
        assert "RPR001" in codes_in(
            lint_source("def key(pair):\n    return hash(pair)\n")
        )

    def test_seeded_random_instance_allowed(self):
        src = "import random\nrng = random.Random(7)\nx = rng.random()\n"
        assert codes_in(lint_source(src)) == set()

    def test_module_level_random_flagged(self):
        src = "import random\n\ndef roll():\n    return random.randint(0, 6)\n"
        assert "RPR002" in codes_in(lint_source(src))

    def test_from_import_random_resolved(self):
        src = "from random import shuffle\n\ndef mix(xs):\n    shuffle(xs)\n"
        assert "RPR002" in codes_in(lint_source(src))

    def test_sorted_set_iteration_clean(self):
        src = (
            "def rows(asns: set[int]) -> list[int]:\n"
            "    return [a for a in sorted(asns)]\n"
        )
        assert codes_in(lint_source(src)) == set()

    def test_order_free_set_consumers_clean(self):
        src = (
            "def total(ws: set[int]) -> int:\n"
            "    return sum(w for w in ws)\n"
            "\n"
            "def dedupe(ws: set[int]) -> set[int]:\n"
            "    return {w * 2 for w in ws}\n"
        )
        assert codes_in(lint_source(src)) == set()

    def test_list_of_inferred_set_flagged(self):
        src = (
            "def leak():\n"
            "    seen = {1, 2, 3}\n"
            "    return list(seen)\n"
        )
        assert "RPR003" in codes_in(lint_source(src))

    def test_submit_of_imported_function_clean(self):
        src = (
            "from concurrent.futures import ProcessPoolExecutor\n"
            "from repro.routing import shard as shard_module\n"
            "\n"
            "def run(pool, payload):\n"
            "    return pool.submit(shard_module._run_shard, payload)\n"
        )
        assert codes_in(lint_source(src)) == set()

    def test_setattr_allowed_in_post_init_and_helper(self):
        src = (
            "class Frozen:\n"
            "    def __post_init__(self):\n"
            "        object.__setattr__(self, 'x', 1)\n"
            "\n"
            "def set_frozen_field(instance, name, value):\n"
            "    object.__setattr__(instance, name, value)\n"
        )
        assert codes_in(lint_source(src)) == set()

    def test_cached_hash_with_immutable_fields_clean(self):
        src = (
            "from dataclasses import dataclass\n"
            "\n"
            "@dataclass(frozen=True)\n"
            "class P:\n"
            "    network: int\n"
            "    length: int\n"
            "    _hash: int = 0\n"
        )
        assert codes_in(lint_source(src)) == set()

    def test_worker_entry_reachability_spans_helpers(self):
        """RPR011 walks the call graph, not just the entry function body."""
        report = lint_paths([fixture("worker_global_write.py_")])
        contexts = {v.context for v in report.violations}
        assert contexts == {"_record", "_run_shard"}


# ------------------------------------------------------------- dataflow edges
class TestDataflowRuleEdges:
    """CFG/def-use behaviour of the RPR03x sync-protocol rules."""

    def test_record_on_one_branch_only_is_flagged(self):
        src = (
            "def partial(simulator, prefix, flag):\n"
            "    router = simulator.routers[65001]\n"
            "    router.loc_rib.remove(prefix)\n"
            "    if flag:\n"
            "        simulator._pending_sync.setdefault(prefix, set()).add(65001)\n"
        )
        assert "RPR030" in codes_in(lint_source(src))

    def test_record_before_mutation_is_sanctioned(self):
        """Record-then-mutate is as coherent as mutate-then-record."""
        src = (
            "def touch_first(simulator, prefix):\n"
            "    simulator._last_touched.setdefault(prefix, set()).add(65001)\n"
            "    router = simulator.routers[65001]\n"
            "    router.loc_rib.remove(prefix)\n"
        )
        assert "RPR030" not in codes_in(lint_source(src))

    def test_record_inside_following_loop_is_sanctioned(self):
        """Loop bodies execute at least once in the CFG under-approximation."""
        src = (
            "def loops(simulator, prefix, asns):\n"
            "    router = simulator.routers[65001]\n"
            "    router.originate(prefix, None)\n"
            "    for asn in asns:\n"
            "        simulator._last_touched.setdefault(prefix, set()).add(asn)\n"
        )
        assert "RPR030" not in codes_in(lint_source(src))

    def test_state_shipping_helpers_are_exempt(self):
        """install/clear_prefix_state ARE the sync protocol — no records needed."""
        src = (
            "def install_prefix_state(simulator, states):\n"
            "    for state in states:\n"
            "        router = simulator.routers[state[0]]\n"
            "        router.loc_rib.remove(state[1])\n"
        )
        assert "RPR030" not in codes_in(lint_source(src))

    def test_mutator_on_non_router_value_not_flagged(self):
        src = (
            "def tally(report, prefix):\n"
            "    report.rows.append(prefix)\n"
            "    return report\n"
        )
        assert "RPR030" not in codes_in(lint_source(src))

    def test_config_rule_needs_a_capture_to_diff_against(self):
        """Without capture_router_config in the module RPR031 stays quiet."""
        src = (
            "class MiniRouter:\n"
            "    def __init__(self):\n"
            "        self.vendor = 'frr'\n"
            "\n"
            "def flip(router):\n"
            "    router.vendor = 'bird'\n"
        )
        assert "RPR031" not in codes_in(lint_source(src))

    def test_config_rule_ignores_non_router_classes(self):
        """A class sharing < 2 captured attrs is not the fingerprinted router."""
        report = lint_paths([fixture("config_captured_attr.py_")])
        assert codes_in(report.violations) == set()

    def test_fork_alias_anchored_at_parent_side_read(self):
        report = lint_paths([fixture("fork_aliased_state.py_")])
        fork_hits = [v for v in report.violations if v.code == "RPR032"]
        assert len(fork_hits) == 1
        assert fork_hits[0].context == "drain"
        assert "_SHARED_CACHE" in fork_hits[0].message

    def test_test_modules_exempt_from_resident_rules_only(self):
        """test_* files poke simulator state freely, but fork aliasing still counts."""
        src = (
            "def poke(simulator, prefix, entry):\n"
            "    router = simulator.routers[65001]\n"
            "    router.loc_rib.set_best(prefix, entry)\n"
        )
        assert "RPR030" in codes_in(lint_source(src))
        assert "RPR030" not in codes_in(
            lint_source(src, filename="tests/test_poke.py")
        )


# ---------------------------------------------------------------- suppressions
class TestSuppressions:
    def test_valid_noqa_with_reason_suppresses(self, tmp_path):
        target = tmp_path / "snippet.py_"
        target.write_text(
            "def key(label):\n"
            "    return hash(label)  # repro: noqa[RPR001]: golden-file fingerprint, same-process only\n"
        )
        report = lint_paths([str(target)])
        assert report.violations == []
        assert report.suppressed == 1

    def test_noqa_without_reason_is_integrity_violation(self):
        report = lint_paths([fixture("missing_noqa_reason.py_")])
        codes = codes_in(report.violations)
        # The malformed comment does NOT suppress, and is itself flagged.
        assert codes == {"RPR000", "RPR001"}

    def test_noqa_for_wrong_code_does_not_suppress(self, tmp_path):
        target = tmp_path / "snippet.py_"
        target.write_text(
            "def key(label):\n"
            "    return hash(label)  # repro: noqa[RPR003]: not the right code\n"
        )
        report = lint_paths([str(target)])
        assert "RPR001" in codes_in(report.violations)

    def test_integrity_code_survives_select(self):
        report = lint_paths([fixture("missing_noqa_reason.py_")], select=["RPR002"])
        assert codes_in(report.violations) == {"RPR000"}

    def test_noqa_suppresses_dataflow_codes(self, tmp_path):
        """RPR03x findings honour the same inline suppression contract."""
        target = tmp_path / "snippet.py_"
        target.write_text(
            "def poke(simulator, prefix, entry):\n"
            "    router = simulator.routers[65001]\n"
            "    router.loc_rib.set_best(prefix, entry)  # repro: noqa[RPR030]: bench harness, no resident pool attached\n"
        )
        report = lint_paths([str(target)])
        assert report.violations == []
        assert report.suppressed == 1


# -------------------------------------------------------------------- baseline
class TestBaseline:
    def test_round_trip_absorbs_findings(self, tmp_path):
        report = lint_paths([fixture("set_order_leak.py_")])
        assert report.violations
        baseline_file = tmp_path / "baseline.json"
        write_baseline(baseline_file, report.violations)
        entries = load_baseline(baseline_file)
        remaining, baselined, stale = apply_baseline(report.violations, entries)
        assert remaining == []
        assert baselined == len(report.violations)
        assert stale == []

    def test_missing_reason_rejected(self, tmp_path):
        baseline_file = tmp_path / "baseline.json"
        baseline_file.write_text(json.dumps({
            "version": 1,
            "entries": [{
                "code": "RPR003",
                "path": "x.py",
                "context": "f",
                "message": "m",
                "reason": "   ",
            }],
        }))
        with pytest.raises(BaselineError):
            load_baseline(baseline_file)

    def test_stale_entries_reported(self):
        entry = BaselineEntry(
            code="RPR001",
            path="gone.py",
            context="f",
            message="m",
            reason="historical",
        )
        remaining, baselined, stale = apply_baseline([], [entry])
        assert remaining == [] and baselined == 0
        assert stale == [entry]

    def test_checked_in_baseline_has_no_pending_reasons(self):
        entries = load_baseline(REPO_ROOT / ".repro-lint-baseline.json")
        assert entries, "shipped baseline should carry the shard worker-state entries"
        assert all("PENDING" not in e.reason for e in entries)
        assert {e.code for e in entries} <= {"RPR011", "RPR032"}

    @pytest.mark.parametrize(
        "name",
        [
            "resident_unrecorded_mutation.py_",
            "config_uncaptured_attr.py_",
            "fork_aliased_state.py_",
        ],
    )
    def test_round_trip_absorbs_dataflow_findings(self, name, tmp_path):
        """The RPR03x codes participate in the baseline workflow like any other."""
        report = lint_paths([fixture(name)])
        assert report.violations
        baseline_file = tmp_path / "baseline.json"
        write_baseline(baseline_file, report.violations)
        remaining, baselined, stale = apply_baseline(
            report.violations, load_baseline(baseline_file)
        )
        assert remaining == []
        assert baselined == len(report.violations)
        assert stale == []


# ------------------------------------------------------------------------- CLI
class TestCli:
    def test_exit_zero_on_clean_fixture(self, capsys):
        assert main([fixture("clean.py_"), "--no-baseline"]) == 0

    @pytest.mark.parametrize(
        "name",
        [
            "rng_salted_hash.py_",
            "nondeterministic_sources.py_",
            "set_order_leak.py_",
            "shard_submit_lambda.py_",
            "worker_global_write.py_",
            "frozen_setattr.py_",
            "cached_hash_mutable.py_",
            "missing_noqa_reason.py_",
            "resident_unrecorded_mutation.py_",
            "config_uncaptured_attr.py_",
            "fork_aliased_state.py_",
        ],
    )
    def test_exit_nonzero_on_each_known_bad_fixture(self, name, capsys):
        assert main([fixture(name), "--no-baseline"]) == 1

    def test_json_output_is_machine_readable(self, capsys):
        assert main([fixture("set_order_leak.py_"), "--no-baseline", "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["files_checked"] == 1
        assert payload["summary"]["ok"] is False
        assert {v["code"] for v in payload["violations"]} == {"RPR003"}
        assert all({"path", "line", "column", "context", "message"} <= set(v)
                   for v in payload["violations"])

    def test_select_narrows_run(self, capsys):
        code = main([
            fixture("rng_salted_hash.py_"), "--no-baseline", "--select", "RPR002",
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "RPR002" in out and "RPR001" not in out

    def test_ignore_drops_code(self, capsys):
        code = main([
            fixture("rng_salted_hash.py_"), "--no-baseline",
            "--ignore", "RPR001,RPR002",
        ])
        assert code == 0

    def test_unknown_code_is_config_error(self, capsys):
        assert main(["--select", "RPR999", fixture("clean.py_")]) == 2

    def test_missing_path_is_config_error(self, capsys):
        assert main(["does/not/exist.py", "--no-baseline"]) == 2

    def test_syntax_error_reports_integrity_violation(self, tmp_path, capsys):
        bad = tmp_path / "broken.py_"
        bad.write_text("def oops(:\n")
        assert main([str(bad), "--no-baseline"]) == 1
        assert "RPR000" in capsys.readouterr().out

    def test_list_rules_mentions_every_code(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in (*MODULE_RULES, *ALL_PROJECT_RULES):
            assert rule.code in out

    def test_github_format_emits_error_annotations(self, capsys):
        code = main([
            fixture("set_order_leak.py_"), "--no-baseline", "--format", "github",
        ])
        assert code == 1
        out = capsys.readouterr().out
        lines = [l for l in out.splitlines() if l.startswith("::error ")]
        assert lines, out
        assert all("file=" in l and "line=" in l and "title=RPR003" in l
                   for l in lines)

    def test_github_format_escapes_annotation_payloads(self):
        from repro.analysis.engine import _github_escape

        assert _github_escape("a\nb\rc%d") == "a%0Ab%0Dc%25d"
        # Property values additionally escape the workflow-command delimiters.
        assert _github_escape("p,q:r", property=True) == "p%2Cq%3Ar"


# ---------------------------------------------------------------- project gate
class TestProjectTree:
    def test_shipped_src_tree_lints_clean(self, capsys):
        """The acceptance gate: repro-bgp lint src exits 0 on the shipped tree."""
        code = main([
            str(REPO_ROOT / "src"),
            "--baseline", str(REPO_ROOT / ".repro-lint-baseline.json"),
        ])
        assert code == 0, capsys.readouterr().out

    def test_shipped_tests_tree_lints_clean(self, capsys):
        code = main([
            str(REPO_ROOT / "tests"),
            "--baseline", str(REPO_ROOT / ".repro-lint-baseline.json"),
        ])
        assert code == 0, capsys.readouterr().out


# ------------------------------------------------------------------ lint perf
class TestLintPerformance:
    """Each module is parsed and walked once, shared across all rules."""

    def test_node_index_built_once_and_shared(self):
        import ast

        from repro.analysis.engine import module_from_source

        module = module_from_source(
            "def f(x):\n    return [y for y in sorted(x)]\n",
            Path("<snippet>"),
            "<snippet>",
        )
        calls = module.nodes(ast.Call)
        assert module.nodes(ast.Call) is calls  # cached bucket, no re-walk
        assert {type(n) for n in calls} == {ast.Call}
        mixed = module.nodes((ast.Call, ast.FunctionDef))
        assert [type(n) for n in mixed[:1]] == [ast.FunctionDef]  # source order
        assert len(mixed) == len(calls) + 1

    def test_full_src_lint_stays_fast(self, capsys):
        """Wall-time smoke: the whole-tree lint (every rule, CFG + call graph)
        must stay interactive.  The bound is deliberately generous — it
        catches an accidental per-rule re-parse (an order-of-magnitude
        regression), not scheduler jitter."""
        start = time.perf_counter()
        main([
            str(REPO_ROOT / "src"),
            "--baseline", str(REPO_ROOT / ".repro-lint-baseline.json"),
        ])
        elapsed = time.perf_counter() - start
        capsys.readouterr()
        assert elapsed < 20.0, f"lint of src took {elapsed:.1f}s"
