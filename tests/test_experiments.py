"""The declarative experiment subsystem: specs, registry, lifecycle, grid."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ExperimentError
from repro.experiments import (
    LIFECYCLE_STAGES,
    Experiment,
    ExperimentResult,
    ExperimentSpec,
    ExperimentStatus,
    GridRunner,
    available,
    expand_grid,
    get,
    load_results,
    register,
    run_experiment,
    worker_budget,
    write_results,
)
from repro.experiments import registry as registry_module


class TestSpec:
    def test_round_trip(self):
        spec = ExperimentSpec(
            name="blackhole-sweep",
            seed=7,
            scale="small",
            topology={"transit_count": 25},
            platforms=("peering", "atlas"),
            params={"probes": 30, "confirm": False},
        )
        data = spec.to_dict()
        assert ExperimentSpec.from_dict(data) == spec
        # The dict form must survive JSON (that is the persistence format).
        assert ExperimentSpec.from_dict(json.loads(json.dumps(data))) == spec

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ExperimentError):
            ExperimentSpec.from_dict({"name": "x", "seeds": [1, 2]})

    def test_from_dict_requires_name(self):
        with pytest.raises(ExperimentError):
            ExperimentSpec.from_dict({"seed": 1})

    def test_unknown_scale_rejected(self):
        with pytest.raises(ExperimentError):
            ExperimentSpec(name="x", scale="galactic")

    def test_unknown_topology_override_rejected(self):
        with pytest.raises(ExperimentError):
            ExperimentSpec(name="x", topology={"tier0_count": 3})

    def test_seed_topology_override_rejected(self):
        """The seed comes from spec.seed; a duplicate in the overrides would
        otherwise surface as an uncaught TypeError in build_topology()."""
        with pytest.raises(ExperimentError, match="seed"):
            ExperimentSpec(name="x", topology={"seed": 7})

    def test_explicit_scale_replaces_default_topology(self):
        """An explicitly requested scale must not be masked by the
        experiment's canonical topology overrides."""
        cls = get("blackhole-sweep")
        canonical = cls.default_spec().topology_parameters()
        assert canonical.transit_count == 25
        large = cls.default_spec(scale="large").topology_parameters()
        assert (large.tier1_count, large.transit_count, large.stub_count) == (8, 120, 700)

    def test_topology_parameters_merge_preset_and_overrides(self):
        spec = ExperimentSpec(name="x", seed=9, scale="small", topology={"transit_count": 33})
        parameters = spec.topology_parameters()
        assert parameters.seed == 9
        assert parameters.tier1_count == 3  # from the small preset
        assert parameters.transit_count == 33  # override wins
        assert parameters.stub_count == 80

    def test_build_topology_is_deterministic(self):
        spec = ExperimentSpec(name="x", seed=5, scale="small")
        first = spec.build_topology()
        second = spec.build_topology()
        assert sorted(a.asn for a in first) == sorted(a.asn for a in second)

    def test_with_params_and_replace(self):
        spec = ExperimentSpec(name="x", params={"a": 1})
        updated = spec.with_params(b=2).replace(seed=3)
        assert updated.params == {"a": 1, "b": 2}
        assert updated.seed == 3
        assert spec.params == {"a": 1} and spec.seed == 42  # original untouched


class TestResult:
    def test_json_round_trip(self):
        result = ExperimentResult(
            name="x",
            spec={"name": "x", "seed": 1},
            status=ExperimentStatus.OK,
            metrics={"value": 3},
            timings={"build": 0.5},
        )
        loaded = ExperimentResult.from_json(result.to_json())
        assert loaded == result

    def test_comparable_excludes_timings(self):
        one = ExperimentResult(name="x", spec={}, metrics={"v": 1}, timings={"build": 1.0})
        two = ExperimentResult(name="x", spec={}, metrics={"v": 1}, timings={"build": 9.9})
        assert one.comparable() == two.comparable()
        assert one.to_dict() != two.to_dict()

    def test_status_semantics(self):
        assert ExperimentResult(name="x", spec={}).succeeded
        assert not ExperimentResult(name="x", spec={}, status=ExperimentStatus.FAILED).succeeded


class TestRegistry:
    def test_builtin_experiments_registered(self):
        names = available()
        for expected in (
            "feasibility",
            "rtbh",
            "steering",
            "route-manipulation",
            "propagation-check",
            "blackhole-sweep",
            "rtbh-wild",
            "report",
        ):
            assert expected in names

    def test_get_returns_class_and_sets_name(self):
        cls = get("feasibility")
        assert issubclass(cls, Experiment)
        assert cls.name == "feasibility"

    def test_unknown_name_raises_with_catalogue(self):
        with pytest.raises(ExperimentError, match="available:"):
            get("definitely-not-registered")

    def test_register_and_run_custom_experiment(self):
        @register("test-custom")
        class CustomExperiment(Experiment):
            description = "unit-test experiment"
            default_params = {"value": 0}

            def execute(self, ctx):
                return {"answer": ctx.spec.params["value"] * 2}

        try:
            spec = CustomExperiment.default_spec(value=21)
            result = run_experiment(spec)
            assert result.status is ExperimentStatus.OK
            assert result.metrics == {"answer": 42}
        finally:
            del registry_module._REGISTRY["test-custom"]

    def test_duplicate_name_rejected(self):
        @register("test-duplicate")
        class FirstExperiment(Experiment):
            def execute(self, ctx):
                return {}

        try:
            with pytest.raises(ExperimentError, match="already registered"):
                @register("test-duplicate")
                class SecondExperiment(Experiment):
                    def execute(self, ctx):
                        return {}
        finally:
            del registry_module._REGISTRY["test-duplicate"]


class TestLifecycle:
    def test_every_stage_timed(self):
        cls = get("route-manipulation")
        result = cls(cls.default_spec()).run()
        assert result.status is ExperimentStatus.OK
        assert set(result.timings) == set(LIFECYCLE_STAGES)
        assert all(timing >= 0 for timing in result.timings.values())

    def test_spec_name_mismatch_rejected(self):
        cls = get("rtbh")
        with pytest.raises(ExperimentError):
            cls(ExperimentSpec(name="feasibility"))

    def test_feasibility_metrics_match_direct_run(self):
        from repro.attacks.feasibility import build_feasibility_matrix

        cls = get("feasibility")
        experiment = cls(cls.default_spec(seed=5))
        result = experiment.run()
        matrix = build_feasibility_matrix(seed=5)
        assert result.metrics["seed"] == 5
        assert result.metrics["row_count"] == len(matrix.rows) == 8
        assert [row["difficulty"] for row in result.metrics["rows"]] == [
            row.difficulty.value for row in matrix.rows
        ]
        # The rendered text is byte-identical to the direct Table 3 render.
        assert experiment.render_text(result) == matrix.to_table().render()

    def test_validation_failure_is_failed_status(self):
        @register("test-failing")
        class FailingExperiment(Experiment):
            def execute(self, ctx):
                return {"ok": False}

            def validate(self, ctx, metrics):
                return False

        try:
            result = run_experiment(FailingExperiment.default_spec())
            assert result.status is ExperimentStatus.FAILED
            assert not result.succeeded
        finally:
            del registry_module._REGISTRY["test-failing"]

    def test_library_error_is_captured_as_error_status(self):
        @register("test-erroring")
        class ErroringExperiment(Experiment):
            def execute(self, ctx):
                raise ExperimentError("boom")

        try:
            result = run_experiment(ErroringExperiment.default_spec())
            assert result.status is ExperimentStatus.ERROR
            assert "boom" in result.error
            assert result.metrics == {}
        finally:
            del registry_module._REGISTRY["test-erroring"]

    def test_unknown_param_rejected(self):
        """A typo'd parameter must not silently run the default variant."""
        with pytest.raises(ExperimentError, match="hijakc"):
            get("rtbh").default_spec(hijakc=True)

    def test_hijack_spec_records_research_platform(self):
        """The replayable spec must name the platforms actually attached."""
        cls = get("rtbh-wild")
        assert cls.default_spec().platforms == ("peering", "atlas")
        assert cls.default_spec(hijack=True).platforms == ("research", "atlas")

    def test_canonical_experiments_reject_scale(self):
        """Figure-topology experiments fail loudly instead of recording a
        scale that never influenced the outcome."""
        for name in ("feasibility", "rtbh", "steering", "route-manipulation"):
            cls = get(name)
            result = run_experiment(cls.default_spec(scale="small"))
            assert result.status is ExperimentStatus.ERROR, name
            assert "canonical paper topology" in result.error

    def test_rtbh_hijack_param(self):
        cls = get("rtbh")
        result = run_experiment(cls.default_spec(hijack=True))
        assert result.status is ExperimentStatus.OK
        assert result.metrics["details"]["hijack"] is True
        assert result.metrics["attack_prefix"].endswith("/32")

    def test_steering_variants(self):
        cls = get("steering")
        both = run_experiment(cls.default_spec())
        assert set(both.metrics["variants"]) == {"prepend", "local-pref"}
        single = run_experiment(cls.default_spec(variant="local-pref"))
        assert set(single.metrics["variants"]) == {"local-pref"}
        bad = run_experiment(cls.default_spec(variant="teleport"))
        assert bad.status is ExperimentStatus.ERROR

    def test_results_serialize_for_replay(self):
        """Acceptance: registry -> spec -> result -> to_json for every scenario."""
        for name, params in [
            ("feasibility", {}),
            ("rtbh", {}),
            ("steering", {}),
            ("route-manipulation", {}),
        ]:
            cls = get(name)
            result = run_experiment(cls.default_spec(**params))
            assert result.status is ExperimentStatus.OK, name
            replayed = ExperimentResult.from_json(result.to_json())
            assert replayed.comparable() == result.comparable()


class TestGrid:
    def test_expand_grid_is_deterministic_and_ordered(self):
        specs = expand_grid(
            "route-manipulation",
            seeds=(1, 2),
            param_grid={"member_count": [4, 6]},
        )
        assert [spec.seed for spec in specs] == [1, 1, 2, 2]
        assert [spec.params["member_count"] for spec in specs] == [4, 6, 4, 6]
        assert specs == expand_grid(
            "route-manipulation", seeds=(1, 2), param_grid={"member_count": [4, 6]}
        )

    def test_parallel_equals_sequential(self):
        """Acceptance: a >=4-seed grid is identical parallel vs sequential."""
        specs = expand_grid("route-manipulation", seeds=(1, 2, 3, 4))
        runner = GridRunner(max_workers=2)
        sequential = runner.run_sequential(specs)
        parallel = runner.run(specs)
        assert [result.comparable() for result in sequential] == [
            result.comparable() for result in parallel
        ]
        assert [result.spec["seed"] for result in parallel] == [1, 2, 3, 4]

    def test_single_spec_grid_runs_in_process(self):
        specs = expand_grid("feasibility", seeds=(3,))
        results = GridRunner().run(specs)
        assert len(results) == 1 and results[0].status is ExperimentStatus.OK
        assert results[0].metrics["seed"] == 3

    def test_grid_survives_erroring_cells(self):
        specs = expand_grid("steering", seeds=(1, 2), param_grid={"variant": ["prepend", "bogus"]})
        results = GridRunner(max_workers=2).run(specs)
        assert [result.status for result in results] == [
            ExperimentStatus.OK,
            ExperimentStatus.ERROR,
            ExperimentStatus.OK,
            ExperimentStatus.ERROR,
        ]


class TestGridPersistence:
    def test_run_streams_results_to_disk_and_replays(self, tmp_path):
        specs = expand_grid("route-manipulation", seeds=(1, 2, 3))
        path = tmp_path / "results.jsonl"
        runner = GridRunner(max_workers=2)
        results = runner.run(specs, output_path=str(path))
        assert len(path.read_text().strip().splitlines()) == 3
        replayed = load_results(str(path))
        assert [result.comparable() for result in replayed] == [
            result.comparable() for result in results
        ]
        # The replay is bit-faithful: timings survive the round trip too.
        assert [result.timings for result in replayed] == [
            result.timings for result in results
        ]

    def test_sequential_run_streams_too(self, tmp_path):
        specs = expand_grid("route-manipulation", seeds=(5,))
        path = tmp_path / "single.jsonl"
        results = GridRunner().run(specs, parallel=False, output_path=str(path))
        assert [r.comparable() for r in load_results(str(path))] == [
            results[0].comparable()
        ]

    def test_write_results_appends(self, tmp_path):
        specs = expand_grid("route-manipulation", seeds=(1,))
        [result] = GridRunner().run(specs, parallel=False)
        path = tmp_path / "log.jsonl"
        assert write_results(str(path), [result]) == 1
        assert write_results(str(path), [result], append=True) == 1
        assert len(load_results(str(path))) == 2


class TestWorkerBudget:
    def test_composes_grid_workers_and_shards_without_oversubscription(self):
        # 8 CPUs, 4-way sharding: at most 2 grid workers, 4 shards each.
        workers, shard_budget = worker_budget(10, shards_per_task=4, cpu_total=8)
        assert workers * 4 <= 8
        assert (workers, shard_budget) == (2, 4)
        # Unsharded specs: the grid takes the whole machine, shards get 1.
        workers, shard_budget = worker_budget(10, shards_per_task=1, cpu_total=8)
        assert (workers, shard_budget) == (8, 1)
        # Never more workers than tasks, and never zero of anything.
        workers, shard_budget = worker_budget(2, shards_per_task=3, cpu_total=8)
        assert workers == 2 and workers * 3 <= 8
        workers, shard_budget = worker_budget(5, shards_per_task=16, cpu_total=4)
        assert workers == 1 and shard_budget == 4

    def test_max_workers_is_an_additional_cap(self):
        workers, _budget = worker_budget(10, max_workers=3, shards_per_task=1, cpu_total=8)
        assert workers == 3

    def test_shards_param_reaches_experiment_and_keeps_results_identical(self):
        spec_plain = get("feasibility").default_spec(seed=3)
        spec_sharded = get("feasibility").default_spec(seed=3, shards=2)
        plain = run_experiment(spec_plain)
        sharded = run_experiment(spec_sharded)
        assert sharded.status is ExperimentStatus.OK
        # The spec (shards recorded) differs; the outcome must not.
        assert plain.metrics == sharded.metrics
        assert spec_sharded.params["shards"] == 2

    def test_invalid_shards_param_is_captured(self):
        spec = get("feasibility").default_spec(seed=3, shards="bogus")
        result = run_experiment(spec)
        assert result.status is ExperimentStatus.ERROR
        assert "shards" in (result.error or "")
