"""Tests for the attack scenarios (Sections 3, 5, and the Table 3 matrix)."""

from __future__ import annotations

import pytest

from repro.attacks.conditions import (
    check_necessary_condition,
    check_sufficient_condition,
    community_propagation_path,
)
from repro.attacks.feasibility import Difficulty, build_feasibility_matrix
from repro.attacks.manipulation import RouteManipulationAttack
from repro.attacks.rtbh import RtbhAttack
from repro.attacks.scenario import (
    ScenarioRoles,
    build_figure2_topology,
    build_figure7_topology,
    build_figure8b_topology,
    build_figure9_ixp,
)
from repro.attacks.steering import LocalPrefSteeringAttack, PrependSteeringAttack
from repro.bgp.community import Community
from repro.bgp.prefix import Prefix
from repro.exceptions import AttackError
from repro.policy.community_policy import StripAllPolicy


VICTIM_FIG7 = Prefix.from_string("203.0.113.0/24")
VICTIM_FIG2 = Prefix.from_string("198.51.100.0/24")
VICTIM_FIG8B = Prefix.from_string("198.18.0.0/24")


class TestScenarioTopologies:
    def test_figure2_topology(self):
        topology = build_figure2_topology()
        assert topology.get_as(3).services is not None
        assert topology.origin_of(VICTIM_FIG2) == 1
        assert topology.validate() == []

    def test_figure7_topology(self):
        topology = build_figure7_topology()
        assert topology.get_as(3).services.blackhole_communities()
        assert topology.get_as(4).services.blackhole_communities()
        assert topology.validate() == []

    def test_figure9_topology(self):
        topology, ixp = build_figure9_ixp(member_count=8)
        assert ixp.member_count() == 8
        assert topology.get_as(ixp.route_server_asn).services is not None


class TestConditions:
    def test_necessary_condition_holds_on_forwarding_path(self):
        topology = build_figure7_topology()
        report = check_necessary_condition(topology, attacker_asn=2, target_asn=3)
        assert report.holds
        assert report.path is not None

    def test_necessary_condition_fails_without_services(self):
        topology = build_figure7_topology()
        topology.get_as(3).services = None
        report = check_necessary_condition(topology, attacker_asn=2, target_asn=3)
        assert not report.holds

    def test_propagation_path_detects_stripping(self):
        topology = build_figure2_topology()
        community = Community(3, 33)
        ok = community_propagation_path(topology, attacker_asn=2, target_asn=3, community=community)
        assert ok.holds
        # If the intermediate AS4 strips everything, the condition fails.
        topology.get_as(4).propagation_policy = StripAllPolicy()
        blocked = community_propagation_path(
            topology, attacker_asn=2, target_asn=3, community=community
        )
        assert not blocked.holds
        assert any("strips" in reason for reason in blocked.reasons)

    def test_sufficient_condition_hijack_capability(self):
        topology = build_figure7_topology()
        community = Community(3, 666)
        ok = check_sufficient_condition(
            topology, 2, 3, community, requires_hijack=True, attacker_can_hijack=True
        )
        assert ok.holds
        blocked = check_sufficient_condition(
            topology, 2, 3, community, requires_hijack=True, attacker_can_hijack=False
        )
        assert not blocked.holds


class TestRtbh:
    def test_without_hijack_blackholes_at_target(self):
        topology = build_figure7_topology()
        roles = ScenarioRoles(attacker_asn=2, attackee_asn=1, community_target_asn=3)
        attack = RtbhAttack(topology, roles, VICTIM_FIG7, use_hijack=False)
        result = attack.run(vantage_points=[4])
        assert result.succeeded
        assert 3 in result.blackholed_at
        assert result.target_next_hop == "null0 (discard)"
        assert 4 in result.reachable_before
        assert 4 in result.unreachable_from

    def test_with_hijack_uses_more_specific(self):
        topology = build_figure7_topology()
        roles = ScenarioRoles(attacker_asn=2, attackee_asn=1, community_target_asn=3)
        attack = RtbhAttack(topology, roles, VICTIM_FIG7, use_hijack=True)
        result = attack.run(vantage_points=[4])
        assert result.succeeded
        assert result.attack_prefix.length == 32
        assert VICTIM_FIG7.contains_prefix(result.attack_prefix)

    def test_requires_blackhole_service(self):
        topology = build_figure7_topology()
        topology.get_as(3).services = None
        roles = ScenarioRoles(attacker_asn=2, attackee_asn=1, community_target_asn=3)
        with pytest.raises(AttackError):
            RtbhAttack(topology, roles, VICTIM_FIG7)

    def test_as4_as_community_target_via_propagation(self):
        # The same attack works against AS4's service when AS3 propagates communities.
        topology = build_figure7_topology()
        roles = ScenarioRoles(attacker_asn=2, attackee_asn=1, community_target_asn=4)
        attack = RtbhAttack(topology, roles, VICTIM_FIG7, use_hijack=False)
        result = attack.run(vantage_points=[])
        assert 4 in result.blackholed_at


class TestSteering:
    def test_prepend_steering_moves_observer_path(self):
        topology = build_figure2_topology()
        roles = ScenarioRoles(attacker_asn=2, attackee_asn=1, community_target_asn=3)
        attack = PrependSteeringAttack(topology, roles, VICTIM_FIG2, observer_asn=6)
        result = attack.run()
        assert result.succeeded
        assert 3 in result.path_before
        assert 3 not in result.path_after
        assert result.path_changed

    def test_prepend_steering_blocked_by_stripping_intermediate(self):
        topology = build_figure2_topology()
        topology.get_as(4).propagation_policy = StripAllPolicy()
        roles = ScenarioRoles(attacker_asn=2, attackee_asn=1, community_target_asn=3)
        attack = PrependSteeringAttack(topology, roles, VICTIM_FIG2, observer_asn=6)
        result = attack.run()
        assert not result.succeeded

    def test_prepend_requires_target_service(self):
        topology = build_figure2_topology()
        topology.get_as(3).services = None
        roles = ScenarioRoles(attacker_asn=2, attackee_asn=1, community_target_asn=3)
        with pytest.raises(AttackError):
            PrependSteeringAttack(topology, roles, VICTIM_FIG2, observer_asn=6)

    def test_local_pref_steering_changes_ingress(self):
        topology = build_figure8b_topology()
        roles = ScenarioRoles(attacker_asn=2, attackee_asn=5, community_target_asn=1)
        attack = LocalPrefSteeringAttack(topology, roles, VICTIM_FIG8B)
        result = attack.run()
        assert result.succeeded
        assert result.details["ingress_before"] == 2
        assert result.details["ingress_after"] == 4
        assert result.path_changed

    def test_local_pref_steering_gated_by_business_relationship(self):
        # If AS1 only acts on communities from customers and the tagged session
        # arrives from a peer instead, the attack fails.
        topology = build_figure8b_topology()
        from repro.topology.relationships import Relationship

        # Rewire AS2 as a peer of AS1 rather than a customer.
        topology.relationships._relationships[(1, 2)] = Relationship.PEER
        topology.relationships._relationships[(2, 1)] = Relationship.PEER
        roles = ScenarioRoles(attacker_asn=2, attackee_asn=5, community_target_asn=1)
        attack = LocalPrefSteeringAttack(topology, roles, VICTIM_FIG8B)
        result = attack.run()
        assert not result.succeeded


class TestRouteManipulation:
    def test_suppression_removes_route(self):
        topology, ixp = build_figure9_ixp()
        roles = ScenarioRoles(attacker_asn=2, attackee_asn=1, community_target_asn=ixp.route_server_asn)
        attack = RouteManipulationAttack(
            topology, ixp, roles, Prefix.from_string("203.0.113.0/24"), victim_member_asn=4
        )
        result = attack.run()
        assert result.succeeded
        assert result.attackee_route_before
        assert not result.attackee_route_after
        assert result.route_withdrawn

    def test_flipped_evaluation_order_defeats_the_attack(self):
        topology, ixp = build_figure9_ixp()
        ixp.route_server_config.suppress_before_redistribute = False
        roles = ScenarioRoles(attacker_asn=2, attackee_asn=1, community_target_asn=ixp.route_server_asn)
        attack = RouteManipulationAttack(
            topology, ixp, roles, Prefix.from_string("203.0.113.0/24"), victim_member_asn=4
        )
        result = attack.run()
        assert not result.succeeded


class TestFeasibilityMatrix:
    @pytest.fixture(scope="class")
    def matrix(self):
        return build_feasibility_matrix()

    def test_all_scenarios_succeed(self, matrix):
        assert len(matrix.rows) == 8
        assert all(row.succeeded for row in matrix.rows)

    def test_difficulty_grades_match_paper(self, matrix):
        assert matrix.difficulty_of("Blackholing", False) == Difficulty.EASY
        assert matrix.difficulty_of("Blackholing", True) == Difficulty.EASY
        assert matrix.difficulty_of("Traffic steering (local pref)", False) == Difficulty.HARD
        assert matrix.difficulty_of("Traffic steering (path prepending)", True) == Difficulty.HARD
        assert matrix.difficulty_of("Route manipulation", False) == Difficulty.MEDIUM

    def test_hijack_rows_mention_irr(self, matrix):
        for row in matrix.rows:
            if row.hijack:
                assert "IRR" in row.insights()

    def test_rendering(self, matrix):
        text = matrix.to_table().render()
        assert "Table 3" in text
        assert "easy" in text and "hard" in text and "medium" in text
