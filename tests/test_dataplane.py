"""Tests for FIB construction and data-plane forwarding (ping / traceroute)."""

from __future__ import annotations

import pytest

from repro.attacks.scenario import build_figure2_topology, build_figure7_topology
from repro.bgp.community import BLACKHOLE, Community, CommunitySet
from repro.bgp.prefix import Prefix
from repro.dataplane.fib import Fib, FibEntry, build_fib
from repro.dataplane.forwarding import DataPlane, ForwardingOutcome
from repro.exceptions import DataPlaneError
from repro.routing.engine import BgpSimulator


PREFIX = Prefix.from_string("198.51.100.0/24")


class TestFib:
    def test_longest_prefix_match(self):
        fib = Fib(1)
        fib.install(FibEntry(Prefix.from_string("10.0.0.0/8"), next_hop_asn=2))
        fib.install(FibEntry(Prefix.from_string("10.1.0.0/16"), next_hop_asn=3))
        hit = fib.lookup(Prefix.from_string("10.1.2.0/24").network)
        assert hit.next_hop_asn == 3
        assert fib.lookup(Prefix.from_string("10.2.0.0/16").network).next_hop_asn == 2
        assert fib.lookup(Prefix.from_string("192.0.2.0/24").network) is None

    def test_remove(self):
        fib = Fib(1)
        entry = FibEntry(Prefix.from_string("10.0.0.0/8"), next_hop_asn=2)
        fib.install(entry)
        assert len(fib) == 1
        fib.remove(entry.prefix)
        assert len(fib) == 0
        fib.remove(entry.prefix)  # idempotent

    def test_build_fib_flags(self):
        topology = build_figure2_topology()
        simulator = BgpSimulator(topology)
        simulator.announce(1, PREFIX)
        origin_fib = build_fib(1, simulator.router(1).loc_rib, {PREFIX})
        assert origin_fib.lookup(PREFIX.host(1)).is_local
        downstream_fib = build_fib(6, simulator.router(6).loc_rib, set())
        entry = downstream_fib.lookup(PREFIX.host(1))
        assert entry is not None and not entry.is_local and entry.next_hop_asn in (3, 5)


class TestDataPlane:
    def test_delivery_and_path(self):
        topology = build_figure2_topology()
        simulator = BgpSimulator(topology)
        simulator.announce(1, PREFIX)
        plane = DataPlane(simulator)
        trace = plane.traceroute(6, PREFIX.host(1))
        assert trace.outcome == ForwardingOutcome.DELIVERED
        assert trace.path[0] == 6
        assert trace.path[-1] == 1
        ping = plane.ping(6, PREFIX.host(1))
        assert ping.reachable
        assert ping.hops == len(trace.path) - 1

    def test_no_route(self):
        topology = build_figure2_topology()
        simulator = BgpSimulator(topology)
        plane = DataPlane(simulator)
        result = plane.ping(6, PREFIX.host(1))
        assert not result.reachable
        assert result.outcome == ForwardingOutcome.NO_ROUTE

    def test_blackholed_traffic_is_dropped_at_target(self):
        # AS4 without its own RTBH service, so the drop happens exactly at AS3.
        topology = build_figure7_topology(with_as4_blackhole=False)
        simulator = BgpSimulator(topology)
        victim = Prefix.from_string("203.0.113.0/24")
        attacker = simulator.router(2)
        for neighbor in attacker.neighbors():
            attacker.export_community_additions[neighbor] = CommunitySet.of(
                Community(3, 666), BLACKHOLE
            )
        simulator.announce(1, victim)
        plane = DataPlane(simulator)
        # AS4 sits behind AS3 (the blackholing AS): its traffic is dropped there.
        trace = plane.traceroute(4, victim.host(1))
        assert trace.outcome == ForwardingOutcome.BLACKHOLED
        assert trace.dropped_at == 3
        # AS2 still reaches the victim directly.
        assert plane.ping(2, victim.host(1)).reachable

    def test_unknown_source_raises(self):
        simulator = BgpSimulator(build_figure2_topology())
        plane = DataPlane(simulator)
        with pytest.raises(DataPlaneError):
            plane.traceroute(999, PREFIX.host(1))
        with pytest.raises(DataPlaneError):
            plane.fib(999)

    def test_reachability_matrix(self):
        topology = build_figure2_topology()
        simulator = BgpSimulator(topology)
        simulator.announce(1, PREFIX)
        plane = DataPlane(simulator)
        matrix = plane.reachability_matrix([2, 6], PREFIX.host(1))
        assert matrix == {2: True, 6: True}

    def test_rebuild_reflects_new_state(self):
        topology = build_figure2_topology()
        simulator = BgpSimulator(topology)
        plane = DataPlane(simulator)
        assert not plane.ping(6, PREFIX.host(1)).reachable
        simulator.announce(1, PREFIX)
        plane.rebuild()
        assert plane.ping(6, PREFIX.host(1)).reachable


class TestIncrementalRebuild:
    """rebuild(report) must patch FIBs into exactly the full-rebuild state."""

    @staticmethod
    def _fib_state(plane: DataPlane) -> dict[int, dict[Prefix, FibEntry]]:
        return {asn: {e.prefix: e for e in fib.entries()} for asn, fib in plane.fibs.items()}

    def test_incremental_matches_full_over_rtbh_scenario(self):
        topology = build_figure7_topology()
        simulator = BgpSimulator(topology)
        victim_prefix = Prefix.from_string("203.0.113.0/24")
        simulator.announce(1, victim_prefix)
        plane = DataPlane(simulator)  # full build at construction

        # The attacker announces a /32 blackhole route tagged with the
        # community target's RTBH community (the paper's Section 7.3 move).
        blackhole_prefix = Prefix.from_string("203.0.113.66/32")
        report = simulator.announce(
            2, blackhole_prefix, communities=CommunitySet.of(Community(3, 666), BLACKHOLE)
        )
        assert report.dirty  # the run recorded per-router dirty prefixes
        plane.rebuild(report)
        assert self._fib_state(plane) == self._fib_state(DataPlane(simulator))

        # Withdrawing patches back to the pre-attack state.
        report = simulator.withdraw(2, blackhole_prefix)
        plane.rebuild(report)
        assert self._fib_state(plane) == self._fib_state(DataPlane(simulator))

    def test_incremental_rebuild_via_reannouncement(self):
        topology = build_figure2_topology()
        simulator = BgpSimulator(topology)
        simulator.announce(1, PREFIX)
        plane = DataPlane(simulator)
        # Re-announce with a prepend community: best paths shift downstream.
        report = simulator.announce(1, PREFIX, communities=CommunitySet.of(Community(3, 33)))
        plane.rebuild(report)
        assert self._fib_state(plane) == self._fib_state(DataPlane(simulator))

    def test_ping_prefix_works_on_host_routes(self):
        topology = build_figure7_topology()
        simulator = BgpSimulator(topology)
        blackhole_prefix = Prefix.from_string("203.0.113.66/32")
        report = simulator.announce(
            2, blackhole_prefix, communities=CommunitySet.of(Community(3, 666), BLACKHOLE)
        )
        plane = DataPlane(simulator)
        # A /32 target must not crash the representative-host derivation.
        result = plane.ping_prefix(4, blackhole_prefix)
        assert result.outcome in (ForwardingOutcome.BLACKHOLED, ForwardingOutcome.NO_ROUTE)
        assert not result.reachable
